"""JSON wire codecs for the HTTP compilation frontend.

Everything that crosses the network travels as JSON built from four
codecs: circuits, GRAPE settings, requests, and results.  Two properties
are load-bearing:

* **Fingerprint stability** — the circuit encoding covers exactly what
  :meth:`~repro.circuits.QuantumCircuit.content_fingerprint` hashes (gate
  names, qubit tuples, numeric angles by exact value, symbolic angles by
  their parameter skeleton), and JSON round-trips Python floats through
  ``repr`` bit-exactly.  A decoded circuit therefore has the *same*
  content fingerprint as the one the client built, so the server hits the
  same plan-cache, scheduler-state, and pulse-library slots an in-process
  caller would — which is also what makes client retries safe: a
  re-delivered request is idempotent by fingerprint.
* **Bit-identical results** — pulse programs are encoded with the same
  repr-float schedule encoding the fleet's completion records use
  (:mod:`repro.pipeline.jobs`), so the controls a client decodes are
  bit-for-bit the controls the service compiled.

The format is versioned (:data:`WIRE_VERSION`); a server refuses requests
from a client speaking a different version with a clear 400 rather than
guessing.
"""

from __future__ import annotations

from dataclasses import fields

from repro.errors import ReproError


class WireError(ReproError):
    """A payload that cannot be decoded (maps to HTTP 400)."""


#: Bump when any codec's layout changes; requests carry it and the server
#: rejects mismatches.
WIRE_VERSION = 1


def _require(data: dict, key: str, kind, what: str):
    """One checked field access with a decode-friendly error message."""
    if not isinstance(data, dict) or key not in data:
        raise WireError(f"{what} is missing required field {key!r}")
    value = data[key]
    if kind is not None and not isinstance(value, kind):
        raise WireError(
            f"{what} field {key!r} has type {type(value).__name__}, "
            f"expected {getattr(kind, '__name__', kind)}"
        )
    return value


# -- angles ----------------------------------------------------------------
def _encode_angle(angle) -> list:
    """One gate angle as a tagged JSON list.

    Mirrors :func:`repro.circuits.parameters.angle_token`: constants by
    exact float value, parameters by (name, index), expressions by their
    full linear skeleton — so decoding preserves the fingerprint token.
    """
    from repro.circuits.parameters import Parameter, ParameterExpression

    if isinstance(angle, Parameter):
        return ["p", angle.name, angle.index]
    if isinstance(angle, ParameterExpression):
        coeffs = sorted(
            (p.name, p.index, float(c)) for p, c in angle._coeffs.items()
        )
        return ["e", [list(item) for item in coeffs], float(angle._const)]
    return ["c", float(angle)]


def _decode_angle(data, parameters: dict):
    """Inverse of :func:`_encode_angle`.

    ``parameters`` interns one :class:`Parameter` per (name, index) across
    the whole circuit, matching how a locally-built ansatz shares its
    parameter objects between gates.
    """
    from repro.circuits.parameters import Parameter, ParameterExpression

    if not isinstance(data, list) or not data:
        raise WireError(f"bad angle encoding: {data!r}")
    tag = data[0]
    try:
        if tag == "c":
            return float(data[1])
        if tag == "p":
            name, index = data[1], int(data[2])
            return parameters.setdefault((name, index), Parameter(name, index))
        if tag == "e":
            coeffs = {}
            for name, index, coeff in data[1]:
                param = parameters.setdefault(
                    (name, int(index)), Parameter(name, int(index))
                )
                coeffs[param] = float(coeff)
            return ParameterExpression(coeffs, float(data[2]))
    except (TypeError, ValueError, IndexError) as exc:
        raise WireError(f"bad angle encoding {data!r}: {exc}") from None
    raise WireError(f"unknown angle tag {tag!r}")


# -- circuits --------------------------------------------------------------
def encode_circuit(circuit) -> dict:
    """A :class:`~repro.circuits.QuantumCircuit` as a JSON-safe dict."""
    return {
        "width": circuit.num_qubits,
        "name": circuit.name,
        "gates": [
            {
                "gate": inst.gate.name,
                "qubits": list(inst.qubits),
                "params": [_encode_angle(p) for p in inst.gate.params],
            }
            for inst in circuit
        ],
    }


def decode_circuit(data: dict):
    """Inverse of :func:`encode_circuit`; raises :class:`WireError` on any
    malformed payload (unknown gate, bad qubit indices, bad angles)."""
    from repro.circuits.circuit import QuantumCircuit
    from repro.circuits.gates import gate_from_name
    from repro.errors import CircuitError

    width = _require(data, "width", int, "circuit")
    if width < 1:
        raise WireError(f"circuit width must be >= 1, got {width}")
    gates = _require(data, "gates", list, "circuit")
    name = data.get("name") or "remote"
    circuit = QuantumCircuit(width, name=str(name))
    parameters: dict = {}
    for entry in gates:
        gate_name = _require(entry, "gate", str, "gate entry")
        qubits = _require(entry, "qubits", list, "gate entry")
        params = [
            _decode_angle(p, parameters) for p in entry.get("params", [])
        ]
        try:
            circuit.append(
                gate_from_name(gate_name, params),
                tuple(int(q) for q in qubits),
            )
        except (CircuitError, TypeError, ValueError) as exc:
            raise WireError(f"bad gate entry {entry!r}: {exc}") from None
    return circuit


# -- GRAPE settings --------------------------------------------------------
def encode_settings(settings) -> dict | None:
    """A :class:`~repro.pulse.grape.GrapeSettings` as a flat JSON dict
    (regularization fields inlined under a sub-dict)."""
    if settings is None:
        return None
    payload = {
        "dt_ns": settings.dt_ns,
        "target_fidelity": settings.target_fidelity,
        "seed": settings.seed,
        "plateau_patience": settings.plateau_patience,
        "plateau_tolerance": settings.plateau_tolerance,
        "regularization": {
            f.name: getattr(settings.regularization, f.name)
            for f in fields(settings.regularization)
        },
    }
    return payload


def decode_settings(data: dict | None):
    if data is None:
        return None
    from repro.pulse.grape.cost import RegularizationSettings
    from repro.pulse.grape.engine import GrapeSettings

    if not isinstance(data, dict):
        raise WireError(f"settings must be an object, got {data!r}")
    try:
        regularization = RegularizationSettings(
            **{str(k): v for k, v in (data.get("regularization") or {}).items()}
        )
        known = {
            key: data[key]
            for key in (
                "dt_ns",
                "target_fidelity",
                "seed",
                "plateau_patience",
                "plateau_tolerance",
            )
            if key in data
        }
        return GrapeSettings(regularization=regularization, **known)
    except (TypeError, ValueError) as exc:
        raise WireError(f"bad settings payload: {exc}") from None


def encode_hyperparameters(hyper) -> dict | None:
    if hyper is None:
        return None
    return {
        "learning_rate": hyper.learning_rate,
        "decay_rate": hyper.decay_rate,
        "max_iterations": hyper.max_iterations,
        "optimizer": hyper.optimizer,
    }


def decode_hyperparameters(data: dict | None):
    if data is None:
        return None
    from repro.errors import GrapeError
    from repro.pulse.grape.engine import GrapeHyperparameters

    if not isinstance(data, dict):
        raise WireError(f"hyperparameters must be an object, got {data!r}")
    try:
        return GrapeHyperparameters(
            **{
                key: data[key]
                for key in (
                    "learning_rate",
                    "decay_rate",
                    "max_iterations",
                    "optimizer",
                )
                if key in data
            }
        )
    except (TypeError, ValueError, GrapeError) as exc:
        raise WireError(f"bad hyperparameters payload: {exc}") from None


# -- requests --------------------------------------------------------------
def encode_request(request) -> dict:
    """A :class:`~repro.service.CompileRequest` as the ``POST /v1/compile``
    body (minus transport concerns like the sync/ticket mode)."""
    values = request.normalized_values()
    if isinstance(values, dict):
        raise WireError(
            "mapping-form values are not wire-encodable; bind by "
            "parameter-index order (a list) for remote compilation"
        )
    return {
        "wire_version": WIRE_VERSION,
        "circuit": encode_circuit(request.circuit),
        "values": None if values is None else [float(v) for v in values],
        "strategy": request.strategy,
        "settings": encode_settings(request.settings),
        "hyperparameters": encode_hyperparameters(request.hyperparameters),
        "max_block_width": request.max_block_width,
        "use_cache": request.use_cache,
        "options": dict(request.options),
    }


#: Options that carry live objects (executors, pass managers) stay
#: server-side; a request trying to send one gets a clear 400.
_UNWIRABLE_OPTIONS = ("probe_executor", "pass_manager", "table")


def decode_request(data: dict):
    """The inverse of :func:`encode_request`: a validated
    :class:`~repro.service.CompileRequest`."""
    from repro.service.requests import CompileRequest

    if not isinstance(data, dict):
        raise WireError("request body must be a JSON object")
    version = data.get("wire_version", WIRE_VERSION)
    if version != WIRE_VERSION:
        raise WireError(
            f"wire version mismatch: request speaks {version!r}, "
            f"this server speaks {WIRE_VERSION}"
        )
    circuit = decode_circuit(_require(data, "circuit", dict, "request"))
    strategy = _require(data, "strategy", str, "request")
    values = data.get("values")
    if values is not None:
        if not isinstance(values, list):
            raise WireError(
                f"request values must be a list or null, got {values!r}"
            )
        try:
            values = [float(v) for v in values]
        except (TypeError, ValueError) as exc:
            raise WireError(f"bad values payload: {exc}") from None
    options = data.get("options") or {}
    if not isinstance(options, dict):
        raise WireError(f"request options must be an object, got {options!r}")
    for name in _UNWIRABLE_OPTIONS:
        if name in options:
            raise WireError(
                f"option {name!r} carries a live object and cannot be sent "
                "over the wire; configure it server-side"
            )
    max_block_width = data.get("max_block_width")
    if max_block_width is not None and not isinstance(max_block_width, int):
        raise WireError(
            f"max_block_width must be an integer or null, "
            f"got {max_block_width!r}"
        )
    try:
        return CompileRequest(
            circuit=circuit,
            values=values,
            strategy=strategy,
            settings=decode_settings(data.get("settings")),
            hyperparameters=decode_hyperparameters(data.get("hyperparameters")),
            max_block_width=max_block_width,
            use_cache=bool(data.get("use_cache", True)),
            options=dict(options),
        )
    except ReproError as exc:
        raise WireError(str(exc)) from None


# -- results ---------------------------------------------------------------
def _json_safe(value):
    """Best-effort JSON projection of metadata values (drop what isn't)."""
    import numpy as np

    if isinstance(value, (str, bool, type(None))):
        return value
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, dict):
        return {
            str(k): _json_safe(v)
            for k, v in value.items()
            if _json_encodable(v)
        }
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value if _json_encodable(v)]
    return repr(value)


def _json_encodable(value) -> bool:
    import numpy as np

    return isinstance(
        value,
        (str, bool, int, float, dict, list, tuple, type(None), np.integer, np.floating),
    )


def encode_compiled(compiled) -> dict | None:
    """A :class:`~repro.core.results.CompiledPulse`, program included.

    Schedules use the repr-float encoding of :mod:`repro.pipeline.jobs`,
    so decoded controls are bit-identical; the program is re-sequenced
    ASAP from the same schedule order, which reproduces the original
    placement exactly (sequencing is deterministic in that order).
    """
    from repro.pipeline.jobs import _encode_schedule

    if compiled is None:
        return None
    return {
        "method": compiled.method,
        "schedules": [
            _encode_schedule(schedule) for schedule in compiled.program.schedules
        ],
        "pulse_duration_ns": compiled.pulse_duration_ns,
        "runtime_latency_s": compiled.runtime_latency_s,
        "runtime_iterations": compiled.runtime_iterations,
        "blocks_compiled": compiled.blocks_compiled,
        "cache_hits": compiled.cache_hits,
        "metadata": _json_safe(compiled.metadata),
    }


def decode_compiled(data: dict | None):
    from repro.core.results import CompiledPulse
    from repro.pipeline.jobs import _decode_schedule
    from repro.pulse.schedule import PulseProgram

    if data is None:
        return None
    try:
        program = PulseProgram.sequence(
            _decode_schedule(entry) for entry in data["schedules"]
        )
        return CompiledPulse(
            method=data["method"],
            program=program,
            pulse_duration_ns=data["pulse_duration_ns"],
            runtime_latency_s=data["runtime_latency_s"],
            runtime_iterations=data["runtime_iterations"],
            blocks_compiled=data["blocks_compiled"],
            cache_hits=data["cache_hits"],
            metadata=data.get("metadata") or {},
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"bad compiled-pulse payload: {exc}") from None


def encode_report(report) -> dict | None:
    """A :class:`~repro.core.results.PrecompileReport` (numbers only)."""
    if report is None:
        return None
    return {
        "method": report.method,
        "wall_time_s": report.wall_time_s,
        "grape_iterations": report.grape_iterations,
        "blocks_precompiled": report.blocks_precompiled,
        "parametrized_blocks": report.parametrized_blocks,
        "cache_hits": report.cache_hits,
        "hyperopt_trials": report.hyperopt_trials,
        "executor": report.executor,
        "cache_stats": _json_safe(report.cache_stats),
        "metadata": _json_safe(report.metadata),
    }


def decode_report(data: dict | None):
    from repro.core.results import PrecompileReport

    if data is None:
        return None
    try:
        return PrecompileReport(
            method=data["method"],
            wall_time_s=data["wall_time_s"],
            grape_iterations=data["grape_iterations"],
            blocks_precompiled=data["blocks_precompiled"],
            parametrized_blocks=data.get("parametrized_blocks", 0),
            cache_hits=data.get("cache_hits", 0),
            hyperopt_trials=data.get("hyperopt_trials", 0),
            executor=data.get("executor", "serial"),
            cache_stats=data.get("cache_stats") or {},
            metadata=data.get("metadata") or {},
        )
    except (KeyError, TypeError) as exc:
        raise WireError(f"bad precompile-report payload: {exc}") from None


def encode_result(result) -> dict:
    """A :class:`~repro.service.CompileResult` as the compile response body.

    The originating request is *not* echoed (the client already has it),
    and plan compilers (``result.compiler``) stay server-side — a
    precompile-only response reports that via ``has_compiler`` instead.
    """
    return {
        "wire_version": WIRE_VERSION,
        "strategy": result.strategy,
        "compiled": encode_compiled(result.compiled),
        "precompile_report": encode_report(result.precompile_report),
        "has_compiler": result.compiler is not None,
        "wall_time_s": result.wall_time_s,
    }


def decode_result(data: dict, request=None):
    """Rebuild a :class:`~repro.service.CompileResult` client-side,
    attaching the client's own ``request`` object for correlation."""
    from repro.service.requests import CompileResult

    if not isinstance(data, dict):
        raise WireError("result body must be a JSON object")
    try:
        return CompileResult(
            request=request,
            strategy=data["strategy"],
            compiled=decode_compiled(data.get("compiled")),
            precompile_report=decode_report(data.get("precompile_report")),
            compiler=None,
            wall_time_s=data.get("wall_time_s", 0.0),
        )
    except KeyError as exc:
        raise WireError(f"result payload is missing {exc}") from None
