"""The HTTP compilation frontend: ``repro.server.CompilationServer``.

A thin, dependency-free network layer (stdlib ``http.server``) over one
:class:`~repro.service.CompilationService`.  Threading model: the
:class:`~http.server.ThreadingHTTPServer` gives every connection its own
thread, which parses/validates the payload and then rides the service's
ordinary ``submit()`` path — so HTTP clients share the bounded admission,
executor, pulse library, and scheduler state with in-process callers, and
a mixed population of local and remote clients behaves as one load.

Routes::

    POST /v1/compile     body: wire-encoded CompileRequest (+ "mode")
                         mode "sync" (default) → 200 with the result
                         mode "ticket"         → 202 with a ticket id
    GET  /v1/jobs/<id>   ticket state: pending | done (+ result) | error
    GET  /v1/stats       server counters + service stats + fleet status
    GET  /healthz        200 ok | 503 draining

Structured error mapping — every failure is JSON with an ``error`` field:

* 400 — malformed JSON, undecodable circuit/request, unknown strategy,
  wire-version mismatch
* 404 — unknown route or unknown/expired ticket
* 405 — wrong method for a route
* 413 — body larger than the configured limit
* 429 — bounded admission is full (``Retry-After`` hints a backoff)
* 503 — the server is draining (SIGTERM was received)
* 500 — the compilation itself failed

Delivery semantics are *at least once*: a client that times out and
retries may compile the same request twice, but requests are idempotent
by content fingerprint (same plan-cache/pulse-library slots), so the
duplicate is a cache hit producing bit-identical pulses.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import ReproError, ServiceSaturated
from repro.server.tickets import TicketStore
from repro.server.wire import (
    WIRE_VERSION,
    WireError,
    _json_safe,
    decode_request,
    encode_result,
)

#: Compile modes a ``POST /v1/compile`` body may select.
COMPILE_MODES = ("sync", "ticket")


class CompilationServer:
    """One HTTP frontend bound to one compilation service.

    Parameters
    ----------
    service:
        The :class:`~repro.service.CompilationService` every request is
        served through.  The server never closes it — lifecycle stays
        with the caller (the ``serve`` CLI closes both in order).
    host / port:
        Bind address.  Port ``0`` picks an ephemeral port (tests); the
        bound port is available as :attr:`port` either way.
    max_body_bytes:
        Reject request bodies larger than this with 413 *before* reading
        them, so an oversized payload cannot balloon server memory.
    ticket_ttl_s:
        How long a finished, unfetched async ticket is retained.
    """

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body_bytes: int = 32 * 1024 * 1024,
        ticket_ttl_s: float = 3600.0,
    ):
        self.service = service
        self.max_body_bytes = int(max_body_bytes)
        self.tickets = TicketStore(ttl_s=ticket_ttl_s)
        self._draining = threading.Event()
        self._stats_lock = threading.Lock()
        self._inflight = 0
        self._idle = threading.Condition(self._stats_lock)
        self.requests_total = 0
        self.requests_by_route: dict = {}
        self.responses_by_code: dict = {}
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------
    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def start(self) -> "CompilationServer":
        """Serve on a background thread (tests and embedded use)."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close`."""
        self._httpd.serve_forever()

    def begin_drain(self) -> None:
        """Flip to draining: health checks and new compiles now get 503.

        Reads (``/v1/stats``, ``/v1/jobs``) keep working so clients can
        still fetch results for work that was admitted before the drain.
        """
        self._draining.set()

    def drain(self, grace_s: float = 30.0) -> bool:
        """Begin draining and wait for in-flight requests to finish.

        Returns ``True`` when the server went idle within ``grace_s``.
        """
        self.begin_drain()
        import time

        deadline = time.monotonic() + grace_s
        with self._idle:
            while self._inflight:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    def close(self) -> None:
        """Drain, stop accepting connections, release the socket."""
        self.begin_drain()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def __enter__(self) -> "CompilationServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- accounting --------------------------------------------------------
    def _count_request(self, route: str) -> None:
        with self._stats_lock:
            self.requests_total += 1
            self.requests_by_route[route] = (
                self.requests_by_route.get(route, 0) + 1
            )

    def _count_response(self, code: int) -> None:
        with self._stats_lock:
            key = str(code)
            self.responses_by_code[key] = self.responses_by_code.get(key, 0) + 1

    def _enter_compile(self) -> None:
        with self._stats_lock:
            self._inflight += 1

    def _exit_compile(self) -> None:
        with self._idle:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.notify_all()

    def stats(self) -> dict:
        """The ``server`` section of ``GET /v1/stats``."""
        with self._stats_lock:
            return {
                "url": self.url,
                "wire_version": WIRE_VERSION,
                "draining": self.draining,
                "inflight": self._inflight,
                "requests_total": self.requests_total,
                "requests_by_route": dict(self.requests_by_route),
                "responses_by_code": dict(self.responses_by_code),
                "max_body_bytes": self.max_body_bytes,
                "tickets": self.tickets.stats(),
            }


def _make_handler(server: CompilationServer):
    """The request-handler class bound to one :class:`CompilationServer`."""

    class Handler(BaseHTTPRequestHandler):
        # Keep-alive matters here: a variational loop makes thousands of
        # small requests, and HTTP/1.1 lets one connection carry them all.
        protocol_version = "HTTP/1.1"
        # The default handler logs every request to stderr; the server
        # keeps structured counters instead.
        def log_message(self, fmt, *args):  # noqa: D102
            pass

        # -- plumbing ------------------------------------------------------
        def _send_json(self, code: int, payload: dict, headers=()) -> None:
            body = json.dumps(payload).encode("utf-8")
            # Count before writing: a client that has read the response
            # must observe it in /v1/stats (no handler-thread race).
            server._count_response(code)
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in headers:
                self.send_header(name, value)
            self.end_headers()
            try:
                self.wfile.write(body)
            except (BrokenPipeError, ConnectionResetError):
                pass  # client hung up; nothing to salvage

        def _send_error_json(self, code: int, message: str, headers=()) -> None:
            self._send_json(
                code, {"error": message, "status": code}, headers=headers
            )

        def _read_body(self):
            """The request body, or ``None`` after an error response."""
            length_raw = self.headers.get("Content-Length")
            try:
                length = int(length_raw)
            except (TypeError, ValueError):
                self._send_error_json(
                    400, "missing or malformed Content-Length"
                )
                return None
            if length > server.max_body_bytes:
                # Refuse before reading: the connection cannot be reused
                # (the unread body is still in flight), so say so.
                self.close_connection = True
                self._send_error_json(
                    413,
                    f"request body of {length} bytes exceeds the "
                    f"{server.max_body_bytes}-byte limit",
                )
                return None
            return self.rfile.read(length)

        # -- routes --------------------------------------------------------
        def do_GET(self):  # noqa: N802 - BaseHTTPRequestHandler API
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            if path == "/healthz":
                server._count_request("/healthz")
                if server.draining:
                    self._send_json(503, {"status": "draining"})
                else:
                    self._send_json(200, {"status": "ok"})
                return
            if path == "/v1/stats":
                server._count_request("/v1/stats")
                self._send_json(200, _json_safe(_stats_payload()))
                return
            if path.startswith("/v1/jobs/"):
                server._count_request("/v1/jobs")
                self._handle_job(path[len("/v1/jobs/"):])
                return
            if path == "/v1/compile":
                self._send_error_json(405, "use POST for /v1/compile")
                return
            self._send_error_json(404, f"no route for {path}")

        def do_POST(self):  # noqa: N802 - BaseHTTPRequestHandler API
            path = self.path.split("?", 1)[0].rstrip("/")
            if path != "/v1/compile":
                if path in ("/healthz", "/v1/stats") or path.startswith(
                    "/v1/jobs"
                ):
                    self._send_error_json(405, f"use GET for {path}")
                else:
                    self._send_error_json(404, f"no route for {path}")
                return
            server._count_request("/v1/compile")
            if server.draining:
                self._send_error_json(
                    503, "server is draining; retry against another frontend",
                    headers=(("Retry-After", "5"),),
                )
                return
            body = self._read_body()
            if body is None:
                return
            server._enter_compile()
            try:
                self._handle_compile(body)
            finally:
                server._exit_compile()

        # -- compile -------------------------------------------------------
        def _handle_compile(self, body: bytes) -> None:
            from repro.service.registry import get_strategy

            try:
                payload = json.loads(body)
            except ValueError as exc:
                self._send_error_json(400, f"malformed JSON body: {exc}")
                return
            mode = "sync"
            if isinstance(payload, dict):
                mode = payload.get("mode", "sync")
            if mode not in COMPILE_MODES:
                self._send_error_json(
                    400, f"unknown mode {mode!r}; available: {COMPILE_MODES}"
                )
                return
            try:
                request = decode_request(payload)
                get_strategy(request.strategy)  # unknown strategy → 400 now
            except WireError as exc:
                self._send_error_json(400, str(exc))
                return
            except ReproError as exc:
                self._send_error_json(400, str(exc))
                return
            try:
                future = server.service.submit(request, block=False)
            except ServiceSaturated as exc:
                self._send_error_json(
                    429, str(exc), headers=(("Retry-After", "1"),)
                )
                return
            except ReproError as exc:
                # e.g. the service was closed under the server
                self._send_error_json(503, str(exc))
                return
            if mode == "ticket":
                ticket = server.tickets.issue(future)
                self._send_json(
                    202, {"ticket": ticket, "poll": f"/v1/jobs/{ticket}"}
                )
                return
            try:
                result = future.result()
            except Exception as exc:  # noqa: BLE001 - wire the failure back
                self._send_error_json(500, f"compilation failed: {exc!r}")
                return
            self._send_json(200, encode_result(result))

        def _handle_job(self, ticket: str) -> None:
            future = server.tickets.lookup(ticket)
            if future is None:
                self._send_error_json(
                    404, f"unknown (or expired) ticket {ticket!r}"
                )
                return
            if not future.done():
                self._send_json(200, {"state": "pending", "ticket": ticket})
                return
            error = future.exception()
            if error is not None:
                self._send_json(
                    200,
                    {
                        "state": "error",
                        "ticket": ticket,
                        "error": repr(error),
                    },
                )
                return
            self._send_json(
                200,
                {
                    "state": "done",
                    "ticket": ticket,
                    "result": encode_result(future.result()),
                },
            )

    def _stats_payload() -> dict:
        service_stats = server.service.stats()
        return {"server": server.stats(), "service": service_stats}

    return Handler
