"""``repro.server.client`` — the thin HTTP client behind ``remote-compile``.

Built on stdlib :mod:`urllib.request`; speaks the wire format of
:mod:`repro.server.wire` and maps the server's structured error codes
back to typed exceptions:

* 429 → :class:`~repro.errors.ServiceSaturated` (back off and retry)
* 400 → :class:`RemoteCompileError` (the request itself is bad — do not
  retry)
* everything else → :class:`ServerError` with the HTTP status attached

Connection-level failures (refused, reset, timed out before any byte of
response) are retried with exponential backoff.  That is safe precisely
because compile requests are idempotent by content fingerprint: a
re-delivered request lands in the same plan-cache and pulse-library
slots, so "at least once" delivery still yields exactly-once pulses.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.errors import ReproError, ServiceSaturated
from repro.server.wire import WireError, decode_result, encode_request


class ServerError(ReproError):
    """An HTTP-level failure from the compile server."""

    def __init__(self, status: int, message: str):
        super().__init__(f"server returned {status}: {message}")
        self.status = status
        self.detail = message


class RemoteCompileError(ServerError):
    """The server rejected the request as malformed (HTTP 400)."""


class ServerUnavailable(ServerError):
    """The server is draining or gone (HTTP 503, or connect failures
    that outlasted the retry budget)."""


class ServerClient:
    """One compile-server endpoint, e.g. ``ServerClient("http://host:8642")``.

    ``timeout_s`` bounds each HTTP round-trip — for synchronous compiles
    it must cover the compilation itself, so it defaults generously.
    ``retries``/``backoff_s`` govern connection-level retry only; HTTP
    error *responses* are never retried here (the caller decides, with
    429/503 as the explicit retry-later signals).
    """

    def __init__(
        self,
        url: str,
        timeout_s: float = 600.0,
        retries: int = 3,
        backoff_s: float = 0.2,
    ):
        self.url = url.rstrip("/")
        self.timeout_s = float(timeout_s)
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)

    # -- transport ---------------------------------------------------------
    def _roundtrip(self, method: str, path: str, payload=None) -> dict:
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.url + path, data=body, method=method, headers=headers
        )
        last_error: Exception | None = None
        for attempt in range(self.retries + 1):
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout_s
                ) as response:
                    return self._parse(response.read(), response.status)
            except urllib.error.HTTPError as exc:
                # A real HTTP response: structured server error, no retry.
                return self._parse(exc.read(), exc.code)
            except (urllib.error.URLError, ConnectionError, TimeoutError) as exc:
                last_error = exc
                if attempt < self.retries:
                    time.sleep(self.backoff_s * (2**attempt))
        raise ServerUnavailable(
            0, f"cannot reach {self.url}: {last_error}"
        ) from last_error

    @staticmethod
    def _parse(raw: bytes, status: int) -> dict:
        try:
            payload = json.loads(raw) if raw else {}
        except ValueError:
            payload = {"error": raw.decode("utf-8", "replace")[:200]}
        if 200 <= status < 300:
            if not isinstance(payload, dict):
                raise WireError(
                    f"expected a JSON object response, got {payload!r}"
                )
            return payload
        message = "unexpected error"
        if isinstance(payload, dict):
            message = str(
                payload.get("error") or payload.get("status") or message
            )
        if status == 429:
            raise ServiceSaturated(message)
        if status == 400:
            raise RemoteCompileError(status, message)
        if status == 503:
            raise ServerUnavailable(status, message)
        raise ServerError(status, message)

    # -- API ---------------------------------------------------------------
    def healthz(self) -> dict:
        """``GET /healthz``; raises :class:`ServerUnavailable` on drain."""
        return self._roundtrip("GET", "/healthz")

    def stats(self) -> dict:
        """``GET /v1/stats`` — server counters + service stats + fleet."""
        return self._roundtrip("GET", "/v1/stats")

    def compile(self, request):
        """Synchronous ``POST /v1/compile``; blocks until the server
        finishes and returns a :class:`~repro.service.CompileResult`
        carrying the caller's own ``request`` object."""
        payload = encode_request(request)
        payload["mode"] = "sync"
        return decode_result(
            self._roundtrip("POST", "/v1/compile", payload), request=request
        )

    def submit(self, request) -> str:
        """Async ``POST /v1/compile``; returns the ticket id to poll."""
        payload = encode_request(request)
        payload["mode"] = "ticket"
        response = self._roundtrip("POST", "/v1/compile", payload)
        ticket = response.get("ticket")
        if not isinstance(ticket, str):
            raise WireError(f"server returned no ticket: {response!r}")
        return ticket

    def job(self, ticket: str) -> dict:
        """One ``GET /v1/jobs/<ticket>`` poll (raw state payload)."""
        return self._roundtrip("GET", f"/v1/jobs/{ticket}")

    def result(self, ticket: str, request=None, poll_s: float = 0.2,
               timeout_s: float = 600.0):
        """Poll a ticket to completion and decode its result.

        Raises :class:`ServerError` if the remote compilation failed and
        ``TimeoutError`` if the ticket stays pending past ``timeout_s``.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            state = self.job(ticket)
            if state.get("state") == "done":
                return decode_result(state["result"], request=request)
            if state.get("state") == "error":
                raise ServerError(
                    500, f"remote compilation failed: {state.get('error')}"
                )
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"ticket {ticket} still pending after {timeout_s}s"
                )
            time.sleep(poll_s)
