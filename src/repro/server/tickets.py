"""Async-compile tickets: the server-side registry behind ``GET /v1/jobs``.

A ticketed ``POST /v1/compile`` returns immediately with an opaque id;
the compilation runs on the service's submit pool and the client polls
``GET /v1/jobs/<id>`` until the state flips to ``done`` (or ``error``).
Results are kept until fetched once, or until the ticket ages past the
TTL — an abandoned ticket must not pin a pulse program in server memory
forever.

Tickets are process-local by design: the durable, shareable layer is the
pulse library (a re-submitted request after a server restart is a cache
hit), so the ticket registry only needs to cover one server's lifetime.
"""

from __future__ import annotations

import threading
import time
import uuid


class TicketStore:
    """Thread-safe id → in-flight-future registry with TTL expiry."""

    def __init__(self, ttl_s: float = 3600.0, clock=time.monotonic):
        self.ttl_s = float(ttl_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._tickets: dict = {}
        self.issued = 0
        self.resolved = 0
        self.expired = 0

    def issue(self, future) -> str:
        """Register one future; returns its opaque ticket id."""
        ticket = uuid.uuid4().hex
        with self._lock:
            self._expire_locked()
            self._tickets[ticket] = (future, self._clock())
            self.issued += 1
        return ticket

    def lookup(self, ticket: str):
        """The future behind ``ticket``, or ``None`` if unknown/expired.

        A completed future is *consumed*: the ticket is forgotten on the
        first lookup that observes it done, so its result's memory can be
        reclaimed (the client got its answer).
        """
        with self._lock:
            self._expire_locked()
            entry = self._tickets.get(ticket)
            if entry is None:
                return None
            future = entry[0]
            if future.done():
                del self._tickets[ticket]
                self.resolved += 1
            return future

    def _expire_locked(self) -> None:
        now = self._clock()
        stale = [
            ticket
            for ticket, (future, issued_at) in self._tickets.items()
            if now - issued_at > self.ttl_s and future.done()
        ]
        for ticket in stale:
            del self._tickets[ticket]
            self.expired += 1

    def stats(self) -> dict:
        with self._lock:
            return {
                "open": len(self._tickets),
                "issued": self.issued,
                "resolved": self.resolved,
                "expired": self.expired,
                "ttl_s": self.ttl_s,
            }
