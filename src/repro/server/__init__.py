"""The network layer: an HTTP frontend over the compilation service.

The ROADMAP's fleet milestone 2 — clients on other machines compile
through ``POST /v1/compile`` instead of importing :mod:`repro`:

* :mod:`repro.server.wire` — fingerprint-stable JSON codecs for
  circuits, requests, and results (exact-float round-trips, so a remote
  request hits the same cache slots as an in-process one).
* :mod:`repro.server.http` — :class:`CompilationServer`, a stdlib
  ``ThreadingHTTPServer`` frontend with structured error mapping
  (400/404/413/429/503) and graceful drain.
* :mod:`repro.server.tickets` — :class:`TicketStore`, async-compile
  tickets behind ``GET /v1/jobs/<id>``.
* :mod:`repro.server.client` — :class:`ServerClient`, the urllib-based
  client the ``remote-compile`` CLI uses; retries are safe because
  requests are idempotent by content fingerprint.

Imports are lazy (PEP 562) to keep ``import repro`` light: the HTTP
module pulls :mod:`repro.service` (and with it numpy) only when a server
or client is actually constructed.
"""

from repro.server.wire import WIRE_VERSION, WireError

__all__ = [
    "WIRE_VERSION",
    "CompilationServer",
    "RemoteCompileError",
    "ServerClient",
    "ServerError",
    "ServerUnavailable",
    "TicketStore",
    "WireError",
    "decode_request",
    "decode_result",
    "encode_request",
    "encode_result",
]

_LAZY = {
    "CompilationServer": "repro.server.http",
    "RemoteCompileError": "repro.server.client",
    "ServerClient": "repro.server.client",
    "ServerError": "repro.server.client",
    "ServerUnavailable": "repro.server.client",
    "TicketStore": "repro.server.tickets",
    "decode_request": "repro.server.wire",
    "decode_result": "repro.server.wire",
    "encode_request": "repro.server.wire",
    "encode_result": "repro.server.wire",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.server' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list:
    return sorted(set(globals()) | set(_LAZY))
