"""Flexible partial compilation (paper section 7).

Slice the circuit at parameter-group boundaries (parameter monotonicity,
section 7.1) into deep subcircuits that depend on exactly one θᵢ.  Blocks
without a parametrized gate are GRAPE-precompiled like strict partial
compilation; for each parametrized block the *hyperparameters* (ADAM
learning rate + decay), the working pulse duration, and a warm-start pulse
are precomputed.  At run time a single short GRAPE run per parametrized
block — tuned hyperparameters, warm start, no binary search — recovers full
GRAPE's pulse duration at a small fraction of its latency.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.blocking.aggregate import aggregate_blocks
from repro.circuits.circuit import QuantumCircuit
from repro.config import get_preset
from repro.core.cache import PulseCache
from repro.core.compiler import BlockPulseCompiler, default_device_for, gate_based_program
from repro.core.hyperopt import TuningResult, sample_targets, tune_hyperparameters
from repro.core.results import CompiledPulse, PrecompileReport
from repro.core.slicing import flexible_slices
from repro.errors import CompilationError
from repro.pulse.device import GmonDevice
from repro.pulse.grape.engine import (
    GrapeHyperparameters,
    GrapeSettings,
    optimize_pulse,
)
from repro.pulse.grape.time_search import minimum_time_pulse
from repro.pulse.hamiltonian import ControlSet, build_control_set
from repro.pulse.schedule import PulseProgram, PulseSchedule, lookup_schedule
from repro.sim.unitary import circuit_unitary
from repro.circuits.dag import critical_path_ns


@dataclass
class _FixedEntry:
    schedule: PulseSchedule


@dataclass
class _ParametrizedEntry:
    """Runtime plan for one single-θ block."""

    subcircuit: QuantumCircuit  # local qubits, still symbolic
    device_qubits: tuple
    control_set: ControlSet
    hyperparameters: GrapeHyperparameters
    num_steps: int
    warm_start: np.ndarray  # controls from the tuning sample
    gate_based_ns: float
    tuning: TuningResult


class FlexiblePartialCompiler:
    """Tuned-hyperparameter GRAPE per single-θ block at run time."""

    method = "flexible"

    def __init__(
        self,
        circuit: QuantumCircuit,
        device: GmonDevice,
        plan: list,
        report: PrecompileReport,
        settings: GrapeSettings,
    ):
        self.circuit = circuit
        self.device = device
        self._plan = plan
        self.report = report
        self.settings = settings
        self.parameters = circuit.parameters

    # -- precompute phase ----------------------------------------------------
    @classmethod
    def precompile(
        cls,
        circuit: QuantumCircuit,
        device: GmonDevice | None = None,
        settings: GrapeSettings | None = None,
        hyperparameters: GrapeHyperparameters | None = None,
        max_block_width: int | None = None,
        cache: PulseCache | None = None,
        tuning_samples: int = 2,
        learning_rates: tuple | None = None,
        decay_rates: tuple | None = None,
        seed: int = 11,
        tuning_strategy: str = "grid",
    ) -> "FlexiblePartialCompiler":
        """Slice, precompile fixed blocks, and tune parametrized blocks.

        ``tuning_strategy`` selects the hyperparameter tuner: "grid" (the
        default exhaustive sweep), or one of the budget-aware strategies in
        :mod:`repro.core.search` ("random", "halving", "rbf").
        """
        device = device or default_device_for(circuit)
        settings = settings or GrapeSettings()
        width = (
            max_block_width
            if max_block_width is not None
            else get_preset().max_block_qubits
        )
        block_compiler = BlockPulseCompiler(
            device, settings, hyperparameters, cache or PulseCache()
        )
        dt = settings.resolved_dt()

        start = time.perf_counter()
        iterations = 0
        fixed_blocks = 0
        param_blocks = 0
        cache_hits = 0
        hyperopt_trials = 0
        plan: list = []

        from repro.core.hyperopt import DEFAULT_DECAY_RATES, DEFAULT_LEARNING_RATES

        lr_grid = learning_rates or DEFAULT_LEARNING_RATES
        decay_grid = decay_rates or DEFAULT_DECAY_RATES

        for piece in flexible_slices(circuit):
            blocked = aggregate_blocks(piece.circuit, width)
            for block in blocked.blocks:
                sub, device_qubits = blocked.local_circuit(block)
                if not sub.is_parameterized():
                    outcome = block_compiler.compile_block(sub, device_qubits)
                    iterations += outcome.iterations
                    fixed_blocks += 1
                    cache_hits += int(outcome.cache_hit)
                    plan.append(_FixedEntry(outcome.schedule))
                    continue

                # Parametrized block: tune hyperparameters on sample angles.
                param_blocks += 1
                control_set = build_control_set(device, device_qubits)
                gate_ns = critical_path_ns(sub)
                targets = sample_targets(sub, tuning_samples, seed=seed + block.index)
                # Establish the working duration with one minimum-time search
                # on the first sample (warm-started probes inside).
                probe = minimum_time_pulse(
                    control_set,
                    targets[0],
                    upper_bound_ns=max(gate_ns, dt),
                    hyperparameters=hyperparameters,
                    settings=settings,
                )
                iterations += probe.total_iterations
                if probe.converged and probe.duration_ns <= gate_ns:
                    num_steps = probe.schedule.num_steps
                    warm = probe.schedule.controls
                else:
                    num_steps = max(1, int(round(gate_ns / dt)))
                    warm = np.zeros((control_set.num_controls, num_steps))
                if tuning_strategy == "grid":
                    tuning = tune_hyperparameters(
                        control_set,
                        targets,
                        num_steps,
                        settings=settings,
                        learning_rates=lr_grid,
                        decay_rates=decay_grid,
                    )
                else:
                    from repro.core.search import tune_with_strategy

                    tuning = tune_with_strategy(
                        tuning_strategy,
                        control_set,
                        targets,
                        num_steps,
                        settings=settings,
                        seed=seed + block.index,
                    )
                iterations += tuning.total_iterations
                hyperopt_trials += len(tuning.trials)
                plan.append(
                    _ParametrizedEntry(
                        subcircuit=sub,
                        device_qubits=tuple(device_qubits),
                        control_set=control_set,
                        hyperparameters=tuning.best,
                        num_steps=num_steps,
                        warm_start=warm,
                        gate_based_ns=gate_ns,
                        tuning=tuning,
                    )
                )
        report = PrecompileReport(
            method=cls.method,
            wall_time_s=time.perf_counter() - start,
            grape_iterations=iterations,
            blocks_precompiled=fixed_blocks,
            parametrized_blocks=param_blocks,
            cache_hits=cache_hits,
            hyperopt_trials=hyperopt_trials,
        )
        return cls(circuit, device, plan, report, settings)

    # -- runtime --------------------------------------------------------------
    def compile(self, values: Sequence[float] | dict) -> CompiledPulse:
        """One variational iteration: short tuned GRAPE per θ-block."""
        if not isinstance(values, dict):
            values = dict(zip(self.parameters, values))
        missing = [p.name for p in self.parameters if p not in values]
        if missing:
            raise CompilationError(f"missing values for parameters {missing}")

        start = time.perf_counter()
        iterations = 0
        fallbacks = 0
        schedules = []
        for entry in self._plan:
            if isinstance(entry, _FixedEntry):
                schedules.append(entry.schedule)
                continue
            bound = entry.subcircuit.bind_parameters(values)
            target = circuit_unitary(bound)
            result = optimize_pulse(
                entry.control_set,
                target,
                entry.num_steps,
                entry.hyperparameters,
                self.settings,
                initial=entry.warm_start,
            )
            iterations += result.iterations
            if not result.converged:
                # One escalation: grow the pulse toward the gate-based bound.
                dt = self.settings.resolved_dt()
                grow_steps = max(
                    entry.num_steps + 1,
                    min(
                        int(round(entry.gate_based_ns / dt)),
                        int(round(entry.num_steps * 1.25)) + 1,
                    ),
                )
                retry = optimize_pulse(
                    entry.control_set,
                    target,
                    grow_steps,
                    entry.hyperparameters,
                    self.settings,
                    initial=result.schedule.resampled(grow_steps).controls,
                )
                iterations += retry.iterations
                result = retry
            if result.converged:
                schedules.append(
                    PulseSchedule(
                        qubits=entry.device_qubits,
                        dt_ns=result.schedule.dt_ns,
                        controls=result.schedule.controls,
                        channel_names=result.schedule.channel_names,
                        source="flexible",
                    )
                )
            else:
                # Guaranteed-correct fallback: lookup pulses for the block.
                fallbacks += 1
                schedules.append(
                    lookup_schedule(
                        entry.device_qubits, entry.gate_based_ns, source="fallback"
                    )
                )
        program = PulseProgram.sequence(schedules)
        # Strictly-better guarantee: never exceed the lookup-table baseline.
        used_fallback = False
        baseline = gate_based_program(self.circuit.bind_parameters(values))
        if baseline.duration_ns < program.duration_ns:
            program = baseline
            used_fallback = True
        elapsed = time.perf_counter() - start
        return CompiledPulse(
            method=self.method,
            program=program,
            pulse_duration_ns=program.duration_ns,
            runtime_latency_s=elapsed,
            runtime_iterations=iterations,
            blocks_compiled=len(schedules),
            metadata={"fallback_blocks": fallbacks, "program_fallback": used_fallback},
        )
