"""Flexible partial compilation (paper section 7).

Slice the circuit at parameter-group boundaries (parameter monotonicity,
section 7.1) into deep subcircuits that depend on exactly one θᵢ.  Blocks
without a parametrized gate are GRAPE-precompiled like strict partial
compilation; for each parametrized block the *hyperparameters* (ADAM
learning rate + decay), the working pulse duration, and a warm-start pulse
are precomputed.  At run time a single short GRAPE run per parametrized
block — tuned hyperparameters, warm start, no binary search — recovers full
GRAPE's pulse duration at a small fraction of its latency.

Both phases route through the :mod:`repro.pipeline` machinery: the
precompute phase is the ``block(θ-slices) → pulse`` pipeline with a tuning
handler for parametrized tasks, and the runtime phase maps the per-θ GRAPE
refinements over the plan through the same pluggable block executor, so
independent θ-blocks compile concurrently.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import partial
from typing import Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import critical_path_ns
from repro.core.cache import PulseCache, default_pulse_cache
from repro.core.compiler import BlockPulseCompiler, default_device_for, gate_based_program
from repro.core.hyperopt import (
    DEFAULT_DECAY_RATES,
    DEFAULT_LEARNING_RATES,
    TuningResult,
    sample_targets,
    tune_hyperparameters,
)
from repro.core.results import CompiledPulse, PrecompileReport
from repro.core.slicing import flexible_slices
from repro.errors import CompilationError
from repro.pipeline.executors import resolve_executor
from repro.pipeline.stages import BlockTask
from repro.pipeline.strategies import flexible_precompile_pipeline
from repro.pulse.device import GmonDevice
from repro.pulse.grape.engine import (
    GrapeHyperparameters,
    GrapeSettings,
    optimize_pulse,
)
from repro.pulse.grape.time_search import minimum_time_pulse
from repro.pulse.hamiltonian import ControlSet, build_control_set
from repro.pulse.schedule import PulseProgram, PulseSchedule, lookup_schedule
from repro.service.config import warn_deprecated
from repro.sim.unitary import circuit_unitary


@dataclass
class _FixedEntry:
    schedule: PulseSchedule


@dataclass
class _ParametrizedEntry:
    """Runtime plan for one single-θ block."""

    subcircuit: QuantumCircuit  # local qubits, still symbolic
    device_qubits: tuple
    control_set: ControlSet
    hyperparameters: GrapeHyperparameters
    num_steps: int
    warm_start: np.ndarray  # controls from the tuning sample
    gate_based_ns: float
    tuning: TuningResult
    probe_iterations: int = 0  # minimum-time probe cost (precompute phase)


def _tune_parametrized_block(
    device: GmonDevice,
    settings: GrapeSettings,
    hyperparameters: GrapeHyperparameters | None,
    tuning_samples: int,
    lr_grid: tuple,
    decay_grid: tuple,
    seed: int,
    tuning_strategy: str,
    probe_executor,
    task: BlockTask,
) -> _ParametrizedEntry:
    """Precompute phase for one single-θ block (picklable pulse handler).

    Establishes the working pulse duration with a minimum-time probe on the
    first sample target, then tunes the optimizer hyperparameters over the
    sample angles (paper section 7.2).  ``probe_executor`` (an executor
    *name*, so the handler stays picklable) parallelizes the probe's
    feasibility doublings for blocks whose initial bound is infeasible.
    """
    sub = task.subcircuit
    dt = settings.resolved_dt()
    control_set = build_control_set(device, task.device_qubits)
    gate_ns = critical_path_ns(sub)
    # Seed on the per-slice block index so the sampled angles match the
    # pre-pipeline numerics and stay stable under earlier-slice changes.
    targets = sample_targets(sub, tuning_samples, seed=seed + task.local_index)
    probe = minimum_time_pulse(
        control_set,
        targets[0],
        upper_bound_ns=max(gate_ns, dt),
        hyperparameters=hyperparameters,
        settings=settings,
        probe_executor=probe_executor,
    )
    if probe.converged and probe.duration_ns <= gate_ns:
        num_steps = probe.schedule.num_steps
        warm = probe.schedule.controls
    else:
        num_steps = max(1, int(round(gate_ns / dt)))
        warm = np.zeros((control_set.num_controls, num_steps))
    if tuning_strategy == "grid":
        tuning = tune_hyperparameters(
            control_set,
            targets,
            num_steps,
            settings=settings,
            learning_rates=lr_grid,
            decay_rates=decay_grid,
        )
    else:
        from repro.core.search import tune_with_strategy

        tuning = tune_with_strategy(
            tuning_strategy,
            control_set,
            targets,
            num_steps,
            settings=settings,
            seed=seed + task.local_index,
        )
    return _ParametrizedEntry(
        subcircuit=sub,
        device_qubits=tuple(task.device_qubits),
        control_set=control_set,
        hyperparameters=tuning.best,
        num_steps=num_steps,
        warm_start=warm,
        gate_based_ns=gate_ns,
        tuning=tuning,
        probe_iterations=probe.total_iterations,
    )


def _compile_runtime_entry(
    settings: GrapeSettings, values: dict, entry
) -> tuple:
    """Runtime work for one plan entry (picklable executor task).

    Returns ``(schedule, iterations, used_block_fallback)``.  Fixed entries
    pass through; parametrized entries run one tuned warm-started GRAPE,
    with a single growth escalation toward the gate-based bound before
    falling back to lookup pulses.
    """
    if isinstance(entry, _FixedEntry):
        return (entry.schedule, 0, False)
    bound = entry.subcircuit.bind_parameters(values)
    target = circuit_unitary(bound)
    iterations = 0
    result = optimize_pulse(
        entry.control_set,
        target,
        entry.num_steps,
        entry.hyperparameters,
        settings,
        initial=entry.warm_start,
    )
    iterations += result.iterations
    if not result.converged:
        # One escalation: grow the pulse toward the gate-based bound.
        dt = settings.resolved_dt()
        grow_steps = max(
            entry.num_steps + 1,
            min(
                int(round(entry.gate_based_ns / dt)),
                int(round(entry.num_steps * 1.25)) + 1,
            ),
        )
        retry = optimize_pulse(
            entry.control_set,
            target,
            grow_steps,
            entry.hyperparameters,
            settings,
            initial=result.schedule.resampled(grow_steps).controls,
        )
        iterations += retry.iterations
        result = retry
    if result.converged:
        schedule = PulseSchedule(
            qubits=entry.device_qubits,
            dt_ns=result.schedule.dt_ns,
            controls=result.schedule.controls,
            channel_names=result.schedule.channel_names,
            source="flexible",
        )
        return (schedule, iterations, False)
    # Guaranteed-correct fallback: lookup pulses for the block.
    schedule = lookup_schedule(
        entry.device_qubits, entry.gate_based_ns, source="fallback"
    )
    return (schedule, iterations, True)


class _FlexiblePartialCompiler:
    """Tuned-hyperparameter GRAPE per single-θ block at run time."""

    method = "flexible"

    def __init__(
        self,
        circuit: QuantumCircuit,
        device: GmonDevice,
        plan: list,
        report: PrecompileReport,
        settings: GrapeSettings,
        executor=None,
    ):
        self.circuit = circuit
        self.device = device
        self._plan = plan
        self.report = report
        self.settings = settings
        self.executor = executor
        self.parameters = circuit.parameters

    # -- precompute phase ----------------------------------------------------
    @classmethod
    def precompile(
        cls,
        circuit: QuantumCircuit,
        device: GmonDevice | None = None,
        settings: GrapeSettings | None = None,
        hyperparameters: GrapeHyperparameters | None = None,
        max_block_width: int | None = None,
        cache: PulseCache | None = None,
        tuning_samples: int = 2,
        learning_rates: tuple | None = None,
        decay_rates: tuple | None = None,
        seed: int = 11,
        tuning_strategy: str = "grid",
        executor=None,
        probe_executor: str | None = None,
    ) -> "FlexiblePartialCompiler":
        """Slice, precompile fixed blocks, and tune parametrized blocks.

        ``tuning_strategy`` selects the hyperparameter tuner: "grid" (the
        default exhaustive sweep), or one of the budget-aware strategies in
        :mod:`repro.core.search` ("random", "halving", "rbf").
        ``executor`` parallelizes the per-block work — both the Fixed-block
        GRAPE searches and the per-θ tuning runs are independent.
        ``probe_executor`` (an executor *name*, e.g. ``"thread"``)
        additionally parallelizes the feasibility-doubling probes *within*
        each parametrized block's minimum-time search — useful when a few
        hard blocks dominate precompute latency; the binary-search probes
        stay sequential by design.
        """
        device = device or default_device_for(circuit)
        settings = settings or GrapeSettings()
        block_compiler = BlockPulseCompiler(
            device,
            settings,
            hyperparameters,
            cache if cache is not None else default_pulse_cache(),
        )
        tuner = partial(
            _tune_parametrized_block,
            device,
            settings,
            hyperparameters,
            tuning_samples,
            learning_rates or DEFAULT_LEARNING_RATES,
            decay_rates or DEFAULT_DECAY_RATES,
            seed,
            tuning_strategy,
            probe_executor,
        )
        pipeline = flexible_precompile_pipeline(
            block_compiler, tuner, flexible_slices, max_block_width, executor
        )
        start = time.perf_counter()
        context = pipeline.run(circuit)
        return cls._from_context(
            circuit,
            device,
            block_compiler,
            context,
            time.perf_counter() - start,
            settings,
            executor,
        )

    @classmethod
    def precompile_many(
        cls,
        circuits: Sequence[QuantumCircuit],
        device: GmonDevice | None = None,
        settings: GrapeSettings | None = None,
        hyperparameters: GrapeHyperparameters | None = None,
        max_block_width: int | None = None,
        cache: PulseCache | None = None,
        tuning_samples: int = 2,
        learning_rates: tuple | None = None,
        decay_rates: tuple | None = None,
        seed: int = 11,
        tuning_strategy: str = "grid",
        executor=None,
        probe_executor: str | None = None,
        state=None,
    ) -> list:
        """Precompile a batch of ansätze, sharing Fixed blocks across them.

        The Fixed blocks flow through one
        :class:`~repro.pipeline.scheduler.BlockScheduler` pass over the
        whole batch (and, via ``state``, across successive calls — see
        :meth:`StrictPartialCompiler.precompile_many
        <repro.core.strict.StrictPartialCompiler.precompile_many>`), while
        each parametrized single-θ block is tuned per circuit as usual.
        Returns one compiler per circuit, in order, with the shared batch
        wall time and dedup accounting on every report.
        """
        circuits = list(circuits)
        if not circuits:
            return []
        device = device or default_device_for(
            max(circuits, key=lambda c: c.num_qubits)
        )
        settings = settings or GrapeSettings()
        block_compiler = BlockPulseCompiler(
            device,
            settings,
            hyperparameters,
            cache if cache is not None else default_pulse_cache(),
        )
        tuner = partial(
            _tune_parametrized_block,
            device,
            settings,
            hyperparameters,
            tuning_samples,
            learning_rates or DEFAULT_LEARNING_RATES,
            decay_rates or DEFAULT_DECAY_RATES,
            seed,
            tuning_strategy,
            probe_executor,
        )
        pipeline = flexible_precompile_pipeline(
            block_compiler, tuner, flexible_slices, max_block_width, executor
        )
        start = time.perf_counter()
        contexts, report = pipeline.run_many(circuits, state=state)
        elapsed = time.perf_counter() - start
        batch_metadata = {
            "scheduler": report.as_dict() if report is not None else None,
            "batch": len(circuits),
        }
        return [
            cls._from_context(
                circuit,
                device,
                block_compiler,
                context,
                elapsed,
                settings,
                executor,
                batch_metadata,
            )
            for circuit, context in zip(circuits, contexts)
        ]

    @classmethod
    def _from_context(
        cls,
        circuit: QuantumCircuit,
        device: GmonDevice,
        block_compiler: BlockPulseCompiler,
        context,
        wall_time_s: float,
        settings: GrapeSettings,
        executor,
        extra_metadata: dict | None = None,
    ) -> "FlexiblePartialCompiler":
        """Fold one precompile pipeline context into a compiler instance."""
        iterations = 0
        fixed_blocks = 0
        param_blocks = 0
        cache_hits = 0
        hyperopt_trials = 0
        plan: list = []
        for task, result in zip(context.tasks, context.block_results):
            if task.kind == "parametrized":
                param_blocks += 1
                iterations += result.probe_iterations
                iterations += result.tuning.total_iterations
                hyperopt_trials += len(result.tuning.trials)
                plan.append(result)
            else:
                iterations += result.iterations
                fixed_blocks += 1
                cache_hits += int(result.cache_hit)
                plan.append(_FixedEntry(result.schedule))
        metadata = {"stage_timings": context.stage_timing_dict()}
        if extra_metadata:
            metadata.update(extra_metadata)
        report = PrecompileReport(
            method=cls.method,
            wall_time_s=wall_time_s,
            grape_iterations=iterations,
            blocks_precompiled=fixed_blocks,
            parametrized_blocks=param_blocks,
            cache_hits=cache_hits,
            hyperopt_trials=hyperopt_trials,
            executor=context.executor_info.get("executor", "serial"),
            cache_stats=block_compiler.cache.stats(),
            metadata=metadata,
        )
        return cls(circuit, device, plan, report, settings, executor=executor)

    # -- runtime --------------------------------------------------------------
    def compile(self, values: Sequence[float] | dict) -> CompiledPulse:
        """One variational iteration: short tuned GRAPE per θ-block.

        The per-θ refinements are independent, so they run through the
        compiler's block executor — the runtime analogue of parallel block
        precompilation.
        """
        if not isinstance(values, dict):
            values = dict(zip(self.parameters, values))
        missing = [p.name for p in self.parameters if p not in values]
        if missing:
            raise CompilationError(f"missing values for parameters {missing}")

        start = time.perf_counter()
        worker = partial(_compile_runtime_entry, self.settings, values)
        results = resolve_executor(self.executor).map(worker, self._plan)
        schedules = [schedule for schedule, _, _ in results]
        iterations = sum(iters for _, iters, _ in results)
        fallbacks = sum(1 for _, _, fell_back in results if fell_back)
        program = PulseProgram.sequence(schedules)
        # Strictly-better guarantee: never exceed the lookup-table baseline.
        used_fallback = False
        baseline = gate_based_program(self.circuit.bind_parameters(values))
        if baseline.duration_ns < program.duration_ns:
            program = baseline
            used_fallback = True
        elapsed = time.perf_counter() - start
        return CompiledPulse(
            method=self.method,
            program=program,
            pulse_duration_ns=program.duration_ns,
            runtime_latency_s=elapsed,
            runtime_iterations=iterations,
            blocks_compiled=len(schedules),
            metadata={"fallback_blocks": fallbacks, "program_fallback": used_fallback},
        )


class FlexiblePartialCompiler(_FlexiblePartialCompiler):
    """Deprecated constructor shim for the ``"flexible-partial"`` strategy.

    The implementation lives in :class:`_FlexiblePartialCompiler`, which
    the strategy registry serves as ``"flexible-partial"``; this name
    remains only so pre-service callers keep working.  Each construction —
    direct or via ``precompile`` / ``precompile_many`` — emits one
    :class:`~repro.service.config.ReproDeprecationWarning`.  Use
    ``CompilationService.compile(CompileRequest(strategy="flexible-partial"))``.
    """

    def __init__(self, *args, **kwargs):
        warn_deprecated("FlexiblePartialCompiler", "flexible-partial")
        super().__init__(*args, **kwargs)
