"""Gate-based (lookup-table) compilation — the baseline.

"A lookup table maps each gate to a sequence of machine-level control pulses
so that compilation simply amounts to concatenating the pulses corresponding
to each gate" (paper section 1).  Pulse durations come from Table 1; gates
are ASAP-parallel-scheduled so the reported duration is the critical path.

The compiler is a thin configuration of the shared
:class:`~repro.pipeline.pipeline.CompilationPipeline`:
``bind → gate-schedule → assemble`` with no fallback (it *is* the floor
every other strategy falls back to).
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.core.results import CompiledPulse
from repro.pipeline.strategies import gate_based_pipeline
from repro.service.config import warn_deprecated


class _GateBasedCompiler:
    """The paper's baseline compiler.

    Stateless: every gate's pulse is a pre-calibrated lookup, so runtime
    latency is just the (microsecond-scale) concatenation cost.  An optional
    transpile ``pass_manager`` is prepended to the pipeline for callers that
    want decomposition/routing folded into the same flow.
    """

    method = "gate"

    def __init__(self, pass_manager=None):
        self.pipeline = gate_based_pipeline(pass_manager)

    def compile(self, circuit: QuantumCircuit) -> CompiledPulse:
        """Compile a fully bound circuit by lookup + concatenation."""
        return self._run(circuit, None)

    def compile_parametrized(
        self, circuit: QuantumCircuit, values: Sequence[float]
    ) -> CompiledPulse:
        """Bind ``values`` then compile — one variational iteration."""
        return self._run(circuit, values)

    def _run(self, circuit: QuantumCircuit, values) -> CompiledPulse:
        start = time.perf_counter()
        context = self.pipeline.run(circuit, values=values)
        elapsed = time.perf_counter() - start
        return CompiledPulse(
            method=self.method,
            program=context.program,
            pulse_duration_ns=context.program.duration_ns,
            runtime_latency_s=elapsed,
            runtime_iterations=0,
            blocks_compiled=len(context.schedules),
            metadata={"stage_timings": context.stage_timing_dict()},
        )


class GateBasedCompiler(_GateBasedCompiler):
    """Deprecated constructor shim for the ``"gate"`` service strategy.

    The implementation lives in :class:`_GateBasedCompiler`, which the
    strategy registry serves as ``"gate"``; this name remains only so
    pre-service callers keep working, and emits one
    :class:`~repro.service.config.ReproDeprecationWarning` per
    construction.  Use
    ``CompilationService.compile(CompileRequest(strategy="gate"))``.
    """

    def __init__(self, pass_manager=None):
        warn_deprecated("GateBasedCompiler", "gate")
        super().__init__(pass_manager)
