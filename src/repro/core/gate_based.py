"""Gate-based (lookup-table) compilation — the baseline.

"A lookup table maps each gate to a sequence of machine-level control pulses
so that compilation simply amounts to concatenating the pulses corresponding
to each gate" (paper section 1).  Pulse durations come from Table 1; gates
are ASAP-parallel-scheduled so the reported duration is the critical path.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.core.results import CompiledPulse
from repro.errors import CompilationError
from repro.pulse.schedule import PulseProgram, lookup_schedule
from repro.transpile.schedule import asap_schedule


class GateBasedCompiler:
    """The paper's baseline compiler.

    Stateless: every gate's pulse is a pre-calibrated lookup, so runtime
    latency is just the (microsecond-scale) concatenation cost.
    """

    method = "gate"

    def compile(self, circuit: QuantumCircuit) -> CompiledPulse:
        """Compile a fully bound circuit by lookup + concatenation."""
        if circuit.is_parameterized():
            raise CompilationError("bind parameters before compiling")
        start = time.perf_counter()
        scheduled = asap_schedule(circuit)
        schedules = [
            lookup_schedule(entry.instruction.qubits, entry.duration_ns)
            for entry in scheduled.entries
            if entry.duration_ns > 0
        ]
        program = PulseProgram.sequence(schedules)
        elapsed = time.perf_counter() - start
        return CompiledPulse(
            method=self.method,
            program=program,
            pulse_duration_ns=program.duration_ns,
            runtime_latency_s=elapsed,
            runtime_iterations=0,
            blocks_compiled=len(schedules),
        )

    def compile_parametrized(
        self, circuit: QuantumCircuit, values: Sequence[float]
    ) -> CompiledPulse:
        """Bind ``values`` then compile — one variational iteration."""
        return self.compile(circuit.bind_parameters(values))
