"""Full GRAPE compilation (paper section 5).

The whole bound circuit is blocked into ≤4-qubit subcircuits, each compiled
with the minimum-time GRAPE search.  This gives the best pulse durations but
pays the full compilation latency at *every* variational iteration — the
problem partial compilation solves.

Structurally the compiler is a configuration of the shared
:class:`~repro.pipeline.pipeline.CompilationPipeline`:
``bind → block → pulse → assemble+fallback``, with the per-block GRAPE
searches dispatched through a pluggable
:class:`~repro.pipeline.executors.BlockExecutor` — they are independent, so
``executor="thread"`` / ``"process"`` compiles blocks concurrently.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.core.cache import PulseCache, default_pulse_cache
from repro.core.compiler import BlockPulseCompiler, default_device_for
from repro.core.results import CompiledPulse
from repro.pipeline.strategies import full_grape_pipeline
from repro.pulse.device import GmonDevice
from repro.pulse.grape.engine import GrapeHyperparameters, GrapeSettings
from repro.service.config import warn_deprecated


def result_from_context(
    method: str,
    context,
    elapsed: float,
    cache: PulseCache,
    extra_metadata: dict | None = None,
    cache_stats: dict | None = None,
) -> CompiledPulse:
    """Fold one pipeline context's outcomes into a strategy result record.

    Shared by :class:`FullGrapeCompiler` and the long-lived
    :class:`repro.pipeline.session.VariationalSession`, which produce the
    same pipeline contexts but own their lifecycles differently.  Batch
    callers pass one ``cache_stats`` snapshot for all their contexts — a
    disk-backed cache's ``stats()`` sweeps the whole library, which must
    not repeat per circuit in the per-iteration hot path.
    """
    outcomes = context.block_results
    metadata = {
        "program_fallback": context.used_fallback,
        "blocks": context.metadata["blocks"],
        "grape_blocks": sum(1 for o in outcomes if o.used_grape),
        "fallback_blocks": sum(
            1 for o in outcomes if not o.used_grape and o.iterations > 0
        ),
        "executor": context.executor_info,
        "stage_timings": context.stage_timing_dict(),
        "cache": cache_stats if cache_stats is not None else cache.stats(),
        "plan_cache": context.metadata.get("plan_cache", "miss"),
    }
    if extra_metadata:
        metadata.update(extra_metadata)
    return CompiledPulse(
        method=method,
        program=context.program,
        pulse_duration_ns=context.program.duration_ns,
        runtime_latency_s=elapsed,
        runtime_iterations=sum(o.iterations for o in outcomes),
        blocks_compiled=len(outcomes),
        cache_hits=sum(1 for o in outcomes if o.cache_hit),
        metadata=metadata,
    )


class _FullGrapeCompiler:
    """Out-of-the-box GRAPE over every block of the circuit."""

    method = "grape"

    def __init__(
        self,
        device: GmonDevice | None = None,
        settings: GrapeSettings | None = None,
        hyperparameters: GrapeHyperparameters | None = None,
        max_block_width: int | None = None,
        cache: PulseCache | None = None,
        executor=None,
    ):
        self.device = device
        self.settings = settings or GrapeSettings()
        self.hyperparameters = hyperparameters or GrapeHyperparameters()
        self.max_block_width = max_block_width
        self.cache = cache if cache is not None else default_pulse_cache()
        self.executor = executor

    def compile(self, circuit: QuantumCircuit, use_cache: bool = True) -> CompiledPulse:
        """Compile a fully bound circuit with GRAPE on every block.

        With ``use_cache=False`` every block is re-optimized from scratch —
        the honest out-of-the-box latency the paper measures for full GRAPE.
        """
        device = self.device or default_device_for(circuit)
        cache = self.cache if use_cache else PulseCache()
        block_compiler = BlockPulseCompiler(
            device, self.settings, self.hyperparameters, cache
        )
        pipeline = full_grape_pipeline(
            block_compiler, self.max_block_width, self.executor
        )
        start = time.perf_counter()
        context = pipeline.run(circuit)
        elapsed = time.perf_counter() - start
        return self._result_from_context(context, elapsed, cache)

    def _result_from_context(
        self, context, elapsed: float, cache: PulseCache, extra_metadata: dict | None = None
    ) -> CompiledPulse:
        """One context's outcomes folded into the strategy's result record."""
        return result_from_context(self.method, context, elapsed, cache, extra_metadata)

    def compile_parametrized(
        self, circuit: QuantumCircuit, values: Sequence[float], use_cache: bool = False
    ) -> CompiledPulse:
        """Bind ``values`` then compile — one (expensive) variational
        iteration.  Caching defaults off: each iteration's angles are new,
        and the paper's full-GRAPE latency is the uncached cost."""
        return self.compile(circuit.bind_parameters(values), use_cache=use_cache)

    def compile_many(
        self, circuits: Sequence[QuantumCircuit], use_cache: bool = True
    ) -> list:
        """Compile a batch of bound circuits, deduplicating shared blocks.

        All circuits flow through one pipeline whose pulse stage is a
        :class:`~repro.pipeline.scheduler.BlockScheduler` pass over the
        whole batch: blocks with the same unitary fingerprint and control
        context — within one circuit or across circuits — run GRAPE exactly
        once, and every duplicate receives a retargeted copy of the shared
        pulse.  Returns one :class:`CompiledPulse` per circuit, in order;
        each result's ``metadata["scheduler"]`` carries the batch dedup
        accounting (total/unique/deduped block counts).

        The batch compiles as one unit, so per-circuit wall time does not
        exist: every result's ``runtime_latency_s`` is the *shared* batch
        wall time (also in ``metadata["batch_wall_time_s"]``) — do not sum
        it across the batch.
        """
        circuits = list(circuits)
        if not circuits:
            return []
        device = self.device or default_device_for(
            max(circuits, key=lambda c: c.num_qubits)
        )
        cache = self.cache if use_cache else PulseCache()
        block_compiler = BlockPulseCompiler(
            device, self.settings, self.hyperparameters, cache
        )
        pipeline = full_grape_pipeline(
            block_compiler, self.max_block_width, self.executor
        )
        start = time.perf_counter()
        contexts, report = pipeline.run_many(circuits)
        elapsed = time.perf_counter() - start
        batch_metadata = {
            "scheduler": report.as_dict() if report else None,
            "batch_wall_time_s": elapsed,
        }
        cache_stats = cache.stats()
        return [
            result_from_context(
                self.method, context, elapsed, cache, batch_metadata, cache_stats
            )
            for context in contexts
        ]

    def compile_parametrized_many(
        self,
        circuit: QuantumCircuit,
        values_list: Sequence[Sequence[float]],
        use_cache: bool = False,
    ) -> list:
        """Bind one ansatz at many parametrizations and batch-compile them.

        The batch scheduler makes the variational sharing explicit: blocks
        that do not depend on the parameters are identical across every
        binding and compile once for the whole batch.
        """
        return self.compile_many(
            [circuit.bind_parameters(values) for values in values_list],
            use_cache=use_cache,
        )


class FullGrapeCompiler(_FullGrapeCompiler):
    """Deprecated constructor shim for the ``"full-grape"`` service strategy.

    The implementation lives in :class:`_FullGrapeCompiler`, which the
    strategy registry serves as ``"full-grape"``; this name remains only
    so pre-service callers keep working, and emits one
    :class:`~repro.service.config.ReproDeprecationWarning` per
    construction.  Use
    ``CompilationService.compile(CompileRequest(strategy="full-grape"))``.
    """

    def __init__(self, *args, **kwargs):
        warn_deprecated("FullGrapeCompiler", "full-grape")
        super().__init__(*args, **kwargs)
