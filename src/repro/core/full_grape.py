"""Full GRAPE compilation (paper section 5).

The whole bound circuit is blocked into ≤4-qubit subcircuits, each compiled
with the minimum-time GRAPE search.  This gives the best pulse durations but
pays the full compilation latency at *every* variational iteration — the
problem partial compilation solves.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.core.cache import PulseCache
from repro.core.compiler import BlockPulseCompiler, default_device_for, gate_based_program
from repro.core.results import CompiledPulse
from repro.errors import CompilationError
from repro.pulse.device import GmonDevice
from repro.pulse.grape.engine import GrapeHyperparameters, GrapeSettings
from repro.pulse.schedule import PulseProgram


class FullGrapeCompiler:
    """Out-of-the-box GRAPE over every block of the circuit."""

    method = "grape"

    def __init__(
        self,
        device: GmonDevice | None = None,
        settings: GrapeSettings | None = None,
        hyperparameters: GrapeHyperparameters | None = None,
        max_block_width: int | None = None,
        cache: PulseCache | None = None,
    ):
        self.device = device
        self.settings = settings or GrapeSettings()
        self.hyperparameters = hyperparameters or GrapeHyperparameters()
        self.max_block_width = max_block_width
        self.cache = cache if cache is not None else PulseCache()

    def compile(self, circuit: QuantumCircuit, use_cache: bool = True) -> CompiledPulse:
        """Compile a fully bound circuit with GRAPE on every block.

        With ``use_cache=False`` every block is re-optimized from scratch —
        the honest out-of-the-box latency the paper measures for full GRAPE.
        """
        if circuit.is_parameterized():
            raise CompilationError("bind parameters before compiling")
        device = self.device or default_device_for(circuit)
        cache = self.cache if use_cache else PulseCache()
        block_compiler = BlockPulseCompiler(
            device, self.settings, self.hyperparameters, cache
        )
        start = time.perf_counter()
        outcomes, blocked = block_compiler.compile_circuit_blocks(
            circuit, self.max_block_width
        )
        program = PulseProgram.sequence([o.schedule for o in outcomes])
        # Strictly-better guarantee: blocked pulses are atomic, so in rare
        # tightly-scheduled circuits the block program can lose slack; never
        # report worse than the lookup-table baseline (paper section 5.2).
        used_fallback = False
        baseline = gate_based_program(circuit)
        if baseline.duration_ns < program.duration_ns:
            program = baseline
            used_fallback = True
        elapsed = time.perf_counter() - start
        return CompiledPulse(
            method=self.method,
            program=program,
            pulse_duration_ns=program.duration_ns,
            runtime_latency_s=elapsed,
            runtime_iterations=sum(o.iterations for o in outcomes),
            blocks_compiled=len(outcomes),
            cache_hits=sum(1 for o in outcomes if o.cache_hit),
            metadata={
                "program_fallback": used_fallback,
                "blocks": len(blocked),
                "grape_blocks": sum(1 for o in outcomes if o.used_grape),
                "fallback_blocks": sum(
                    1 for o in outcomes if not o.used_grape and o.iterations > 0
                ),
            },
        )

    def compile_parametrized(
        self, circuit: QuantumCircuit, values: Sequence[float], use_cache: bool = False
    ) -> CompiledPulse:
        """Bind ``values`` then compile — one (expensive) variational
        iteration.  Caching defaults off: each iteration's angles are new,
        and the paper's full-GRAPE latency is the uncached cost."""
        return self.compile(circuit.bind_parameters(values), use_cache=use_cache)
