"""Strict partial compilation (paper section 6).

Pre-compute optimal GRAPE pulses for every parametrization-independent
(Fixed) subcircuit once; at run time, concatenate those precompiled pulses
with lookup pulses for the parameter-dependent ``Rz(θᵢ)`` gates.  Runtime
compilation latency is therefore the same as gate-based compilation —
essentially zero — while the Fixed blocks run at GRAPE speed, so strict
partial compilation is *strictly better* than gate-based compilation.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.blocking.aggregate import aggregate_blocks
from repro.circuits.circuit import QuantumCircuit
from repro.config import GATE_DURATIONS_NS, get_preset
from repro.core.cache import PulseCache
from repro.core.compiler import BlockPulseCompiler, default_device_for, gate_based_program
from repro.core.results import CompiledPulse, PrecompileReport
from repro.errors import CompilationError
from repro.pulse.device import GmonDevice
from repro.pulse.grape.engine import GrapeHyperparameters, GrapeSettings
from repro.pulse.schedule import PulseProgram, lookup_schedule


class StrictPartialCompiler:
    """Precompiled Fixed blocks + lookup ``Rz(θ)`` pulses."""

    method = "strict"

    def __init__(
        self,
        circuit: QuantumCircuit,
        device: GmonDevice,
        plan: list,
        report: PrecompileReport,
    ):
        self.circuit = circuit
        self.device = device
        self._plan = plan  # entries: ("pulse", schedule) | ("rz", qubit, expr)
        self.report = report
        self.parameters = circuit.parameters

    # -- construction -------------------------------------------------------
    @classmethod
    def precompile(
        cls,
        circuit: QuantumCircuit,
        device: GmonDevice | None = None,
        settings: GrapeSettings | None = None,
        hyperparameters: GrapeHyperparameters | None = None,
        max_block_width: int | None = None,
        cache: PulseCache | None = None,
    ) -> "StrictPartialCompiler":
        """Slice ``circuit`` and GRAPE-precompile every Fixed block.

        This is the pre-computation phase; its cost is recorded in
        :attr:`report` and is *not* charged to runtime compilation.
        """
        device = device or default_device_for(circuit)
        width = (
            max_block_width
            if max_block_width is not None
            else get_preset().max_block_qubits
        )
        block_compiler = BlockPulseCompiler(
            device, settings, hyperparameters, cache or PulseCache()
        )
        start = time.perf_counter()
        iterations = 0
        blocks_done = 0
        cache_hits = 0
        plan: list[tuple] = []
        # Parametrized gates become isolated singleton blocks; the Fixed
        # gates between them aggregate into maximal parametrization-
        # independent subcircuits with per-qubit barriers (the DAG-aware
        # reading of the paper's Figure 3b, which avoids serializing
        # unrelated qubits across an Rz(θ)).
        parametrized = {
            idx for idx, inst in enumerate(circuit) if inst.parameters
        }
        for idx in parametrized:
            params = circuit[idx].parameters
            if len(params) > 1:
                names = sorted(p.name for p in params)
                raise CompilationError(
                    f"gate {circuit[idx]!r} depends on several parameters {names}"
                )
        blocked = aggregate_blocks(circuit, width, isolate=parametrized)
        for block in blocked.blocks:
            if block.instruction_indices[0] in parametrized:
                inst = circuit[block.instruction_indices[0]]
                plan.append(
                    ("lookup", inst.qubits, inst.gate.name, inst.gate.params[0])
                )
                continue
            sub, device_qubits = blocked.local_circuit(block)
            outcome = block_compiler.compile_block(sub, device_qubits)
            iterations += outcome.iterations
            blocks_done += 1
            cache_hits += int(outcome.cache_hit)
            plan.append(("pulse", outcome.schedule))
        report = PrecompileReport(
            method=cls.method,
            wall_time_s=time.perf_counter() - start,
            grape_iterations=iterations,
            blocks_precompiled=blocks_done,
            parametrized_blocks=sum(1 for p in plan if p[0] == "lookup"),
            cache_hits=cache_hits,
            metadata={"blocks": len(blocked)},
        )
        return cls(circuit, device, plan, report)

    # -- runtime -----------------------------------------------------------
    def compile(self, values: Sequence[float] | dict) -> CompiledPulse:
        """Compile for one parametrization — pure concatenation, no GRAPE.

        ``values`` binds the circuit's parameters (sequence in index order
        or a mapping); binding only affects the *angles* of the lookup
        pulses, not any duration, so this is exactly the gate-based runtime
        cost.
        """
        if not isinstance(values, dict):
            values = dict(zip(self.parameters, values))
        missing = [p.name for p in self.parameters if p not in values]
        if missing:
            raise CompilationError(f"missing values for parameters {missing}")
        start = time.perf_counter()
        schedules = []
        for entry in self._plan:
            if entry[0] == "pulse":
                schedules.append(entry[1])
            else:
                _, qubits, gate_name, _expr = entry
                duration = GATE_DURATIONS_NS.get(gate_name, GATE_DURATIONS_NS["rz"])
                schedules.append(lookup_schedule(qubits, duration))
        program = PulseProgram.sequence(schedules)
        # Strictly-better guarantee (paper section 6): never exceed the
        # lookup-table baseline for this parametrization.
        used_fallback = False
        baseline = gate_based_program(self.circuit.bind_parameters(values))
        if baseline.duration_ns < program.duration_ns:
            program = baseline
            used_fallback = True
        elapsed = time.perf_counter() - start
        return CompiledPulse(
            method=self.method,
            program=program,
            pulse_duration_ns=program.duration_ns,
            runtime_latency_s=elapsed,
            runtime_iterations=0,
            blocks_compiled=len(schedules),
            metadata={
                "precompiled_blocks": self.report.blocks_precompiled,
                "program_fallback": used_fallback,
            },
        )
