"""Strict partial compilation (paper section 6).

Pre-compute optimal GRAPE pulses for every parametrization-independent
(Fixed) subcircuit once; at run time, concatenate those precompiled pulses
with lookup pulses for the parameter-dependent ``Rz(θᵢ)`` gates.  Runtime
compilation latency is therefore the same as gate-based compilation —
essentially zero — while the Fixed blocks run at GRAPE speed, so strict
partial compilation is *strictly better* than gate-based compilation.

The precompute phase is a configuration of the shared
:class:`~repro.pipeline.pipeline.CompilationPipeline`:
``block(isolate θ) → pulse``, where Fixed blocks flow through the pluggable
block executor (they are independent GRAPE searches) and each isolated
``Rz(θ)`` maps straight to a lookup-pulse plan entry.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.config import GATE_DURATIONS_NS
from repro.core.cache import PulseCache, default_pulse_cache
from repro.core.compiler import BlockPulseCompiler, default_device_for, gate_based_program
from repro.core.results import CompiledPulse, PrecompileReport
from repro.errors import CompilationError
from repro.pipeline.stages import BlockTask
from repro.pipeline.strategies import strict_precompile_pipeline
from repro.pulse.device import GmonDevice
from repro.pulse.grape.engine import GrapeHyperparameters, GrapeSettings
from repro.pulse.schedule import PulseProgram, lookup_schedule
from repro.service.config import warn_deprecated


def _lookup_plan_entry(task: BlockTask) -> tuple:
    """Runtime plan slot for one isolated ``Rz(θ)`` (picklable handler)."""
    inst = task.instruction
    return ("lookup", inst.qubits, inst.gate.name, inst.gate.params[0])


class _StrictPartialCompiler:
    """Precompiled Fixed blocks + lookup ``Rz(θ)`` pulses."""

    method = "strict"

    def __init__(
        self,
        circuit: QuantumCircuit,
        device: GmonDevice,
        plan: list,
        report: PrecompileReport,
    ):
        self.circuit = circuit
        self.device = device
        self._plan = plan  # entries: ("pulse", schedule) | ("lookup", qubits, gate, expr)
        self.report = report
        self.parameters = circuit.parameters

    # -- construction -------------------------------------------------------
    @classmethod
    def precompile(
        cls,
        circuit: QuantumCircuit,
        device: GmonDevice | None = None,
        settings: GrapeSettings | None = None,
        hyperparameters: GrapeHyperparameters | None = None,
        max_block_width: int | None = None,
        cache: PulseCache | None = None,
        executor=None,
    ) -> "StrictPartialCompiler":
        """Slice ``circuit`` and GRAPE-precompile every Fixed block.

        This is the pre-computation phase; its cost is recorded in
        :attr:`report` and is *not* charged to runtime compilation.
        ``executor`` parallelizes the independent Fixed-block GRAPE
        searches (name or executor instance; ``None`` = configured default).
        """
        device = device or default_device_for(circuit)
        block_compiler = BlockPulseCompiler(
            device,
            settings,
            hyperparameters,
            cache if cache is not None else default_pulse_cache(),
        )
        # Parametrized gates become isolated singleton blocks; the Fixed
        # gates between them aggregate into maximal parametrization-
        # independent subcircuits with per-qubit barriers (the DAG-aware
        # reading of the paper's Figure 3b, which avoids serializing
        # unrelated qubits across an Rz(θ)).
        pipeline = strict_precompile_pipeline(
            block_compiler, _lookup_plan_entry, max_block_width, executor
        )
        start = time.perf_counter()
        context = pipeline.run(circuit)
        return cls._from_context(
            circuit, device, block_compiler, context, time.perf_counter() - start
        )

    @classmethod
    def precompile_many(
        cls,
        circuits: Sequence[QuantumCircuit],
        device: GmonDevice | None = None,
        settings: GrapeSettings | None = None,
        hyperparameters: GrapeHyperparameters | None = None,
        max_block_width: int | None = None,
        cache: PulseCache | None = None,
        executor=None,
        state=None,
    ) -> list:
        """Precompile a *batch* of ansätze, sharing Fixed blocks across them.

        All circuits flow through one pipeline whose pulse stage is a single
        :class:`~repro.pipeline.scheduler.BlockScheduler` pass: Fixed blocks
        with the same unitary fingerprint and control context — within one
        ansatz or across ansätze — run GRAPE exactly once.  ``state`` (a
        :class:`~repro.pipeline.scheduler.SchedulerState`) extends the dedup
        across *calls*: pass the same state object to successive
        ``precompile_many`` invocations (or share it with a
        :class:`~repro.pipeline.session.VariationalSession`) and later
        batches pay only for blocks never seen before.

        Returns one compiler per circuit, in order; each report's
        ``wall_time_s`` is the shared batch wall time and its
        ``metadata["scheduler"]`` the batch dedup accounting.
        """
        circuits = list(circuits)
        if not circuits:
            return []
        device = device or default_device_for(
            max(circuits, key=lambda c: c.num_qubits)
        )
        block_compiler = BlockPulseCompiler(
            device,
            settings,
            hyperparameters,
            cache if cache is not None else default_pulse_cache(),
        )
        pipeline = strict_precompile_pipeline(
            block_compiler, _lookup_plan_entry, max_block_width, executor
        )
        start = time.perf_counter()
        contexts, report = pipeline.run_many(circuits, state=state)
        elapsed = time.perf_counter() - start
        batch_metadata = {
            "scheduler": report.as_dict() if report is not None else None,
            "batch": len(circuits),
        }
        return [
            cls._from_context(
                circuit, device, block_compiler, context, elapsed, batch_metadata
            )
            for circuit, context in zip(circuits, contexts)
        ]

    @classmethod
    def _from_context(
        cls,
        circuit: QuantumCircuit,
        device: GmonDevice,
        block_compiler: BlockPulseCompiler,
        context,
        wall_time_s: float,
        extra_metadata: dict | None = None,
    ) -> "StrictPartialCompiler":
        """Fold one precompile pipeline context into a compiler instance."""
        iterations = 0
        blocks_done = 0
        cache_hits = 0
        plan: list[tuple] = []
        for task, result in zip(context.tasks, context.block_results):
            if task.kind == "parametrized":
                plan.append(result)
                continue
            iterations += result.iterations
            blocks_done += 1
            cache_hits += int(result.cache_hit)
            plan.append(("pulse", result.schedule))
        metadata = {
            "blocks": context.metadata["blocks"],
            "stage_timings": context.stage_timing_dict(),
        }
        if extra_metadata:
            metadata.update(extra_metadata)
        report = PrecompileReport(
            method=cls.method,
            wall_time_s=wall_time_s,
            grape_iterations=iterations,
            blocks_precompiled=blocks_done,
            parametrized_blocks=sum(1 for p in plan if p[0] == "lookup"),
            cache_hits=cache_hits,
            executor=context.executor_info.get("executor", "serial"),
            cache_stats=block_compiler.cache.stats(),
            metadata=metadata,
        )
        return cls(circuit, device, plan, report)

    # -- runtime -----------------------------------------------------------
    def compile(self, values: Sequence[float] | dict) -> CompiledPulse:
        """Compile for one parametrization — pure concatenation, no GRAPE.

        ``values`` binds the circuit's parameters (sequence in index order
        or a mapping); binding only affects the *angles* of the lookup
        pulses, not any duration, so this is exactly the gate-based runtime
        cost.
        """
        if not isinstance(values, dict):
            values = dict(zip(self.parameters, values))
        missing = [p.name for p in self.parameters if p not in values]
        if missing:
            raise CompilationError(f"missing values for parameters {missing}")
        start = time.perf_counter()
        schedules = []
        for entry in self._plan:
            if entry[0] == "pulse":
                schedules.append(entry[1])
            else:
                _, qubits, gate_name, _expr = entry
                duration = GATE_DURATIONS_NS.get(gate_name, GATE_DURATIONS_NS["rz"])
                schedules.append(lookup_schedule(qubits, duration))
        program = PulseProgram.sequence(schedules)
        # Strictly-better guarantee (paper section 6): never exceed the
        # lookup-table baseline for this parametrization.
        used_fallback = False
        baseline = gate_based_program(self.circuit.bind_parameters(values))
        if baseline.duration_ns < program.duration_ns:
            program = baseline
            used_fallback = True
        elapsed = time.perf_counter() - start
        return CompiledPulse(
            method=self.method,
            program=program,
            pulse_duration_ns=program.duration_ns,
            runtime_latency_s=elapsed,
            runtime_iterations=0,
            blocks_compiled=len(schedules),
            metadata={
                "precompiled_blocks": self.report.blocks_precompiled,
                "program_fallback": used_fallback,
            },
        )


class StrictPartialCompiler(_StrictPartialCompiler):
    """Deprecated constructor shim for the ``"strict-partial"`` strategy.

    The implementation lives in :class:`_StrictPartialCompiler`, which the
    strategy registry serves as ``"strict-partial"``; this name remains
    only so pre-service callers keep working.  Each construction — direct
    or via ``precompile`` / ``precompile_many`` (classmethods construct
    through ``cls``) — emits one
    :class:`~repro.service.config.ReproDeprecationWarning`.  Use
    ``CompilationService.compile(CompileRequest(strategy="strict-partial"))``.
    """

    def __init__(self, *args, **kwargs):
        warn_deprecated("StrictPartialCompiler", "strict-partial")
        super().__init__(*args, **kwargs)
