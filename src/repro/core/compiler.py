"""Shared machinery for pulse compilers.

:class:`BlockPulseCompiler` turns one bound block subcircuit into a pulse
schedule: it consults the pulse cache, runs the minimum-time GRAPE search,
and — crucially — falls back to concatenated lookup pulses whenever GRAPE
cannot beat the block's gate-based duration.  This fallback is what makes
full GRAPE and strict partial compilation *strictly better* than gate-based
compilation (paper sections 5.2 and 6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import critical_path_ns
from repro.core.cache import CacheEntry, PulseCache, default_pulse_cache
from repro.errors import CompilationError
from repro.pipeline.executors import resolve_executor
from repro.pipeline.stages import lookup_program
from repro.pulse.device import GmonDevice
from repro.pulse.grape.engine import GrapeHyperparameters, GrapeSettings
from repro.pulse.grape.time_search import minimum_time_pulse
from repro.pulse.hamiltonian import build_control_set
from repro.pulse.schedule import PulseSchedule, lookup_schedule
from repro.sim.unitary import circuit_unitary


@dataclass
class BlockCompileOutcome:
    """One block's pulse plus work accounting."""

    schedule: PulseSchedule
    duration_ns: float
    gate_based_ns: float
    iterations: int
    cache_hit: bool
    used_grape: bool
    fidelity: float


class BlockPulseCompiler:
    """Compiles bound subcircuits on device-qubit blocks into pulses."""

    def __init__(
        self,
        device: GmonDevice,
        settings: GrapeSettings | None = None,
        hyperparameters: GrapeHyperparameters | None = None,
        cache: PulseCache | None = None,
    ):
        self.device = device
        self.settings = settings or GrapeSettings()
        self.hyperparameters = hyperparameters or GrapeHyperparameters()
        self.cache = cache if cache is not None else default_pulse_cache()

    def gate_based_schedules(self, circuit: QuantumCircuit) -> list:
        """Per-gate lookup pulses for ``circuit`` (the gate-based model)."""
        from repro.pipeline.stages import lookup_schedules

        return lookup_schedules(circuit)

    def task_key(
        self, subcircuit: QuantumCircuit | None, device_qubits: tuple
    ) -> tuple | None:
        """The dedup/cache identity of one block, or ``None`` if it has none.

        Two blocks with the same key — same phase-canonical target unitary
        and the same physical context (relative channel layout, time step,
        fidelity target) — compile to interchangeable pulses, so a batch
        scheduler may compile one and fan the result out to the others.
        Parametrized, empty, and zero-duration blocks return ``None``:
        they are either not compilable yet or too cheap to dedup.
        """
        if subcircuit is None or subcircuit.is_parameterized():
            return None
        if len(subcircuit) == 0 or critical_path_ns(subcircuit) <= 0:
            return None
        control_set = build_control_set(self.device, device_qubits)
        target = circuit_unitary(subcircuit)
        return self.cache.key(
            target,
            control_set,
            self.settings.resolved_dt(),
            self.settings.resolved_target(),
        )

    # -- outcome construction (one rulebook for serial and batched paths) --
    def _trivial_outcome(
        self, device_qubits: tuple, gate_ns: float
    ) -> BlockCompileOutcome:
        """Outcome for an empty or zero-duration block (no GRAPE, no cache)."""
        empty = lookup_schedule(device_qubits, max(gate_ns, 0.0) or 1e-9)
        return BlockCompileOutcome(
            schedule=empty,
            duration_ns=0.0,
            gate_based_ns=gate_ns,
            iterations=0,
            cache_hit=False,
            used_grape=False,
            fidelity=1.0,
        )

    def _cache_hit_outcome(
        self, device_qubits: tuple, gate_ns: float, cached: CacheEntry
    ) -> BlockCompileOutcome:
        """Outcome for a cached pulse, applying the strictly-not-worse rule."""
        usable = cached.converged and cached.duration_ns <= gate_ns + 1e-9
        if usable:
            schedule = PulseSchedule(
                qubits=tuple(device_qubits),
                dt_ns=cached.schedule.dt_ns,
                controls=cached.schedule.controls,
                channel_names=cached.schedule.channel_names,
                source="cache",
            )
            duration = cached.duration_ns
        else:
            # Same rule as the fresh path: a pulse that does not beat the
            # lookup table falls back to it.
            schedule = lookup_schedule(device_qubits, gate_ns, source="fallback")
            duration = gate_ns
        return BlockCompileOutcome(
            schedule=schedule,
            duration_ns=duration,
            gate_based_ns=gate_ns,
            iterations=0,
            cache_hit=True,
            used_grape=usable,
            fidelity=cached.fidelity,
        )

    def _fresh_outcome(
        self, device_qubits: tuple, gate_ns: float, key, result
    ) -> BlockCompileOutcome:
        """Cache + judge one fresh minimum-time search result."""
        self.cache.put(
            key,
            CacheEntry(
                schedule=result.schedule,
                duration_ns=result.duration_ns,
                fidelity=result.fidelity,
                converged=result.converged,
                iterations=result.total_iterations,
            ),
        )
        if result.converged and result.duration_ns <= gate_ns + 1e-9:
            schedule = PulseSchedule(
                qubits=tuple(device_qubits),
                dt_ns=result.schedule.dt_ns,
                controls=result.schedule.controls,
                channel_names=result.schedule.channel_names,
                source="grape",
            )
            return BlockCompileOutcome(
                schedule=schedule,
                duration_ns=result.duration_ns,
                gate_based_ns=gate_ns,
                iterations=result.total_iterations,
                cache_hit=False,
                used_grape=True,
                fidelity=result.fidelity,
            )
        # GRAPE could not beat the lookup table within budget: fall back, so
        # pulse compilation is never worse than gate-based compilation.
        return BlockCompileOutcome(
            schedule=lookup_schedule(device_qubits, gate_ns, source="fallback"),
            duration_ns=gate_ns,
            gate_based_ns=gate_ns,
            iterations=result.total_iterations,
            cache_hit=False,
            used_grape=False,
            fidelity=result.fidelity,
        )

    def compile_block(
        self,
        subcircuit: QuantumCircuit,
        device_qubits: tuple,
        hyperparameters: GrapeHyperparameters | None = None,
    ) -> BlockCompileOutcome:
        """Produce the pulse for one block.

        Parameters
        ----------
        subcircuit:
            Bound circuit on local qubits ``0 … k-1``.
        device_qubits:
            The device qubits behind each local index (sorted ascending).
        hyperparameters:
            Optional per-block override (flexible partial compilation passes
            its tuned values here).
        """
        if subcircuit.is_parameterized():
            raise CompilationError("block must be bound before pulse compilation")
        gate_ns = critical_path_ns(subcircuit)
        if len(subcircuit) == 0 or gate_ns <= 0:
            return self._trivial_outcome(device_qubits, gate_ns)

        control_set = build_control_set(self.device, device_qubits)
        target = circuit_unitary(subcircuit)
        dt = self.settings.resolved_dt()
        fid_target = self.settings.resolved_target()
        key = self.cache.key(target, control_set, dt, fid_target)
        cached = self.cache.get(key)
        if cached is not None:
            return self._cache_hit_outcome(device_qubits, gate_ns, cached)

        hyper = hyperparameters or self.hyperparameters
        result = minimum_time_pulse(
            control_set,
            target,
            upper_bound_ns=max(gate_ns, dt),
            hyperparameters=hyper,
            settings=self.settings,
        )
        return self._fresh_outcome(device_qubits, gate_ns, key, result)

    def compile_blocks_batched(
        self,
        blocks: list,
        hyperparameters: GrapeHyperparameters | None = None,
        max_group: int | None = None,
    ) -> tuple:
        """Compile many blocks at once, batching same-shape GRAPE searches.

        ``blocks`` is a list of ``(subcircuit, device_qubits)`` pairs.  Each
        block runs the exact same path as :meth:`compile_block` — trivial
        blocks, cache hits, and the strictly-not-worse judgment are
        per-block and unchanged — but cache misses are grouped by control
        shape ``(dim, n_controls)`` and each group's minimum-time searches
        run through the cross-block batched kernel
        (:func:`repro.pulse.grape.batched.minimum_time_pulse_batch`), which
        is bit-identical to the serial searches.  Singleton groups take the
        per-block kernel directly.

        Returns ``(outcomes, stats)`` with outcomes in input order and
        ``stats = {"batched_groups": ..., "batched_blocks": ...}``.
        """
        from repro.pulse.grape.batched import minimum_time_pulse_batch

        dt = self.settings.resolved_dt()
        fid_target = self.settings.resolved_target()
        hyper = hyperparameters or self.hyperparameters

        outcomes: list = [None] * len(blocks)
        cold: list = []  # (index, control_set, target, gate_ns, key)
        for i, (subcircuit, device_qubits) in enumerate(blocks):
            if subcircuit.is_parameterized():
                raise CompilationError(
                    "block must be bound before pulse compilation"
                )
            gate_ns = critical_path_ns(subcircuit)
            if len(subcircuit) == 0 or gate_ns <= 0:
                outcomes[i] = self._trivial_outcome(device_qubits, gate_ns)
                continue
            control_set = build_control_set(self.device, device_qubits)
            target = circuit_unitary(subcircuit)
            key = self.cache.key(target, control_set, dt, fid_target)
            cached = self.cache.get(key)
            if cached is not None:
                outcomes[i] = self._cache_hit_outcome(
                    device_qubits, gate_ns, cached
                )
                continue
            cold.append((i, control_set, target, gate_ns, key))

        by_shape: dict = {}
        for entry in cold:
            control_set = entry[1]
            by_shape.setdefault(
                (control_set.dim, control_set.num_controls), []
            ).append(entry)

        stats = {"batched_groups": 0, "batched_blocks": 0}
        for members in by_shape.values():
            if len(members) == 1:
                i, control_set, target, gate_ns, key = members[0]
                result = minimum_time_pulse(
                    control_set,
                    target,
                    upper_bound_ns=max(gate_ns, dt),
                    hyperparameters=hyper,
                    settings=self.settings,
                )
                outcomes[i] = self._fresh_outcome(
                    blocks[i][1], gate_ns, key, result
                )
                continue
            stats["batched_groups"] += 1
            stats["batched_blocks"] += len(members)
            results = minimum_time_pulse_batch(
                [entry[1] for entry in members],
                [entry[2] for entry in members],
                [max(entry[3], dt) for entry in members],
                hyperparameters=hyper,
                settings=self.settings,
                max_group=max_group,
            )
            for (i, _, _, gate_ns, key), result in zip(members, results):
                outcomes[i] = self._fresh_outcome(
                    blocks[i][1], gate_ns, key, result
                )
        return outcomes, stats

    def compile_circuit_blocks(
        self, circuit: QuantumCircuit, max_width: int | None = None, executor=None
    ) -> tuple:
        """Aggregate ``circuit`` into blocks and compile each.

        A convenience wrapper over the pipeline's blocking + pulse stages.
        ``executor`` dispatches the independent per-block GRAPE searches
        (an executor name or :class:`~repro.pipeline.executors.BlockExecutor`;
        ``None`` uses the configured default).  Returns ``(outcomes, blocked)``
        with outcomes in block order regardless of executor.
        """
        from functools import partial

        from repro.pipeline.pipeline import CompilationPipeline
        from repro.pipeline.stages import BlockingStage, PulseStage
        from repro.pipeline.strategies import compile_fixed_block

        context = CompilationPipeline(
            [
                BlockingStage(max_width),
                PulseStage(
                    partial(compile_fixed_block, self),
                    executor=resolve_executor(executor),
                ),
            ],
            name="blocks",
        ).run(circuit)
        return context.block_results, context.blocked[0]


def default_device_for(circuit: QuantumCircuit) -> GmonDevice:
    """The default gmon grid sized for ``circuit``."""
    return GmonDevice.grid_for(circuit.num_qubits)


def gate_based_program(circuit: QuantumCircuit):
    """The pure lookup-table pulse program for a bound circuit.

    Used both by the gate-based baseline and as the strictly-not-worse
    fallback of every GRAPE-based strategy: pulse blocks are atomic across
    their qubits, so a blocked program can occasionally lose a little
    scheduling slack relative to the gate-level ASAP schedule; whenever that
    overhead eats the GRAPE gains, compilers fall back to this program
    (the paper's no-delay blocking criterion, section 5.2).
    """
    return lookup_program(circuit)
