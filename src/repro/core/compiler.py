"""Shared machinery for pulse compilers.

:class:`BlockPulseCompiler` turns one bound block subcircuit into a pulse
schedule: it consults the pulse cache, runs the minimum-time GRAPE search,
and — crucially — falls back to concatenated lookup pulses whenever GRAPE
cannot beat the block's gate-based duration.  This fallback is what makes
full GRAPE and strict partial compilation *strictly better* than gate-based
compilation (paper sections 5.2 and 6).

Cache-missing blocks are *warm-started* rather than compiled cold: the
cache's approximate-match index (:meth:`repro.core.cache.PulseCache
.find_neighbor`) supplies the nearest cached pulse as a GRAPE seed, and
two-qubit blocks without a neighbor get an analytic seed from the KAK
decomposition (:mod:`repro.pulse.grape.seeding`).  A best-of guard keeps
seeding strictly safe: a seeded search that fails to converge falls back to
the cold search and keeps whichever pulse is better, so a bad seed can
never yield a worse pulse than a cold start — only spend extra iterations,
which the ``grape.warm_start.*`` counters make visible.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import critical_path_ns
from repro.core.cache import CacheEntry, PulseCache, default_pulse_cache
from repro.errors import CompilationError
from repro.perf import get_perf_registry
from repro.pipeline.executors import resolve_executor
from repro.pipeline.stages import lookup_program
from repro.pulse.device import GmonDevice
from repro.pulse.grape.engine import GrapeHyperparameters, GrapeSettings
from repro.pulse.grape.time_search import minimum_time_pulse
from repro.pulse.hamiltonian import build_control_set
from repro.pulse.schedule import PulseSchedule, lookup_schedule
from repro.sim.unitary import circuit_unitary


@dataclass
class BlockCompileOutcome:
    """One block's pulse plus work accounting."""

    schedule: PulseSchedule
    duration_ns: float
    gate_based_ns: float
    iterations: int
    cache_hit: bool
    used_grape: bool
    fidelity: float


class BlockPulseCompiler:
    """Compiles bound subcircuits on device-qubit blocks into pulses."""

    def __init__(
        self,
        device: GmonDevice,
        settings: GrapeSettings | None = None,
        hyperparameters: GrapeHyperparameters | None = None,
        cache: PulseCache | None = None,
        warm_start: bool | None = None,
        warm_start_max_dist: float | None = None,
    ):
        self.device = device
        self.settings = settings or GrapeSettings()
        self.hyperparameters = hyperparameters or GrapeHyperparameters()
        self.cache = cache if cache is not None else default_pulse_cache()
        # ``None`` defers to the active pipeline configuration at search
        # time (the service passes its own config values explicitly).
        self.warm_start = warm_start
        self.warm_start_max_dist = warm_start_max_dist

    def gate_based_schedules(self, circuit: QuantumCircuit) -> list:
        """Per-gate lookup pulses for ``circuit`` (the gate-based model)."""
        from repro.pipeline.stages import lookup_schedules

        return lookup_schedules(circuit)

    def task_key(
        self, subcircuit: QuantumCircuit | None, device_qubits: tuple
    ) -> tuple | None:
        """The dedup/cache identity of one block, or ``None`` if it has none.

        Two blocks with the same key — same phase-canonical target unitary
        and the same physical context (relative channel layout, time step,
        fidelity target) — compile to interchangeable pulses, so a batch
        scheduler may compile one and fan the result out to the others.
        Parametrized, empty, and zero-duration blocks return ``None``:
        they are either not compilable yet or too cheap to dedup.
        """
        if subcircuit is None or subcircuit.is_parameterized():
            return None
        if len(subcircuit) == 0 or critical_path_ns(subcircuit) <= 0:
            return None
        control_set = build_control_set(self.device, device_qubits)
        target = circuit_unitary(subcircuit)
        return self.cache.key(
            target,
            control_set,
            self.settings.resolved_dt(),
            self.settings.resolved_target(),
        )

    # -- outcome construction (one rulebook for serial and batched paths) --
    def _trivial_outcome(
        self, device_qubits: tuple, gate_ns: float
    ) -> BlockCompileOutcome:
        """Outcome for an empty or zero-duration block (no GRAPE, no cache)."""
        empty = lookup_schedule(device_qubits, max(gate_ns, 0.0) or 1e-9)
        return BlockCompileOutcome(
            schedule=empty,
            duration_ns=0.0,
            gate_based_ns=gate_ns,
            iterations=0,
            cache_hit=False,
            used_grape=False,
            fidelity=1.0,
        )

    def _cache_hit_outcome(
        self, device_qubits: tuple, gate_ns: float, cached: CacheEntry
    ) -> BlockCompileOutcome:
        """Outcome for a cached pulse, applying the strictly-not-worse rule."""
        usable = cached.converged and cached.duration_ns <= gate_ns + 1e-9
        if usable:
            schedule = PulseSchedule(
                qubits=tuple(device_qubits),
                dt_ns=cached.schedule.dt_ns,
                controls=cached.schedule.controls,
                channel_names=cached.schedule.channel_names,
                source="cache",
            )
            duration = cached.duration_ns
        else:
            # Same rule as the fresh path: a pulse that does not beat the
            # lookup table falls back to it.
            schedule = lookup_schedule(device_qubits, gate_ns, source="fallback")
            duration = gate_ns
        return BlockCompileOutcome(
            schedule=schedule,
            duration_ns=duration,
            gate_based_ns=gate_ns,
            iterations=0,
            cache_hit=True,
            used_grape=usable,
            fidelity=cached.fidelity,
        )

    def _fresh_outcome(
        self, device_qubits: tuple, gate_ns: float, key, result, target=None
    ) -> BlockCompileOutcome:
        """Cache + judge one fresh minimum-time search result."""
        self.cache.put(
            key,
            CacheEntry(
                schedule=result.schedule,
                duration_ns=result.duration_ns,
                fidelity=result.fidelity,
                converged=result.converged,
                iterations=result.total_iterations,
            ),
            target=target,
        )
        if result.converged and result.duration_ns <= gate_ns + 1e-9:
            schedule = PulseSchedule(
                qubits=tuple(device_qubits),
                dt_ns=result.schedule.dt_ns,
                controls=result.schedule.controls,
                channel_names=result.schedule.channel_names,
                source="grape",
            )
            return BlockCompileOutcome(
                schedule=schedule,
                duration_ns=result.duration_ns,
                gate_based_ns=gate_ns,
                iterations=result.total_iterations,
                cache_hit=False,
                used_grape=True,
                fidelity=result.fidelity,
            )
        # GRAPE could not beat the lookup table within budget: fall back, so
        # pulse compilation is never worse than gate-based compilation.
        return BlockCompileOutcome(
            schedule=lookup_schedule(device_qubits, gate_ns, source="fallback"),
            duration_ns=gate_ns,
            gate_based_ns=gate_ns,
            iterations=result.total_iterations,
            cache_hit=False,
            used_grape=False,
            fidelity=result.fidelity,
        )

    # -- warm-started minimum-time search ---------------------------------
    def _find_seed(
        self, key, target: np.ndarray, control_set, gate_ns: float
    ) -> PulseSchedule | None:
        """A warm-start seed for one cache-missing block, or ``None``.

        Preference order per the warm-start design: the nearest cached
        pulse within the configured distance threshold, then (two-qubit
        blocks only) the analytic KAK seed, then nothing — the caller runs
        a cold search.  Every branch is counted under ``grape.warm_start``.
        """
        from repro.config import get_pipeline_config

        config = get_pipeline_config()
        enabled = (
            config.warm_start if self.warm_start is None else self.warm_start
        )
        if not enabled:
            return None
        max_dist = (
            config.warm_start_max_dist
            if self.warm_start_max_dist is None
            else self.warm_start_max_dist
        )
        perf = get_perf_registry()
        perf.count("grape.warm_start.lookups")
        match = self.cache.find_neighbor(key, target, max_dist)
        if match is not None:
            perf.count("grape.warm_start.neighbor_seeds")
            donor = match.entry.schedule
            return PulseSchedule(
                qubits=control_set.qubits,
                dt_ns=donor.dt_ns,
                controls=donor.controls,
                channel_names=tuple(ch.name for ch in control_set.channels),
                source="neighbor-seed",
            )
        dt = self.settings.resolved_dt()
        steps = max(1, int(round(max(gate_ns, dt) / dt)))
        from repro.pulse.grape.seeding import kak_seed_schedule

        seed = kak_seed_schedule(control_set, target, steps, dt)
        if seed is not None:
            perf.count("grape.warm_start.kak_seeds")
            return seed
        perf.count("grape.warm_start.no_seed")
        return None

    def _seeded_search(
        self, control_set, target, gate_ns, hyper, seed: PulseSchedule
    ):
        """Minimum-time search from ``seed``, guarded best-of against cold.

        A converged seeded search is accepted outright — it met the same
        fidelity threshold a cold search would have.  Otherwise the cold
        search runs too and whichever result is better wins (convergence
        first, then final fidelity), with the loser's iterations merged
        into the returned result so latency accounting stays honest.
        """
        perf = get_perf_registry()
        dt = self.settings.resolved_dt()
        upper = max(gate_ns, dt)
        seeded = minimum_time_pulse(
            control_set,
            target,
            upper_bound_ns=upper,
            hyperparameters=hyper,
            settings=self.settings,
            warm_start=seed,
        )
        perf.count(
            "grape.warm_start.seeded_iterations", seeded.total_iterations
        )
        if seeded.converged:
            perf.count("grape.warm_start.accepted")
            return seeded
        cold = minimum_time_pulse(
            control_set,
            target,
            upper_bound_ns=upper,
            hyperparameters=hyper,
            settings=self.settings,
        )
        perf.count(
            "grape.warm_start.cold_rerun_iterations", cold.total_iterations
        )
        if cold.converged or cold.fidelity >= seeded.fidelity:
            perf.count("grape.warm_start.rejected")
            winner, loser = cold, seeded
        else:
            perf.count("grape.warm_start.accepted")
            winner, loser = seeded, cold
        return replace(
            winner,
            total_iterations=winner.total_iterations + loser.total_iterations,
            grape_calls=winner.grape_calls + loser.grape_calls,
            wall_time_s=winner.wall_time_s + loser.wall_time_s,
            probes=[*seeded.probes, *cold.probes],
        )

    def _search(self, control_set, target, gate_ns, hyper, key):
        """One block's minimum-time search, warm-started when a seed exists."""
        seed = self._find_seed(key, target, control_set, gate_ns)
        if seed is not None:
            return self._seeded_search(control_set, target, gate_ns, hyper, seed)
        dt = self.settings.resolved_dt()
        return minimum_time_pulse(
            control_set,
            target,
            upper_bound_ns=max(gate_ns, dt),
            hyperparameters=hyper,
            settings=self.settings,
        )

    def compile_block(
        self,
        subcircuit: QuantumCircuit,
        device_qubits: tuple,
        hyperparameters: GrapeHyperparameters | None = None,
    ) -> BlockCompileOutcome:
        """Produce the pulse for one block.

        Parameters
        ----------
        subcircuit:
            Bound circuit on local qubits ``0 … k-1``.
        device_qubits:
            The device qubits behind each local index (sorted ascending).
        hyperparameters:
            Optional per-block override (flexible partial compilation passes
            its tuned values here).
        """
        if subcircuit.is_parameterized():
            raise CompilationError("block must be bound before pulse compilation")
        gate_ns = critical_path_ns(subcircuit)
        if len(subcircuit) == 0 or gate_ns <= 0:
            return self._trivial_outcome(device_qubits, gate_ns)

        control_set = build_control_set(self.device, device_qubits)
        target = circuit_unitary(subcircuit)
        dt = self.settings.resolved_dt()
        fid_target = self.settings.resolved_target()
        key = self.cache.key(target, control_set, dt, fid_target)
        return self._compile_resolved(
            control_set, target, device_qubits, gate_ns, key, hyperparameters
        )

    def _compile_resolved(
        self,
        control_set,
        target: np.ndarray,
        device_qubits: tuple,
        gate_ns: float,
        key,
        hyperparameters: GrapeHyperparameters | None = None,
    ) -> BlockCompileOutcome:
        """Compile a block whose identity is already resolved.

        The shared tail of :meth:`compile_block` and :meth:`compile_job`:
        cache consultation, the warm-started minimum-time search, and the
        strictly-not-worse judgment, given the control set, target
        unitary, gate-based duration, and dedup key.
        """
        cached = self.cache.get(key)
        if cached is not None:
            # Heal the warm-start index: the hit proves this target is in
            # the cache, and only the caller still holds the unitary.
            self.cache.annotate_target(key, target)
            return self._cache_hit_outcome(device_qubits, gate_ns, cached)

        hyper = hyperparameters or self.hyperparameters
        result = self._search(control_set, target, gate_ns, hyper, key)
        return self._fresh_outcome(device_qubits, gate_ns, key, result, target)

    def make_job(
        self,
        subcircuit: QuantumCircuit,
        device_qubits: tuple,
        key: tuple | None = None,
        cache_dir: str | None = None,
    ):
        """Build the picklable :class:`~repro.pipeline.jobs.BlockJob` for
        one bound block, or ``None`` for a trivial (empty / zero-duration)
        block that needs no GRAPE.

        Deferred-to-runtime knobs are materialized here: preset-resolved
        GRAPE settings, the warm-start policy from the active pipeline
        configuration, and the preset name itself — so the job compiles
        identically in a process that never saw this configuration.
        ``key`` skips recomputing a dedup identity the caller already
        paid for (the batch scheduler always has one).
        """
        from repro.config import get_pipeline_config, get_preset
        from repro.pipeline.jobs import BlockJob

        if subcircuit.is_parameterized():
            raise CompilationError("block must be bound before pulse compilation")
        gate_ns = critical_path_ns(subcircuit)
        if len(subcircuit) == 0 or gate_ns <= 0:
            return None
        control_set = build_control_set(self.device, device_qubits)
        target = circuit_unitary(subcircuit)
        dt = self.settings.resolved_dt()
        fid_target = self.settings.resolved_target()
        if key is None:
            key = self.cache.key(target, control_set, dt, fid_target)
        config = get_pipeline_config()
        warm = config.warm_start if self.warm_start is None else self.warm_start
        max_dist = (
            config.warm_start_max_dist
            if self.warm_start_max_dist is None
            else self.warm_start_max_dist
        )
        return BlockJob(
            key=key,
            target=target,
            device_qubits=tuple(device_qubits),
            gate_based_ns=gate_ns,
            device=self.device,
            settings=replace(
                self.settings, dt_ns=dt, target_fidelity=fid_target
            ),
            hyperparameters=self.hyperparameters,
            warm_start=bool(warm),
            warm_start_max_dist=float(max_dist),
            preset=get_preset().name,
            cache_dir=cache_dir,
        )

    def compile_job(self, job) -> BlockCompileOutcome:
        """Compile one :class:`~repro.pipeline.jobs.BlockJob`.

        The job already carries the resolved identity (key, target,
        gate-based duration); only the control set is rebuilt from the
        device — channel objects are cheap and keep the job payload small.
        Bit-identical to :meth:`compile_block` on the job's source block.
        """
        control_set = build_control_set(self.device, job.device_qubits)
        return self._compile_resolved(
            control_set,
            job.target,
            job.device_qubits,
            job.gate_based_ns,
            job.key,
        )

    def compile_blocks_batched(
        self,
        blocks: list,
        hyperparameters: GrapeHyperparameters | None = None,
        max_group: int | None = None,
    ) -> tuple:
        """Compile many blocks at once, batching same-shape GRAPE searches.

        ``blocks`` is a list of ``(subcircuit, device_qubits)`` pairs.  Each
        block runs the exact same path as :meth:`compile_block` — trivial
        blocks, cache hits, and the strictly-not-worse judgment are
        per-block and unchanged — but cache misses are grouped by control
        shape ``(dim, n_controls)`` and each group's minimum-time searches
        run through the cross-block batched kernel
        (:func:`repro.pulse.grape.batched.minimum_time_pulse_batch`), which
        is bit-identical to the serial searches.  Singleton groups take the
        per-block kernel directly, and blocks with a warm-start seed
        (cached neighbor or analytic KAK — see :meth:`_find_seed`) run the
        per-block guarded search instead of batching: seeds are per-target,
        and a good seed saves more iterations than batching saves per
        iteration.

        Returns ``(outcomes, stats)`` with outcomes in input order and
        ``stats = {"batched_groups": ..., "batched_blocks": ...}``.
        """
        dt = self.settings.resolved_dt()
        fid_target = self.settings.resolved_target()
        hyper = hyperparameters or self.hyperparameters

        outcomes: list = [None] * len(blocks)
        cold: list = []  # (index, control_set, target, gate_ns, key)
        for i, (subcircuit, device_qubits) in enumerate(blocks):
            if subcircuit.is_parameterized():
                raise CompilationError(
                    "block must be bound before pulse compilation"
                )
            gate_ns = critical_path_ns(subcircuit)
            if len(subcircuit) == 0 or gate_ns <= 0:
                outcomes[i] = self._trivial_outcome(device_qubits, gate_ns)
                continue
            control_set = build_control_set(self.device, device_qubits)
            target = circuit_unitary(subcircuit)
            key = self.cache.key(target, control_set, dt, fid_target)
            cached = self.cache.get(key)
            if cached is not None:
                self.cache.annotate_target(key, target)
                outcomes[i] = self._cache_hit_outcome(
                    device_qubits, gate_ns, cached
                )
                continue
            cold.append((i, control_set, target, gate_ns, key))

        by_shape: dict = {}
        for entry in cold:
            control_set = entry[1]
            by_shape.setdefault(
                (control_set.dim, control_set.num_controls), []
            ).append(entry)

        stats = {"batched_groups": 0, "batched_blocks": 0}
        # Seeds come only from the pre-call cache state, never from pulses
        # this very call just wrote, so a batched compile produces the same
        # pulses as the equivalent per-block calls under a parallel
        # executor (see PulseCache.freeze_neighbors; nesting inside the
        # scheduler's own freeze is safe — the snapshot is depth-counted).
        self.cache.freeze_neighbors()
        try:
            self._compile_cold_groups(
                by_shape, blocks, outcomes, hyper, stats, max_group
            )
        finally:
            self.cache.thaw_neighbors()
        return outcomes, stats

    def _compile_cold_groups(
        self,
        by_shape: dict,
        blocks: list,
        outcomes: list,
        hyper,
        stats: dict,
        max_group: int | None,
    ) -> None:
        """Dispatch the cache-missing shape groups of a batched compile."""
        from repro.pulse.grape.batched import minimum_time_pulse_batch

        dt = self.settings.resolved_dt()
        for members in by_shape.values():
            # Warm starts are per-block (each seed is specific to one
            # target), so seeded members run the individual guarded search
            # and only the seedless remainder goes through the batched
            # kernel.  The trade is deliberate: a good seed saves far more
            # iterations than cross-block batching saves per iteration.
            pending = []
            for entry in members:
                i, control_set, target, gate_ns, key = entry
                seed = self._find_seed(key, target, control_set, gate_ns)
                if seed is None:
                    pending.append(entry)
                    continue
                result = self._seeded_search(
                    control_set, target, gate_ns, hyper, seed
                )
                outcomes[i] = self._fresh_outcome(
                    blocks[i][1], gate_ns, key, result, target
                )
            if not pending:
                continue
            if len(pending) == 1:
                i, control_set, target, gate_ns, key = pending[0]
                result = minimum_time_pulse(
                    control_set,
                    target,
                    upper_bound_ns=max(gate_ns, dt),
                    hyperparameters=hyper,
                    settings=self.settings,
                )
                outcomes[i] = self._fresh_outcome(
                    blocks[i][1], gate_ns, key, result, target
                )
                continue
            stats["batched_groups"] += 1
            stats["batched_blocks"] += len(pending)
            results = minimum_time_pulse_batch(
                [entry[1] for entry in pending],
                [entry[2] for entry in pending],
                [max(entry[3], dt) for entry in pending],
                hyperparameters=hyper,
                settings=self.settings,
                max_group=max_group,
            )
            for (i, _, target, gate_ns, key), result in zip(pending, results):
                outcomes[i] = self._fresh_outcome(
                    blocks[i][1], gate_ns, key, result, target
                )

    def compile_circuit_blocks(
        self, circuit: QuantumCircuit, max_width: int | None = None, executor=None
    ) -> tuple:
        """Aggregate ``circuit`` into blocks and compile each.

        A convenience wrapper over the pipeline's blocking + pulse stages.
        ``executor`` dispatches the independent per-block GRAPE searches
        (an executor name or :class:`~repro.pipeline.executors.BlockExecutor`;
        ``None`` uses the configured default).  Returns ``(outcomes, blocked)``
        with outcomes in block order regardless of executor.
        """
        from functools import partial

        from repro.pipeline.pipeline import CompilationPipeline
        from repro.pipeline.stages import BlockingStage, PulseStage
        from repro.pipeline.strategies import compile_fixed_block

        context = CompilationPipeline(
            [
                BlockingStage(max_width),
                PulseStage(
                    partial(compile_fixed_block, self),
                    executor=resolve_executor(executor),
                    block_compiler=self,
                ),
            ],
            name="blocks",
        ).run(circuit)
        return context.block_results, context.blocked[0]


def default_device_for(circuit: QuantumCircuit) -> GmonDevice:
    """The default gmon grid sized for ``circuit``."""
    return GmonDevice.grid_for(circuit.num_qubits)


def gate_based_program(circuit: QuantumCircuit):
    """The pure lookup-table pulse program for a bound circuit.

    Used both by the gate-based baseline and as the strictly-not-worse
    fallback of every GRAPE-based strategy: pulse blocks are atomic across
    their qubits, so a blocked program can occasionally lose a little
    scheduling slack relative to the gate-level ASAP schedule; whenever that
    overhead eats the GRAPE gains, compilers fall back to this program
    (the paper's no-delay blocking criterion, section 5.2).
    """
    return lookup_program(circuit)
