"""Derivative-free hyperparameter search strategies beyond grid search.

Paper section 7.2 motivates hyperparameter optimization with the
derivative-free literature: "tuning hyperparameters with methods such as
bayesian optimization and radial basis functions can significantly improve
performance for stochastic and expensive objectives".  The default tuner
(:func:`repro.core.hyperopt.tune_hyperparameters`) is an exhaustive grid;
this module adds three budget-aware alternatives over the same
(learning rate, decay rate) space:

* :func:`random_search` — log-uniform sampling, the standard strong
  baseline for low-dimensional hyperparameter spaces.
* :func:`successive_halving` — bandit-style racing: many configurations at
  a small GRAPE iteration budget, survivors promoted to larger budgets.
* :func:`rbf_search` — a radial-basis-function surrogate fitted to the
  evaluated configurations proposes each next candidate (the
  "radial basis functions" method the paper cites).

All three return the same :class:`~repro.core.hyperopt.TuningResult` shape
as the grid tuner, so :class:`~repro.core.flexible.FlexiblePartialCompiler`
can swap them in via ``tuning_strategy``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro.core.hyperopt import HyperparameterTrial, TuningResult
from repro.errors import CompilationError
from repro.pulse.grape.engine import GrapeHyperparameters, GrapeSettings, optimize_pulse
from repro.pulse.hamiltonian import ControlSet

__all__ = [
    "SearchSpace",
    "random_search",
    "rbf_search",
    "successive_halving",
    "tune_with_strategy",
]


@dataclass(frozen=True)
class SearchSpace:
    """Box bounds of the (learning rate, decay rate) search space.

    Learning rates are sampled log-uniformly (their effect spans orders of
    magnitude — paper Figure 4's x-axis is logarithmic); decay rates are
    sampled uniformly, including exactly zero with probability
    ``zero_decay_probability``.
    """

    learning_rate_bounds: tuple = (1e-3, 0.3)
    decay_rate_bounds: tuple = (0.0, 0.02)
    zero_decay_probability: float = 0.25
    optimizer: str = "adam"

    def __post_init__(self):
        lo, hi = self.learning_rate_bounds
        if not (0 < lo < hi):
            raise CompilationError(f"bad learning-rate bounds ({lo}, {hi})")
        dlo, dhi = self.decay_rate_bounds
        if not (0 <= dlo <= dhi):
            raise CompilationError(f"bad decay-rate bounds ({dlo}, {dhi})")

    def sample(self, rng: np.random.Generator) -> tuple:
        lo, hi = self.learning_rate_bounds
        lr = float(np.exp(rng.uniform(math.log(lo), math.log(hi))))
        if rng.uniform() < self.zero_decay_probability:
            decay = 0.0
        else:
            decay = float(rng.uniform(*self.decay_rate_bounds))
        return lr, decay


class _Objective:
    """Mean GRAPE performance of one (lr, decay) over the sample targets."""

    def __init__(
        self,
        control_set: ControlSet,
        targets: list,
        num_steps: int,
        settings: GrapeSettings,
        optimizer: str = "adam",
    ):
        if not targets:
            raise CompilationError("need at least one sample target to tune")
        self.control_set = control_set
        self.targets = targets
        self.num_steps = num_steps
        self.settings = settings
        self.optimizer = optimizer
        self.total_iterations = 0

    def evaluate(self, lr: float, decay: float, budget: int) -> HyperparameterTrial:
        hyper = GrapeHyperparameters(
            lr, decay, max_iterations=budget, optimizer=self.optimizer
        )
        iterations, fidelities, converged = [], [], True
        for target in self.targets:
            result = optimize_pulse(
                self.control_set, target, self.num_steps, hyper, self.settings
            )
            self.total_iterations += result.iterations
            iterations.append(result.iterations)
            fidelities.append(result.fidelity)
            converged = converged and result.converged
        return HyperparameterTrial(
            learning_rate=lr,
            decay_rate=decay,
            mean_iterations=float(np.mean(iterations)),
            mean_final_fidelity=float(np.mean(fidelities)),
            all_converged=converged,
        )


def _finish(objective: _Objective, trials: list, budget: int, start: float) -> TuningResult:
    if not trials:
        raise CompilationError("hyperparameter search produced no trials")
    best_trial = min(trials, key=lambda t: t.score)
    best = GrapeHyperparameters(
        best_trial.learning_rate,
        best_trial.decay_rate,
        max_iterations=budget,
        optimizer=objective.optimizer,
    )
    return TuningResult(
        best=best,
        trials=trials,
        wall_time_s=time.perf_counter() - start,
        total_iterations=objective.total_iterations,
    )


def _resolve_budget(iteration_budget: int | None) -> int:
    if iteration_budget is not None:
        return iteration_budget
    from repro.config import get_preset

    return get_preset().max_iterations


def random_search(
    control_set: ControlSet,
    targets: list,
    num_steps: int,
    settings: GrapeSettings | None = None,
    space: SearchSpace | None = None,
    num_trials: int = 12,
    iteration_budget: int | None = None,
    seed: int = 0,
) -> TuningResult:
    """Log-uniform random search over (learning rate, decay rate)."""
    settings = settings or GrapeSettings()
    space = space or SearchSpace()
    budget = _resolve_budget(iteration_budget)
    objective = _Objective(control_set, targets, num_steps, settings, space.optimizer)
    rng = np.random.default_rng(seed)
    start = time.perf_counter()
    trials = [objective.evaluate(*space.sample(rng), budget) for _ in range(num_trials)]
    return _finish(objective, trials, budget, start)


def successive_halving(
    control_set: ControlSet,
    targets: list,
    num_steps: int,
    settings: GrapeSettings | None = None,
    space: SearchSpace | None = None,
    num_configs: int = 12,
    eta: int = 3,
    iteration_budget: int | None = None,
    seed: int = 0,
) -> TuningResult:
    """Bandit-style racing over sampled configurations.

    Round ``r`` evaluates the surviving configurations with a GRAPE budget
    of ``max_budget / eta^(rounds-1-r)`` iterations and keeps the best
    ``1/eta`` fraction.  Poor learning rates are discarded after a handful
    of gradient steps instead of a full run, which is what makes the
    precompute phase cheap for wide circuits with many single-θ blocks.
    """
    if eta < 2:
        raise CompilationError("eta must be at least 2")
    settings = settings or GrapeSettings()
    space = space or SearchSpace()
    max_budget = _resolve_budget(iteration_budget)
    objective = _Objective(control_set, targets, num_steps, settings, space.optimizer)
    rng = np.random.default_rng(seed)
    start = time.perf_counter()

    num_rounds = max(1, int(math.floor(math.log(num_configs, eta))) + 1)
    configs = [space.sample(rng) for _ in range(num_configs)]
    all_trials: list = []
    survivors = configs
    for round_index in range(num_rounds):
        budget = max(1, int(max_budget / eta ** (num_rounds - 1 - round_index)))
        scored = [objective.evaluate(lr, decay, budget) for lr, decay in survivors]
        all_trials.extend(scored)
        if round_index == num_rounds - 1 or len(survivors) <= 1:
            break
        keep = max(1, len(survivors) // eta)
        ranked = sorted(zip(scored, survivors), key=lambda pair: pair[0].score)
        survivors = [config for _, config in ranked[:keep]]

    return _finish(objective, all_trials, max_budget, start)


def rbf_search(
    control_set: ControlSet,
    targets: list,
    num_steps: int,
    settings: GrapeSettings | None = None,
    space: SearchSpace | None = None,
    num_initial: int = 5,
    num_iterations: int = 7,
    iteration_budget: int | None = None,
    seed: int = 0,
) -> TuningResult:
    """Radial-basis-function surrogate search (paper §7.2's cited method).

    A thin-plate-spline RBF is fitted to the scores of all evaluated
    configurations (in ``(log lr, scaled decay)`` coordinates); each step
    evaluates the candidate minimizing the surrogate over a dense random
    candidate pool, with an exploration bonus for distance to previously
    evaluated points.
    """
    from scipy.interpolate import RBFInterpolator

    settings = settings or GrapeSettings()
    space = space or SearchSpace()
    budget = _resolve_budget(iteration_budget)
    objective = _Objective(control_set, targets, num_steps, settings, space.optimizer)
    rng = np.random.default_rng(seed)
    start = time.perf_counter()

    decay_hi = max(space.decay_rate_bounds[1], 1e-9)

    def to_coords(lr: float, decay: float) -> np.ndarray:
        return np.array([math.log(lr), decay / decay_hi])

    trials: list = []
    coords: list = []
    for _ in range(num_initial):
        lr, decay = space.sample(rng)
        trials.append(objective.evaluate(lr, decay, budget))
        coords.append(to_coords(lr, decay))

    for _ in range(num_iterations):
        points = np.array(coords)
        # Normalize scores so the failure penalty does not flatten the
        # surrogate: rank-transform to [0, 1].
        order = np.argsort(np.argsort([t.score for t in trials]))
        values = order / max(len(trials) - 1, 1)
        try:
            surrogate = RBFInterpolator(
                points, values, kernel="thin_plate_spline", smoothing=1e-6
            )
        except (np.linalg.LinAlgError, ValueError):
            # Too few / degenerate points for the thin-plate polynomial
            # tail: fall back to pure exploration for this proposal.
            surrogate = None
        candidates = [space.sample(rng) for _ in range(256)]
        cand_coords = np.array([to_coords(lr, d) for lr, d in candidates])
        if surrogate is not None:
            predicted = surrogate(cand_coords)
        else:
            predicted = rng.uniform(size=len(candidates))
        # Exploration bonus: prefer candidates away from evaluated points.
        dists = np.min(
            np.linalg.norm(cand_coords[:, None, :] - points[None, :, :], axis=2),
            axis=1,
        )
        acquisition = predicted - 0.3 * dists
        lr, decay = candidates[int(np.argmin(acquisition))]
        trials.append(objective.evaluate(lr, decay, budget))
        coords.append(to_coords(lr, decay))

    return _finish(objective, trials, budget, start)


#: Strategy registry used by ``FlexiblePartialCompiler``.
STRATEGIES = {
    "random": random_search,
    "halving": successive_halving,
    "rbf": rbf_search,
}


def tune_with_strategy(
    strategy: str,
    control_set: ControlSet,
    targets: list,
    num_steps: int,
    settings: GrapeSettings | None = None,
    **kwargs,
) -> TuningResult:
    """Dispatch to a named search strategy ("random", "halving", "rbf").

    The grid strategy lives in :func:`repro.core.hyperopt.tune_hyperparameters`
    and is dispatched here under the name "grid" for convenience.
    """
    if strategy == "grid":
        from repro.core.hyperopt import tune_hyperparameters

        allowed = {"learning_rates", "decay_rates", "iteration_budget"}
        grid_kwargs = {k: v for k, v in kwargs.items() if k in allowed}
        return tune_hyperparameters(
            control_set, targets, num_steps, settings=settings, **grid_kwargs
        )
    try:
        fn = STRATEGIES[strategy]
    except KeyError:
        raise CompilationError(
            f"unknown tuning strategy {strategy!r}; "
            f"expected one of {sorted(STRATEGIES) + ['grid']}"
        ) from None
    return fn(control_set, targets, num_steps, settings=settings, **kwargs)
