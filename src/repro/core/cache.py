"""Pulse cache keyed by block unitary.

Variational circuits are extremely repetitive — UCCSD repeats the same CX
ladders and basis changes hundreds of times — so GRAPE results are cached by
a phase-canonical hash of the target unitary plus the physical context
(channel layout, time step, fidelity target).  Strict partial compilation's
"zero runtime latency" and the tractability of the benchmark harness both
rest on this cache.

Two backends are provided:

* :class:`PulseCache` — in-memory, thread-safe, with hit/miss/timing
  telemetry.  This is the seed behavior and remains the default.
* :class:`PersistentPulseCache` — additionally mirrors every entry into a
  sharded on-disk :class:`repro.library.PulseLibrary`, fingerprint-keyed,
  so a *second process* (or a later session) starts warm.  Writes are
  atomic (temp file + ``os.replace``), which makes the directory safe
  under concurrent writers — including the process-pool block executor of
  :mod:`repro.pipeline` and other hosts sharing the directory over a
  network filesystem.  The library also carries the index, the LRU/budget
  ``gc()``, and the one-time migration of legacy flat directories.

:func:`default_pulse_cache` picks the backend from the active
:class:`repro.config.PipelineConfig` (``cache_dir`` setting /
``REPRO_CACHE_DIR``).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.pulse.hamiltonian import ControlSet
from repro.pulse.schedule import PulseSchedule


def unitary_fingerprint(unitary: np.ndarray, decimals: int = 8) -> str:
    """A global-phase-invariant hash of a unitary.

    The matrix is rotated so its largest-magnitude entry is real-positive,
    rounded, and hashed; unitaries equal up to global phase collide (by
    design) and nothing else realistically does.
    """
    u = np.asarray(unitary, dtype=complex)
    flat = u.ravel()
    pivot = flat[np.argmax(np.abs(flat))]
    if np.abs(pivot) > 1e-12:
        u = u * (np.abs(pivot) / pivot)
    rounded = np.round(u, decimals)
    # Normalize signed zeros so -0.0 and 0.0 hash identically.
    rounded = rounded + (0.0 + 0.0j)
    return hashlib.sha256(rounded.tobytes()).hexdigest()


def control_context_key(control_set: ControlSet, dt_ns: float, target_fidelity: float) -> tuple:
    """The physical context under which a cached pulse remains valid."""
    channels = tuple(
        (ch.kind, tuple(q - control_set.qubits[0] for q in ch.qubits), round(ch.max_amplitude, 9))
        for ch in control_set.channels
    )
    return (control_set.levels, channels, round(dt_ns, 9), round(target_fidelity, 9))


@dataclass
class CacheEntry:
    """One cached minimum-time GRAPE outcome for a block unitary."""

    schedule: PulseSchedule
    duration_ns: float
    fidelity: float
    converged: bool
    iterations: int


@dataclass
class NeighborMatch:
    """An approximate-match cache entry (the warm-start seed source).

    ``distance`` is the phase-invariant trace distance of
    :func:`repro.library.neighbors.signature_distance`; ``source`` records
    which tier found it (``"memory"`` or ``"library"``).
    """

    entry: CacheEntry
    distance: float
    name: str
    source: str


class PulseCache:
    """In-memory cache of minimum-time GRAPE results.

    Thread-safe: the pipeline's thread executor compiles independent blocks
    concurrently, and every block consults this cache.  Counters and the
    entry dict are guarded by one lock; lookup/store wall time is accumulated
    so cache overhead shows up in pipeline telemetry rather than hiding in
    GRAPE time.
    """

    backend = "memory"

    def __init__(self):
        self._entries: dict = {}
        self._targets: dict = {}  # key -> target unitary (warm-start index)
        # While frozen, neighbor search sees only the keys present at
        # freeze time (see freeze_neighbors); depth-counted for nesting.
        self._frozen_depth = 0
        self._frozen_keys: set | None = None
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.lookup_time_s = 0.0
        self.store_time_s = 0.0

    # The lock cannot cross process boundaries (the process-pool executor
    # pickles the block compiler, cache included); recreate it on unpickle.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def key(self, unitary: np.ndarray, control_set: ControlSet, dt_ns: float, target_fidelity: float) -> tuple:
        """Cache key: phase-canonical unitary fingerprint + physical context."""
        return (
            unitary_fingerprint(unitary),
            control_context_key(control_set, dt_ns, target_fidelity),
        )

    def get(self, key: tuple) -> CacheEntry | None:
        """Look up ``key``, counting the hit or miss."""
        start = time.perf_counter()
        with self._lock:
            entry = self._entries.get(key)
        from_disk = False
        if entry is None:
            # Slow-tier I/O happens outside the lock so concurrent block
            # threads don't serialize on the filesystem.
            entry = self._load_fallback(key)
            from_disk = entry is not None
        with self._lock:
            if entry is None:
                self.misses += 1
            else:
                self.hits += 1
                if from_disk:
                    self._entries[key] = entry
            self.lookup_time_s += time.perf_counter() - start
        return entry

    def put(
        self, key: tuple, entry: CacheEntry, target: np.ndarray | None = None
    ) -> None:
        """Store ``entry`` under ``key`` (overwrites).

        ``target`` — the block's target unitary — feeds the approximate-match
        warm-start index; hashing throws it away, so callers that hold it
        pass it along here.  ``None`` keeps the entry exact-match only.
        """
        start = time.perf_counter()
        with self._lock:
            self._entries[key] = entry
            if target is not None:
                self._targets[key] = np.asarray(target, dtype=complex)
        # Durable writes are atomic (temp + replace), so they need no lock.
        self._persist(key, entry, target)
        with self._lock:
            self.store_time_s += time.perf_counter() - start

    def annotate_target(self, key: tuple, target: np.ndarray) -> None:
        """Record the target unitary behind an already-cached ``key``.

        Called at cache-hit time: the caller holds the target the hash
        threw away, so the warm-start index learns it for free.  Subclasses
        extend this to heal their durable index too.
        """
        with self._lock:
            if key in self._entries and key not in self._targets:
                self._targets[key] = np.asarray(target, dtype=complex)

    def freeze_neighbors(self) -> None:
        """Pin neighbor search to the current cache contents.

        Dispatchers call this around a pass that compiles many blocks
        concurrently: sibling results land in the cache as they finish, at
        executor-dependent times, so without the pin a serial executor
        would warm-start later blocks from earlier siblings while a
        parallel one would not — and compiled pulses would depend on the
        executor.  Frozen, every block of the pass sees exactly the
        pre-pass candidates.  Nests (depth-counted); thaw with
        :meth:`thaw_neighbors` in a ``finally``.
        """
        with self._lock:
            self._frozen_depth += 1
            if self._frozen_keys is None:
                self._frozen_keys = set(self._targets)

    def thaw_neighbors(self) -> None:
        """Undo one :meth:`freeze_neighbors` (outermost thaw unpins)."""
        with self._lock:
            self._frozen_depth = max(0, self._frozen_depth - 1)
            if self._frozen_depth == 0:
                self._frozen_keys = None

    def find_neighbor(
        self, key: tuple, target: np.ndarray, max_dist: float
    ) -> NeighborMatch | None:
        """The nearest cached entry for ``target`` within ``max_dist``.

        Only entries whose physical context matches ``key``'s (and whose
        target unitary is known — see :meth:`put`'s ``target`` argument and
        :meth:`annotate_target`) are candidates; the exact ``key`` itself
        never matches.  Returns ``None`` when nothing is close enough.
        """
        from repro.library.neighbors import signature_distance

        target = np.asarray(target, dtype=complex)
        context = key[1]
        with self._lock:
            frozen = self._frozen_keys
            candidates = [
                (other, cached_target)
                for other, cached_target in self._targets.items()
                if other != key
                and other[1] == context
                and cached_target.shape == target.shape
                and (frozen is None or other in frozen)
            ]
        best: NeighborMatch | None = None
        for other, cached_target in candidates:
            dist = signature_distance(target, cached_target)
            if dist > max_dist:
                continue
            if best is None or dist < best.distance:
                with self._lock:
                    entry = self._entries.get(other)
                if entry is not None:
                    best = NeighborMatch(
                        entry=entry,
                        distance=dist,
                        name=_key_filename(other),
                        source="memory",
                    )
        return best

    def _load_fallback(self, key: tuple) -> CacheEntry | None:
        """Second-chance lookup for subclasses with a slower tier.

        Runs outside the cache lock; implementations must only touch their
        own thread-safe state.
        """
        return None

    def _persist(
        self, key: tuple, entry: CacheEntry, target: np.ndarray | None = None
    ) -> None:
        """Durable store hook for subclasses (runs outside the cache lock)."""

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when untouched)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Telemetry snapshot: counts, rates, and time spent in the cache."""
        return {
            "backend": self.backend,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "lookup_time_s": round(self.lookup_time_s, 6),
            "store_time_s": round(self.store_time_s, 6),
        }


#: Version tag embedded in every persisted cache entry.  Bump this whenever
#: the on-disk format (or the meaning of a :class:`CacheEntry` field)
#: changes: readers treat any other version as a graceful miss — counted in
#: ``schema_mismatches``, recomputed and overwritten in place — instead of
#: surfacing format drift as ``disk_errors``.  Version 1 is the original
#: bare-``CacheEntry`` pickle, which predates the tag.
CACHE_SCHEMA_VERSION = 2


def _key_filename(key: tuple) -> str:
    """Deterministic, collision-resistant filename for a cache key.

    The key is ``(unitary_fingerprint_hex, context_tuple)`` where the
    context is built from primitives with stable ``repr``; hashing that repr
    gives processes with different memory layouts the same filename.
    """
    fingerprint, context = key
    context_digest = hashlib.sha256(repr(context).encode()).hexdigest()[:16]
    return f"{fingerprint[:40]}-{context_digest}.pulse"


class PersistentPulseCache(PulseCache):
    """Pulse cache whose on-disk tier is a sharded pulse library.

    Every ``put`` pickles the entry into a
    :class:`repro.library.PulseLibrary` under ``directory`` next to keeping
    it in memory; a miss in memory falls through to the library (counted in
    ``disk_hits``), so a cold process pointed at a warm directory resumes
    with zero GRAPE work for previously seen blocks.  The library fans
    entries out across fingerprint-prefix shards, maintains per-shard JSON
    manifests (size/created/last-used), supports LRU eviction via
    :meth:`gc`, and transparently migrates legacy flat cache directories on
    first open — this class only handles the pickling and the schema tag.

    Entries carry a schema tag (:data:`CACHE_SCHEMA_VERSION`); payloads
    written by another format version are invalidated gracefully — a
    counted miss in ``schema_mismatches`` that GRAPE recomputes and
    overwrites — while genuinely unreadable payloads (truncated by a crash,
    foreign junk) are treated as misses and counted in ``disk_errors``.
    """

    backend = "disk"

    def __init__(
        self,
        directory: str | os.PathLike,
        shards: int | None = None,
        budget_mb: float | None = None,
        prefetch: bool | None = None,
    ):
        super().__init__()
        from repro.library import NeighborIndex, PulseLibrary

        self.library = PulseLibrary(
            directory, shards=shards, budget_mb=budget_mb, prefetch=prefetch
        )
        self.neighbors = NeighborIndex(self.library)
        self.directory = self.library.directory
        self.disk_hits = 0
        self.disk_errors = 0
        self.schema_mismatches = 0

    def _path(self, key: tuple) -> Path:
        return self.library.path_for(_key_filename(key))

    def _decode_entry(self, blob: bytes) -> CacheEntry | None:
        """Unpickle and schema-check one library payload (counted miss on
        damage or format drift)."""
        try:
            payload = pickle.loads(blob)
        except Exception:
            with self._lock:
                self.disk_errors += 1
            return None
        if isinstance(payload, CacheEntry):
            # Legacy v1 file (bare entry, no schema tag): stale format,
            # invalidate gracefully.
            with self._lock:
                self.schema_mismatches += 1
            return None
        if not isinstance(payload, dict):
            with self._lock:
                self.disk_errors += 1
            return None
        entry = payload.get("entry")
        if payload.get("schema_version") != CACHE_SCHEMA_VERSION or not isinstance(
            entry, CacheEntry
        ):
            with self._lock:
                self.schema_mismatches += 1
            return None
        return entry

    def load_by_name(self, name: str) -> CacheEntry | None:
        """Read one library entry by filename (the neighbor-search path)."""
        try:
            blob = self.library.get(name)
        except OSError:
            with self._lock:
                self.disk_errors += 1
            return None
        if blob is None:
            return None
        return self._decode_entry(blob)

    def _load_fallback(self, key: tuple) -> CacheEntry | None:
        entry = self.load_by_name(_key_filename(key))
        if entry is not None:
            with self._lock:
                self.disk_hits += 1
        return entry

    def annotate_target(self, key: tuple, target: np.ndarray) -> None:
        """Heal the durable neighbor index alongside the in-memory one."""
        super().annotate_target(key, target)
        self.neighbors.annotate(_key_filename(key), target, key[1])

    def freeze_neighbors(self) -> None:
        super().freeze_neighbors()
        self.neighbors.freeze()

    def thaw_neighbors(self) -> None:
        super().thaw_neighbors()
        self.neighbors.thaw()

    def find_neighbor(
        self, key: tuple, target: np.ndarray, max_dist: float
    ) -> NeighborMatch | None:
        """Nearest match across both tiers (memory scan + library index)."""
        best = super().find_neighbor(key, target, max_dist)
        hit = self.neighbors.find_nearest(
            np.asarray(target, dtype=complex),
            key[1],
            max_dist,
            exclude=_key_filename(key),
        )
        if hit is not None and (best is None or hit.distance < best.distance):
            if best is not None and hit.name == best.name:
                return best  # same entry, already in memory
            entry = self.load_by_name(hit.name)
            if entry is not None:
                return NeighborMatch(
                    entry=entry,
                    distance=hit.distance,
                    name=hit.name,
                    source="library",
                )
        return best

    def __getstate__(self) -> dict:
        # The disk tier is the durable source of truth, so the memory tier
        # need not travel with the pickle — process-pool workers re-read
        # entries from disk on demand.  Shipping it would cost
        # O(tasks × cache size) serialization per parallel map.
        state = super().__getstate__()
        state["_entries"] = {}
        state["_targets"] = {}
        return state

    def _persist(
        self, key: tuple, entry: CacheEntry, target: np.ndarray | None = None
    ) -> None:
        from repro.library.neighbors import target_metadata

        payload = {"schema_version": CACHE_SCHEMA_VERSION, "entry": entry}
        meta = None if target is None else target_metadata(target, key[1])
        try:
            self.library.put(
                _key_filename(key),
                pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
                schema_version=CACHE_SCHEMA_VERSION,
                meta=meta,
            )
        except OSError:
            with self._lock:
                self.disk_errors += 1

    def gc(self, budget_mb: float | None = None):
        """Evict least-recently-used persisted pulses down to the budget.

        Delegates to :meth:`repro.library.PulseLibrary.gc`; the in-memory
        tier is untouched (evicted entries a live process already holds in
        memory keep serving until it exits).
        """
        return self.library.gc(budget_mb)

    def persisted_count(self) -> int:
        """Number of entries currently durable on disk."""
        return self.library.count()

    def persisted_bytes(self) -> int:
        """Total size of the on-disk tier."""
        return self.library.total_bytes()

    def stats(self) -> dict:
        data = super().stats()
        library_stats = self.library.stats()
        data.update(
            {
                "directory": str(self.directory),
                "disk_hits": self.disk_hits,
                "disk_errors": self.disk_errors,
                "schema_version": CACHE_SCHEMA_VERSION,
                "schema_mismatches": self.schema_mismatches,
                "persisted_entries": library_stats["entries"],
                "library": library_stats,
                "neighbors": self.neighbors.stats(),
            }
        )
        return data


def default_pulse_cache() -> PulseCache:
    """The cache backend selected by the active pipeline configuration.

    With ``cache_dir`` unset (the default) this is the seed's in-memory
    cache; with a directory configured (``REPRO_CACHE_DIR`` or
    :func:`repro.config.set_pipeline_config`), GRAPE results persist across
    processes.
    """
    from repro.config import get_pipeline_config

    cache_dir = get_pipeline_config().cache_dir
    if cache_dir:
        return PersistentPulseCache(cache_dir)
    return PulseCache()
