"""Pulse cache keyed by block unitary.

Variational circuits are extremely repetitive — UCCSD repeats the same CX
ladders and basis changes hundreds of times — so GRAPE results are cached by
a phase-canonical hash of the target unitary plus the physical context
(channel layout, time step, fidelity target).  Strict partial compilation's
"zero runtime latency" and the tractability of the benchmark harness both
rest on this cache.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.pulse.hamiltonian import ControlSet
from repro.pulse.schedule import PulseSchedule


def unitary_fingerprint(unitary: np.ndarray, decimals: int = 8) -> str:
    """A global-phase-invariant hash of a unitary.

    The matrix is rotated so its largest-magnitude entry is real-positive,
    rounded, and hashed; unitaries equal up to global phase collide (by
    design) and nothing else realistically does.
    """
    u = np.asarray(unitary, dtype=complex)
    flat = u.ravel()
    pivot = flat[np.argmax(np.abs(flat))]
    if np.abs(pivot) > 1e-12:
        u = u * (np.abs(pivot) / pivot)
    rounded = np.round(u, decimals)
    # Normalize signed zeros so -0.0 and 0.0 hash identically.
    rounded = rounded + (0.0 + 0.0j)
    return hashlib.sha256(rounded.tobytes()).hexdigest()


def control_context_key(control_set: ControlSet, dt_ns: float, target_fidelity: float) -> tuple:
    """The physical context under which a cached pulse remains valid."""
    channels = tuple(
        (ch.kind, tuple(q - control_set.qubits[0] for q in ch.qubits), round(ch.max_amplitude, 9))
        for ch in control_set.channels
    )
    return (control_set.levels, channels, round(dt_ns, 9), round(target_fidelity, 9))


@dataclass
class CacheEntry:
    """One cached minimum-time GRAPE outcome for a block unitary."""

    schedule: PulseSchedule
    duration_ns: float
    fidelity: float
    converged: bool
    iterations: int


@dataclass
class PulseCache:
    """In-memory cache of minimum-time GRAPE results."""

    _entries: dict = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    def key(self, unitary: np.ndarray, control_set: ControlSet, dt_ns: float, target_fidelity: float) -> tuple:
        """Cache key: phase-canonical unitary fingerprint + physical context."""
        return (
            unitary_fingerprint(unitary),
            control_context_key(control_set, dt_ns, target_fidelity),
        )

    def get(self, key: tuple) -> CacheEntry | None:
        """Look up ``key``, counting the hit or miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(self, key: tuple, entry: CacheEntry) -> None:
        """Store ``entry`` under ``key`` (overwrites)."""
        self._entries[key] = entry

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when untouched)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
