"""Circuit slicing for partial compilation (paper sections 6 and 7).

* :func:`strict_slices` — Figure 3b: a temporal cut at every
  parameter-dependent gate, producing a strictly alternating sequence
  ``[Fixed, Rz(θ₁), Fixed, Rz(θ₁), Fixed, Rz(θ₂), …]``.
* :func:`flexible_slices` — Figure 3c: cuts only at parameter-group
  boundaries (valid by parameter monotonicity), producing much deeper
  subcircuits that each depend on exactly one θᵢ.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameters import Parameter
from repro.core.monotonic import is_parameter_grouped, parametrized_gate_sequence
from repro.errors import CompilationError


@dataclass
class CircuitSlice:
    """A contiguous instruction range with a single (or no) parameter tag.

    ``kind`` is ``"fixed"`` (no parameter dependence) or ``"parametrized"``.
    ``circuit`` is the slice's subcircuit at the full register width.
    """

    kind: str
    parameter: Parameter | None
    circuit: QuantumCircuit
    instruction_indices: list = field(default_factory=list)

    @property
    def num_gates(self) -> int:
        return len(self.circuit)

    def __repr__(self) -> str:
        tag = self.parameter.name if self.parameter else "-"
        return f"Slice({self.kind}, θ={tag}, gates={self.num_gates})"


def _make_slice(parent: QuantumCircuit, indices: list, kind: str, parameter) -> CircuitSlice:
    sub = parent.sub_circuit(indices)
    sub.name = f"{parent.name}_{kind}_{indices[0] if indices else 'empty'}"
    return CircuitSlice(kind=kind, parameter=parameter, circuit=sub, instruction_indices=list(indices))


def strict_slices(circuit: QuantumCircuit) -> list:
    """Alternate maximal Fixed subcircuits with single parametrized gates.

    Every parameter-dependent gate becomes its own single-gate slice; the
    runs of parameter-independent gates between them become Fixed slices.
    """
    slices: list[CircuitSlice] = []
    fixed_run: list[int] = []
    for idx, inst in enumerate(circuit):
        params = inst.parameters
        if params:
            if len(params) > 1:
                names = sorted(p.name for p in params)
                raise CompilationError(
                    f"gate {inst!r} depends on several parameters {names}"
                )
            if fixed_run:
                slices.append(_make_slice(circuit, fixed_run, "fixed", None))
                fixed_run = []
            slices.append(
                _make_slice(circuit, [idx], "parametrized", next(iter(params)))
            )
        else:
            fixed_run.append(idx)
    if fixed_run:
        slices.append(_make_slice(circuit, fixed_run, "fixed", None))
    return slices


def flexible_slices(circuit: QuantumCircuit) -> list:
    """Slice at parameter-group boundaries (one θᵢ per slice).

    The fixed prefix joins the first parametrized slice and the fixed
    suffix joins the last, as in the paper's Figure 3c.  A circuit with no
    parameters yields one Fixed slice.

    Raises
    ------
    CompilationError
        If the parametrized gates are not grouped consecutively per
        parameter (parameter monotonicity violated).
    """
    if not circuit.parameters:
        if len(circuit) == 0:
            return []
        return [_make_slice(circuit, list(range(len(circuit))), "fixed", None)]
    if not is_parameter_grouped(circuit):
        raise CompilationError(
            "parametrized gates are interleaved across parameters; flexible "
            "slicing requires parameter monotonicity (paper section 7.1)"
        )
    # Partition at the first gate of each new parameter group.
    boundaries: list[tuple] = []  # (start_idx, parameter)
    for idx, param in parametrized_gate_sequence(circuit):
        if not boundaries or boundaries[-1][1] != param:
            boundaries.append((idx, param))

    slices: list[CircuitSlice] = []
    for g, (start, param) in enumerate(boundaries):
        begin = 0 if g == 0 else start  # fixed prefix joins the first slice
        end = boundaries[g + 1][0] if g + 1 < len(boundaries) else len(circuit)
        indices = list(range(begin, end))
        slices.append(_make_slice(circuit, indices, "parametrized", param))
    return slices


def slice_parameter_counts(slices: list) -> dict:
    """Histogram {kind: count} — used in tests and reporting."""
    out: dict[str, int] = {}
    for s in slices:
        out[s.kind] = out.get(s.kind, 0) + 1
    return out


def parametrized_gate_fraction(circuit: QuantumCircuit) -> float:
    """Fraction of gates that depend on a parameter.

    The paper reports 5-8 % for VQE-UCCSD and 15-28 % for QAOA — the
    quantity that determines how much strict partial compilation can win.
    """
    if len(circuit) == 0:
        return 0.0
    parametrized = sum(1 for inst in circuit if inst.parameters)
    return parametrized / len(circuit)
