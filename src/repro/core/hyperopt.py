"""Hyperparameter optimization for GRAPE's ADAM optimizer (paper §7.2).

Flexible partial compilation rests on one empirical observation (paper
Figure 4): for a single-angle parametrized subcircuit, the best-performing
(learning rate, decay rate) pair is *robust to the value of the angle*.  So
the pair can be tuned once, offline, on sampled angles, and reused at every
variational iteration.

The tuner is a derivative-free grid search scored by iterations-to-converge,
averaged over sampled parametrizations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.errors import CompilationError
from repro.pulse.grape.engine import GrapeHyperparameters, GrapeSettings, optimize_pulse
from repro.pulse.hamiltonian import ControlSet
from repro.sim.unitary import circuit_unitary

#: Default search grids: log-spaced learning rates, a few decay settings.
DEFAULT_LEARNING_RATES = (0.003, 0.01, 0.03, 0.1)
DEFAULT_DECAY_RATES = (0.0, 0.002, 0.01)


@dataclass
class HyperparameterTrial:
    """One (lr, decay) evaluation, averaged over sample angles."""

    learning_rate: float
    decay_rate: float
    mean_iterations: float
    mean_final_fidelity: float
    all_converged: bool

    @property
    def score(self) -> float:
        """Lower is better: iterations, with a large penalty for failure."""
        penalty = 0.0 if self.all_converged else 1e6 * (1.0 - self.mean_final_fidelity)
        return self.mean_iterations + penalty


@dataclass
class TuningResult:
    """Outcome of hyperparameter tuning for one parametrized block."""

    best: GrapeHyperparameters
    trials: list = field(default_factory=list)
    wall_time_s: float = 0.0
    total_iterations: int = 0

    @property
    def best_trial(self) -> HyperparameterTrial:
        """The lowest-score trial (fewest iterations among converging)."""
        return min(self.trials, key=lambda t: t.score)


def sample_targets(
    subcircuit: QuantumCircuit, num_samples: int, seed: int = 7
) -> list:
    """Target unitaries of ``subcircuit`` at random parametrizations."""
    params = subcircuit.parameters
    rng = np.random.default_rng(seed)
    targets = []
    for _ in range(num_samples):
        values = {p: float(rng.uniform(-np.pi, np.pi)) for p in params}
        targets.append(circuit_unitary(subcircuit.bind_parameters(values)))
    return targets


def tune_hyperparameters(
    control_set: ControlSet,
    targets: list,
    num_steps: int,
    settings: GrapeSettings | None = None,
    learning_rates: tuple = DEFAULT_LEARNING_RATES,
    decay_rates: tuple = DEFAULT_DECAY_RATES,
    iteration_budget: int | None = None,
) -> TuningResult:
    """Grid-search (learning rate, decay) minimizing iterations-to-converge.

    ``targets`` are the block's unitaries at sampled angles; the winning
    configuration must converge on all of them (Figure 4 robustness).
    """
    if not targets:
        raise CompilationError("need at least one sample target to tune")
    settings = settings or GrapeSettings()
    from repro.config import get_preset

    budget = iteration_budget or get_preset().max_iterations
    start = time.perf_counter()
    trials: list[HyperparameterTrial] = []
    total_iterations = 0
    for lr in learning_rates:
        for decay in decay_rates:
            hyper = GrapeHyperparameters(lr, decay, max_iterations=budget)
            iters, fids, converged = [], [], True
            for target in targets:
                result = optimize_pulse(
                    control_set, target, num_steps, hyper, settings
                )
                total_iterations += result.iterations
                iters.append(result.iterations)
                fids.append(result.fidelity)
                converged = converged and result.converged
            trials.append(
                HyperparameterTrial(
                    learning_rate=lr,
                    decay_rate=decay,
                    mean_iterations=float(np.mean(iters)),
                    mean_final_fidelity=float(np.mean(fids)),
                    all_converged=converged,
                )
            )
    best_trial = min(trials, key=lambda t: t.score)
    best = GrapeHyperparameters(
        best_trial.learning_rate, best_trial.decay_rate, max_iterations=budget
    )
    return TuningResult(
        best=best,
        trials=trials,
        wall_time_s=time.perf_counter() - start,
        total_iterations=total_iterations,
    )


def learning_rate_sweep(
    control_set: ControlSet,
    targets: list,
    num_steps: int,
    learning_rates: tuple,
    iterations: int,
    settings: GrapeSettings | None = None,
) -> np.ndarray:
    """GRAPE error after ``iterations`` steps vs learning rate, per target.

    Returns an array of shape ``(len(targets), len(learning_rates))`` of
    final infidelities — the data behind the paper's Figure 4 (the rows,
    one per angle permutation, share the same low-error learning-rate
    band).
    """
    settings = settings or GrapeSettings()
    errors = np.zeros((len(targets), len(learning_rates)))
    for i, target in enumerate(targets):
        for j, lr in enumerate(learning_rates):
            hyper = GrapeHyperparameters(lr, 0.0, max_iterations=iterations)
            # Disable early convergence exit so every run uses the same
            # budget: achieved via a fidelity target of 1.0.
            sweep_settings = GrapeSettings(
                dt_ns=settings.resolved_dt(),
                target_fidelity=1.0,
                regularization=settings.regularization,
                seed=settings.seed,
                plateau_patience=10**9,
            )
            result = optimize_pulse(
                control_set, target, num_steps, hyper, sweep_settings
            )
            errors[i, j] = 1.0 - result.fidelity
    return errors
