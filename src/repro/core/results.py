"""Result records shared by all compilation strategies."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pulse.schedule import PulseProgram


@dataclass
class CompiledPulse:
    """The outcome of compiling one (bound) circuit down to pulses.

    Attributes
    ----------
    method:
        ``"gate"``, ``"grape"``, ``"strict"``, or ``"flexible"``.
    program:
        The block pulse program (ASAP-sequenced).
    pulse_duration_ns:
        Critical-path pulse duration — the paper's headline metric.
    runtime_latency_s:
        Wall-clock compilation latency paid *at run time*, i.e. inside the
        variational loop.  Pre-computation is reported separately.
    runtime_iterations:
        GRAPE gradient iterations run at run time (hardware-independent
        latency proxy).
    blocks_compiled / cache_hits:
        Work accounting for the run.
    """

    method: str
    program: PulseProgram
    pulse_duration_ns: float
    runtime_latency_s: float
    runtime_iterations: int = 0
    blocks_compiled: int = 0
    cache_hits: int = 0
    metadata: dict = field(default_factory=dict)


@dataclass
class PrecompileReport:
    """Accounting for a precompilation (pre-computation) phase.

    This is the work the paper describes as "executed as pre-computation
    step prior to executing the variational algorithm" — it is *not* part of
    the per-iteration latency.

    ``executor`` names the block executor that dispatched the independent
    per-block GRAPE searches, and ``cache_stats`` is the pulse cache's
    telemetry snapshot (hits, misses, disk tier, time spent) taken at the
    end of the phase.
    """

    method: str
    wall_time_s: float
    grape_iterations: int
    blocks_precompiled: int
    parametrized_blocks: int = 0
    cache_hits: int = 0
    hyperopt_trials: int = 0
    executor: str = "serial"
    cache_stats: dict = field(default_factory=dict)
    metadata: dict = field(default_factory=dict)


@dataclass
class LatencyComparison:
    """Flexible-vs-full-GRAPE latency reduction (Figure 7 rows)."""

    benchmark: str
    full_grape_seconds: float
    flexible_seconds: float
    full_grape_iterations: int
    flexible_iterations: int

    @property
    def wall_time_reduction(self) -> float:
        """Full-GRAPE wall seconds over flexible wall seconds (Figure 7)."""
        if self.flexible_seconds <= 0:
            return float("inf")
        return self.full_grape_seconds / self.flexible_seconds

    @property
    def iteration_reduction(self) -> float:
        """Hardware-independent latency reduction: gradient-iteration ratio."""
        if self.flexible_iterations <= 0:
            return float("inf")
        return self.full_grape_iterations / self.flexible_iterations
