"""Partial compilation — the paper's contribution.

Four compilers share one interface shape:

* :class:`GateBasedCompiler` — Table-1 lookup + concatenation (baseline).
* :class:`FullGrapeCompiler` — blocked minimum-time GRAPE (best pulses,
  untenable latency).
* :class:`StrictPartialCompiler` — GRAPE-precompiled Fixed blocks, lookup
  Rz(θ); zero runtime latency (section 6).
* :class:`FlexiblePartialCompiler` — single-θ slices, precomputed
  hyperparameters, short tuned GRAPE at runtime (section 7).

All four are thin strategy configurations of the shared
:class:`repro.pipeline.CompilationPipeline`; independent per-block GRAPE
searches dispatch through its pluggable block executor, and GRAPE results
land in a :class:`PulseCache` (optionally the on-disk
:class:`PersistentPulseCache`, see ``REPRO_CACHE_DIR``).
"""

from repro.core.cache import (
    CACHE_SCHEMA_VERSION,
    PersistentPulseCache,
    PulseCache,
    default_pulse_cache,
    unitary_fingerprint,
)
from repro.core.compiler import BlockPulseCompiler, default_device_for
from repro.core.flexible import FlexiblePartialCompiler
from repro.core.full_grape import FullGrapeCompiler
from repro.core.gate_based import GateBasedCompiler
from repro.core.search import (
    SearchSpace,
    random_search,
    rbf_search,
    successive_halving,
    tune_with_strategy,
)
from repro.core.hyperopt import (
    HyperparameterTrial,
    TuningResult,
    learning_rate_sweep,
    sample_targets,
    tune_hyperparameters,
)
from repro.core.monotonic import (
    is_parameter_grouped,
    is_parameter_monotonic,
    parameter_appearance_order,
    parametrized_gate_sequence,
)
from repro.core.results import CompiledPulse, LatencyComparison, PrecompileReport
from repro.core.slicing import (
    CircuitSlice,
    flexible_slices,
    parametrized_gate_fraction,
    strict_slices,
)
from repro.core.stepfunction import (
    AngleRange,
    StepFunctionGateCompiler,
    StepFunctionTable,
    default_step_table,
)
from repro.core.strict import StrictPartialCompiler

__all__ = [
    "default_step_table",
    "StepFunctionTable",
    "StepFunctionGateCompiler",
    "AngleRange",
    "tune_with_strategy",
    "successive_halving",
    "rbf_search",
    "random_search",
    "SearchSpace",
    "BlockPulseCompiler",
    "CACHE_SCHEMA_VERSION",
    "CircuitSlice",
    "CompiledPulse",
    "FlexiblePartialCompiler",
    "FullGrapeCompiler",
    "GateBasedCompiler",
    "HyperparameterTrial",
    "LatencyComparison",
    "PersistentPulseCache",
    "PrecompileReport",
    "PulseCache",
    "default_pulse_cache",
    "StrictPartialCompiler",
    "TuningResult",
    "default_device_for",
    "flexible_slices",
    "is_parameter_grouped",
    "is_parameter_monotonic",
    "learning_rate_sweep",
    "parameter_appearance_order",
    "parametrized_gate_fraction",
    "parametrized_gate_sequence",
    "sample_targets",
    "strict_slices",
    "tune_hyperparameters",
    "unitary_fingerprint",
]
