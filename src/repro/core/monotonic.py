"""Parameter-monotonicity analysis (paper section 7.1).

Both UCCSD and QAOA circuits apply one subcircuit per parameter, in
parameter order, exactly once — so the θᵢ-dependent gates appear in
monotonically non-decreasing ``i``.  Flexible partial compilation's deep
single-parameter slices exist *because* of this property, so it is checked
explicitly before slicing.
"""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit
from repro.errors import CompilationError


def parametrized_gate_sequence(circuit: QuantumCircuit) -> list:
    """``(instruction_index, parameter)`` for every parameter-dependent gate.

    Raises
    ------
    CompilationError
        If any single gate depends on more than one parameter (cannot be
        assigned to a single-θ slice).
    """
    out = []
    for idx, inst in enumerate(circuit):
        params = inst.parameters
        if not params:
            continue
        if len(params) > 1:
            names = sorted(p.name for p in params)
            raise CompilationError(
                f"gate {inst!r} depends on multiple parameters {names}; "
                "flexible slicing requires single-parameter gates"
            )
        out.append((idx, next(iter(params))))
    return out


def parameter_appearance_order(circuit: QuantumCircuit) -> list:
    """Parameters in order of first appearance along the instruction list."""
    seen = []
    for _, param in parametrized_gate_sequence(circuit):
        if param not in seen:
            seen.append(param)
    return seen


def is_parameter_monotonic(circuit: QuantumCircuit) -> bool:
    """True when θᵢ-dependent gates appear in non-decreasing ``i``.

    The paper's example: the angle sequence ``[θ1, θ1, θ2, θ3]`` is
    monotonic; ``[θ1, θ2, θ3, θ1]`` is not.
    """
    ordered = sorted(circuit.parameters)
    rank = {p: i for i, p in enumerate(ordered)}
    last = -1
    for _, param in parametrized_gate_sequence(circuit):
        r = rank[param]
        if r < last:
            return False
        last = r
    return True


def is_parameter_grouped(circuit: QuantumCircuit) -> bool:
    """Weaker property: all gates of each θᵢ are consecutive among
    parametrized gates (sufficient for single-parameter slicing even when
    parameters appear out of index order)."""
    seen: set = set()
    current = None
    for _, param in parametrized_gate_sequence(circuit):
        if param != current:
            if param in seen:
                return False
            seen.add(param)
            current = param
    return True
