"""Step-function gate-to-pulse lookup (the paper's related-work baseline).

The paper's compilation model maps each gate to one fixed pulse, but notes
that "experimental implementations have already moved directionally
towards GRAPE-style" compilation: in Barends et al. a parametrized
``U(ϕ)`` gate has *five different pulse sequence decompositions*, chosen
by which range the runtime angle falls in (breakpoints
``[-π, -2.25, -0.25, 0.25, 2.25, π]``), and McKay et al.'s "efficient Z
gates" make small Z rotations virtually free.  This module implements that
middle ground: a :class:`StepFunctionTable` maps (gate, bound angle) to a
calibrated pulse duration, and :class:`StepFunctionGateCompiler` is the
corresponding drop-in alternative to
:class:`~repro.core.gate_based.GateBasedCompiler`.

It remains a lookup table — zero compilation latency — but its pulse
durations depend on the runtime parametrization, which narrows (without
closing) the gap to GRAPE on rotation-heavy circuits.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.config import GATE_DURATIONS_NS
from repro.core.results import CompiledPulse
from repro.errors import CompilationError
from repro.pulse.schedule import PulseProgram, lookup_schedule
from repro.service.config import warn_deprecated

__all__ = [
    "AngleRange",
    "BARENDS_BREAKPOINTS",
    "StepFunctionGateCompiler",
    "StepFunctionTable",
    "default_step_table",
]

#: The angle-range breakpoints of Barends et al. quoted in the paper §3.
BARENDS_BREAKPOINTS = (-math.pi, -2.25, -0.25, 0.25, 2.25, math.pi)

_TWO_PI = 2 * math.pi


@dataclass(frozen=True)
class AngleRange:
    """One calibrated entry: angles in ``[lo, hi)`` cost ``duration_ns``."""

    lo: float
    hi: float
    duration_ns: float

    def __post_init__(self):
        if self.hi <= self.lo:
            raise CompilationError(f"empty angle range [{self.lo}, {self.hi})")
        if self.duration_ns < 0:
            raise CompilationError("pulse durations cannot be negative")

    def contains(self, angle: float) -> bool:
        return self.lo <= angle < self.hi


class StepFunctionTable:
    """Gate-name → angle-range → pulse-duration lookup.

    Angles are wrapped to ``(-π, π]`` before lookup.  Gates without a
    registered range list fall back to the flat Table-1 duration, so the
    table only needs entries for the parametrized gates it refines.
    """

    def __init__(self, ranges: dict | None = None):
        self._ranges: dict = {}
        for name, entries in (ranges or {}).items():
            self.register(name, entries)

    def register(self, gate_name: str, entries: Sequence[AngleRange]) -> None:
        """Register the calibrated ranges for ``gate_name``.

        The ranges must tile ``(-π, π]`` with no gaps or overlaps, so every
        runtime angle resolves to exactly one pulse decomposition.
        """
        ordered = sorted(entries, key=lambda r: r.lo)
        if not ordered:
            raise CompilationError(f"no ranges given for gate {gate_name!r}")
        if not math.isclose(ordered[0].lo, -math.pi, abs_tol=1e-9):
            raise CompilationError(f"{gate_name}: ranges must start at -π")
        if not math.isclose(ordered[-1].hi, math.pi, abs_tol=1e-9):
            raise CompilationError(f"{gate_name}: ranges must end at π")
        for left, right in zip(ordered, ordered[1:]):
            if not math.isclose(left.hi, right.lo, abs_tol=1e-9):
                raise CompilationError(
                    f"{gate_name}: gap or overlap at angle {left.hi:g}"
                )
        self._ranges[gate_name] = tuple(ordered)

    @property
    def refined_gates(self) -> tuple:
        """Gate names with angle-dependent calibrations."""
        return tuple(sorted(self._ranges))

    @staticmethod
    def wrap(angle: float) -> float:
        """Wrap any angle into ``(-π, π]``."""
        wrapped = (angle + math.pi) % _TWO_PI - math.pi
        if wrapped == -math.pi:
            wrapped = math.pi
        return wrapped

    def duration_ns(self, gate_name: str, angle: float | None = None) -> float:
        """Pulse duration for ``gate_name`` at ``angle`` (None = unparametrized)."""
        entries = self._ranges.get(gate_name)
        if entries is None or angle is None:
            try:
                return GATE_DURATIONS_NS[gate_name]
            except KeyError:
                raise CompilationError(
                    f"no duration registered for gate {gate_name!r}"
                ) from None
        wrapped = self.wrap(angle)
        for entry in entries:
            if entry.contains(wrapped) or (
                wrapped == math.pi and math.isclose(entry.hi, math.pi, abs_tol=1e-9)
            ):
                return entry.duration_ns
        raise CompilationError(
            f"angle {wrapped:g} not covered by {gate_name!r} ranges"
        )


def default_step_table() -> StepFunctionTable:
    """The Barends-style default calibration.

    * ``rz``: near-zero rotations are *virtual* (frame updates, 0 ns — the
      McKay et al. efficient-Z trick); everything else pays Table 1's
      0.4 ns.
    * ``rx``: near-zero rotations are dropped (0 ns), small rotations
      (|θ| < 2.25) use a half-length calibrated pulse, full rotations pay
      Table 1's 2.5 ns.
    """
    rz = GATE_DURATIONS_NS["rz"]
    rx = GATE_DURATIONS_NS["rx"]
    return StepFunctionTable(
        {
            "rz": (
                AngleRange(-math.pi, -0.25, rz),
                AngleRange(-0.25, 0.25, 0.0),
                AngleRange(0.25, math.pi, rz),
            ),
            "rx": (
                AngleRange(-math.pi, -2.25, rx),
                AngleRange(-2.25, -0.25, rx / 2),
                AngleRange(-0.25, 0.25, 0.0),
                AngleRange(0.25, 2.25, rx / 2),
                AngleRange(2.25, math.pi, rx),
            ),
        }
    )


class _StepFunctionGateCompiler:
    """Lookup-table compilation with angle-dependent pulse durations.

    Same zero runtime latency as :class:`GateBasedCompiler`; the only
    difference is that the pulse concatenated for a parametrized gate
    depends on which calibration range the bound angle falls in.
    """

    method = "step-function"

    def __init__(self, table: StepFunctionTable | None = None):
        self.table = table or default_step_table()

    def compile_parametrized(
        self, circuit: QuantumCircuit, values: Sequence[float] | dict
    ) -> CompiledPulse:
        """Bind ``values`` and concatenate the range-resolved pulses."""
        if not isinstance(values, dict):
            values = dict(zip(circuit.parameters, values))
        bound = circuit.bind_parameters(values)
        return self.compile_bound(bound)

    def compile_bound(self, circuit: QuantumCircuit) -> CompiledPulse:
        """Compile an already-bound circuit."""
        if circuit.is_parameterized():
            unbound = sorted(p.name for p in circuit.parameters)
            raise CompilationError(f"unbound parameters {unbound}")
        start = time.perf_counter()
        schedules = []
        for inst in circuit:
            angle = None
            if inst.gate.params:
                angle = float(inst.gate.params[0])
            duration = self.table.duration_ns(inst.gate.name, angle)
            if duration <= 0:
                continue  # virtual gate: frame update, no pulse
            schedules.append(lookup_schedule(inst.qubits, duration))
        program = PulseProgram.sequence(schedules)
        elapsed = time.perf_counter() - start
        return CompiledPulse(
            method=self.method,
            program=program,
            pulse_duration_ns=program.duration_ns,
            runtime_latency_s=elapsed,
            runtime_iterations=0,
            blocks_compiled=len(schedules),
            metadata={"refined_gates": self.table.refined_gates},
        )


class StepFunctionGateCompiler(_StepFunctionGateCompiler):
    """Deprecated constructor shim for the ``"step-function"`` strategy.

    The implementation lives in :class:`_StepFunctionGateCompiler`, which
    the strategy registry serves as ``"step-function"``; this name remains
    only so pre-service callers keep working, and emits one
    :class:`~repro.service.config.ReproDeprecationWarning` per
    construction.  Use
    ``CompilationService.compile(CompileRequest(strategy="step-function"))``.
    """

    def __init__(self, table=None):
        warn_deprecated("StepFunctionGateCompiler", "step-function")
        super().__init__(table)
