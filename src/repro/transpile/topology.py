"""Device connectivity graphs.

The paper's system Hamiltonian (Appendix A) assumes "a rectangular-grid
topology with nearest-neighbor connectivity"; circuits are mapped to it
before compilation.  A :class:`Topology` wraps a networkx graph with the
queries the router and the pulse model need.
"""

from __future__ import annotations

import math
from typing import Iterable

import networkx as nx

from repro.errors import DeviceError


class Topology:
    """An undirected qubit-connectivity graph on qubits ``0 … n-1``."""

    def __init__(self, num_qubits: int, edges: Iterable[tuple], name: str = "custom"):
        self.num_qubits = num_qubits
        self.name = name
        self.graph = nx.Graph()
        self.graph.add_nodes_from(range(num_qubits))
        for a, b in edges:
            if a == b or min(a, b) < 0 or max(a, b) >= num_qubits:
                raise DeviceError(f"invalid edge ({a}, {b}) for {num_qubits} qubits")
            self.graph.add_edge(int(a), int(b))
        self._dist = dict(nx.all_pairs_shortest_path_length(self.graph))

    @property
    def edges(self) -> tuple:
        return tuple(sorted(tuple(sorted(e)) for e in self.graph.edges))

    def are_adjacent(self, a: int, b: int) -> bool:
        return self.graph.has_edge(a, b)

    def neighbors(self, qubit: int) -> tuple:
        return tuple(sorted(self.graph.neighbors(qubit)))

    def distance(self, a: int, b: int) -> int:
        try:
            return self._dist[a][b]
        except KeyError:
            raise DeviceError(f"no path between qubits {a} and {b}") from None

    def shortest_path(self, a: int, b: int) -> list:
        return nx.shortest_path(self.graph, a, b)

    def subgraph_edges(self, qubits: Iterable[int]) -> tuple:
        """Edges of the induced subgraph on ``qubits`` (sorted pairs)."""
        qubits = set(qubits)
        return tuple(
            (a, b) for a, b in self.edges if a in qubits and b in qubits
        )

    def is_connected_subset(self, qubits: Iterable[int]) -> bool:
        qubits = list(qubits)
        if not qubits:
            return True
        sub = self.graph.subgraph(qubits)
        return nx.is_connected(sub)

    def __repr__(self) -> str:
        return f"Topology({self.name!r}, qubits={self.num_qubits}, edges={len(self.edges)})"


def line_topology(num_qubits: int) -> Topology:
    """Linear nearest-neighbor chain."""
    edges = [(i, i + 1) for i in range(num_qubits - 1)]
    return Topology(num_qubits, edges, name=f"line_{num_qubits}")


def grid_topology(rows: int, cols: int) -> Topology:
    """Rectangular grid with nearest-neighbor coupling (paper Appendix A)."""
    if rows < 1 or cols < 1:
        raise DeviceError("grid needs positive dimensions")
    edges = []
    for r in range(rows):
        for c in range(cols):
            q = r * cols + c
            if c + 1 < cols:
                edges.append((q, q + 1))
            if r + 1 < rows:
                edges.append((q, q + cols))
    return Topology(rows * cols, edges, name=f"grid_{rows}x{cols}")


def nearly_square_grid(num_qubits: int) -> Topology:
    """The most-square grid with at least ``num_qubits`` sites.

    Used as the default device shape when only a qubit count is known.
    """
    rows = max(1, int(math.floor(math.sqrt(num_qubits))))
    cols = int(math.ceil(num_qubits / rows))
    return grid_topology(rows, cols)


def full_topology(num_qubits: int) -> Topology:
    """All-to-all connectivity (no routing needed; used in unit tests)."""
    edges = [(a, b) for a in range(num_qubits) for b in range(a + 1, num_qubits)]
    return Topology(num_qubits, edges, name=f"full_{num_qubits}")


def ring_topology(num_qubits: int) -> Topology:
    """Cycle of nearest neighbors (common ion-trap / small-chip layout)."""
    if num_qubits < 3:
        raise DeviceError("a ring needs at least 3 qubits")
    edges = [(i, (i + 1) % num_qubits) for i in range(num_qubits)]
    return Topology(num_qubits, edges, name=f"ring_{num_qubits}")


def heavy_hex_topology(rows: int, cols: int) -> Topology:
    """Heavy-hexagon lattice: a hexagonal lattice with one extra qubit on
    every edge (the degree-2 "heavy" sites of IBM's transmon devices).

    ``rows x cols`` counts hexagonal unit cells; the qubit count is the
    number of lattice vertices plus one per lattice edge.
    """
    if rows < 1 or cols < 1:
        raise DeviceError("heavy-hex needs positive dimensions")
    base = nx.hexagonal_lattice_graph(rows, cols)
    index = {node: i for i, node in enumerate(sorted(base.nodes))}
    edges = []
    next_id = len(index)
    for u, v in sorted(base.edges):
        mid = next_id
        next_id += 1
        edges.append((index[u], mid))
        edges.append((mid, index[v]))
    return Topology(next_id, edges, name=f"heavyhex_{rows}x{cols}")
