"""ASAP gate scheduling with Table-1 pulse durations.

The paper "exploit[s] parallelism to simultaneously schedule as many gates
as possible; the reported gate-based runtimes are for the critical path
through the parallelized circuit".  :func:`asap_schedule` assigns each gate
the earliest start consistent with qubit availability; the schedule's
``duration_ns`` is exactly that critical path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.config import GATE_DURATIONS_NS
from repro.errors import TranspileError


@dataclass(frozen=True)
class ScheduledInstruction:
    """An instruction with its assigned start time and duration (ns)."""

    start_ns: float
    duration_ns: float
    instruction: Instruction

    @property
    def end_ns(self) -> float:
        return self.start_ns + self.duration_ns


@dataclass
class Schedule:
    """A timed gate schedule."""

    num_qubits: int
    entries: list = field(default_factory=list)

    @property
    def duration_ns(self) -> float:
        """Critical-path duration — the gate-based runtime of the circuit."""
        return max((e.end_ns for e in self.entries), default=0.0)

    def qubit_timeline(self, qubit: int) -> list:
        """Entries touching ``qubit``, in start order."""
        return sorted(
            (e for e in self.entries if qubit in e.instruction.qubits),
            key=lambda e: e.start_ns,
        )

    def parallelism(self) -> float:
        """Average number of simultaneously running gates (busy-time ratio)."""
        total_busy = sum(e.duration_ns for e in self.entries)
        duration = self.duration_ns
        return total_busy / duration if duration > 0 else 0.0

    def __len__(self) -> int:
        return len(self.entries)


def gate_duration_ns(name: str) -> float:
    """Pulse duration for ``name`` under gate-based compilation."""
    try:
        return GATE_DURATIONS_NS[name]
    except KeyError:
        raise TranspileError(f"no pulse duration for gate {name!r}") from None


def asap_schedule(circuit: QuantumCircuit) -> Schedule:
    """As-soon-as-possible schedule of ``circuit``."""
    ready = [0.0] * circuit.num_qubits
    schedule = Schedule(num_qubits=circuit.num_qubits)
    for inst in circuit:
        duration = gate_duration_ns(inst.gate.name)
        start = max(ready[q] for q in inst.qubits)
        schedule.entries.append(ScheduledInstruction(start, duration, inst))
        for q in inst.qubits:
            ready[q] = start + duration
    return schedule
