"""Two-qubit block resynthesis via the KAK decomposition.

Gate-based compilation is limited by its finite set of circuit-identity
templates (paper section 5.1, "Maximal circuit optimization").  This pass
recovers part of GRAPE's advantage *within* the gate model: maximal runs of
gates on one qubit pair are collapsed to their 4x4 unitary and re-expressed
with the minimal number of CX gates (at most 3, the bound the paper quotes
in section 5.4), plus single-qubit rotations.
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.sim.unitary import circuit_unitary
from repro.transpile.basis import decompose_to_basis
from repro.transpile.kak import (
    cx_count_for_coordinates,
    kak_decompose,
    zyz_angles,
)
from repro.transpile.optimize import optimize_circuit
from repro.transpile.schedule import asap_schedule

__all__ = [
    "canonical_gate_circuit",
    "resynthesize_two_qubit_runs",
    "two_qubit_circuit",
]

_PI_2 = math.pi / 2


def _append_su2(circuit: QuantumCircuit, u: np.ndarray, qubit: int, atol: float) -> None:
    """Append ``u`` (2x2) to ``circuit`` as Rz·Ry·Rz, dropping null rotations."""
    _, beta, gamma, delta = zyz_angles(u)
    if abs(delta) > atol:
        circuit.rz(delta, qubit)
    if abs(gamma) > atol:
        circuit.ry(gamma, qubit)
    if abs(beta) > atol:
        circuit.rz(beta, qubit)


def canonical_gate_circuit(x: float, y: float, z: float, atol: float = 1e-7) -> QuantumCircuit:
    """A circuit locally equivalent to ``K(x, y, z)`` with minimal CX count.

    The emitted circuit realizes the canonical interaction only up to
    single-qubit corrections (and global phase); :func:`two_qubit_circuit`
    solves for those corrections.  CX counts: 0 for the identity class,
    1 for the CX class, 2 when ``z = 0``, 3 otherwise.
    """
    n_cx = cx_count_for_coordinates((x, y, z), atol=atol)
    circuit = QuantumCircuit(2, name=f"canonical_{n_cx}cx")
    if n_cx == 0:
        return circuit
    if n_cx == 1:
        circuit.cx(0, 1)
        return circuit
    if n_cx == 2:
        # CX · (Rx(-2x) ⊗ Rz(-2y)) · CX = exp(i(x·XX + y·ZZ)), which is
        # locally equivalent to K(x, y, 0) (coordinate swap is a local
        # Clifford).
        circuit.cx(0, 1)
        circuit.rx(-2 * x, 0)
        circuit.rz(-2 * y, 1)
        circuit.cx(0, 1)
        return circuit
    # Vatan-Williams-style 3-CX template, verified exact for the invariants:
    # CX₁₀ · (Rz(2x+π/2) ⊗ Ry(2y+π/2)) · CX₀₁ · (I ⊗ Ry(2z+π/2)) · CX₁₀
    circuit.cx(1, 0)
    circuit.ry(2 * z + _PI_2, 1)
    circuit.cx(0, 1)
    circuit.rz(2 * x + _PI_2, 0)
    circuit.ry(2 * y + _PI_2, 1)
    circuit.cx(1, 0)
    return circuit


def two_qubit_circuit(u: np.ndarray, atol: float = 1e-7) -> QuantumCircuit:
    """Synthesize a CX-count-minimal circuit for a 4x4 unitary.

    The result implements ``u`` up to global phase, using at most 3 CX
    gates plus Rz/Ry single-qubit rotations.  Qubit 0 of the returned
    circuit is the most-significant tensor factor of ``u``.
    """
    target = kak_decompose(u)
    middle = canonical_gate_circuit(target.x, target.y, target.z, atol=atol)
    if len(middle) == 0:
        # Identity class: u is a tensor product of locals; the per-qubit
        # operator is k1 · k2 (k2 applied first).
        circuit = QuantumCircuit(2, name="resynth")
        _append_su2(circuit, target.k1_q0 @ target.k2_q0, 0, atol)
        _append_su2(circuit, target.k1_q1 @ target.k2_q1, 1, atol)
        return circuit

    template = kak_decompose(circuit_unitary(middle))
    # u  = e^{iφu} (A₀⊗A₁) K (B₀⊗B₁);  V = e^{iφv} (C₀⊗C₁) K (D₀⊗D₁)
    # ⟹ u = e^{i(φu-φv)} (A₀C₀† ⊗ A₁C₁†) · V · (D₀†B₀ ⊗ D₁†B₁)
    left_q0 = target.k1_q0 @ template.k1_q0.conj().T
    left_q1 = target.k1_q1 @ template.k1_q1.conj().T
    right_q0 = template.k2_q0.conj().T @ target.k2_q0
    right_q1 = template.k2_q1.conj().T @ target.k2_q1

    circuit = QuantumCircuit(2, name="resynth")
    _append_su2(circuit, right_q0, 0, atol)
    _append_su2(circuit, right_q1, 1, atol)
    for inst in middle:
        circuit.append(inst.gate, inst.qubits)
    _append_su2(circuit, left_q0, 0, atol)
    _append_su2(circuit, left_q1, 1, atol)
    return circuit


class _Run:
    """A maximal sequence of instructions confined to one qubit pair."""

    def __init__(self, pair: frozenset):
        self.pair = pair
        self.instructions: list = []
        self.two_qubit_count = 0

    def add(self, inst: Instruction) -> None:
        self.instructions.append(inst)
        if len(inst.qubits) == 2:
            self.two_qubit_count += 1

    def is_parameterized(self) -> bool:
        return any(inst.gate.is_parameterized() for inst in self.instructions)


def _run_duration(instructions, num_qubits: int) -> float:
    sub = QuantumCircuit(num_qubits)
    for inst in instructions:
        sub.append(inst.gate, inst.qubits)
    return asap_schedule(decompose_to_basis(sub)).duration_ns


def _resynthesize_run(run: _Run, num_qubits: int) -> list:
    """Return the best instruction list for ``run`` (original or resynth)."""
    if run.two_qubit_count < 2 or run.is_parameterized():
        return run.instructions
    qa, qb = sorted(run.pair)
    sub = QuantumCircuit(2)
    for inst in run.instructions:
        mapped = tuple(0 if q == qa else 1 for q in inst.qubits)
        sub.append(inst.gate, mapped)
    try:
        replacement = two_qubit_circuit(circuit_unitary(sub))
    except Exception:
        return run.instructions
    replacement = optimize_circuit(decompose_to_basis(replacement))
    if _run_duration(replacement.instructions, 2) >= _run_duration(
        [Instruction(i.gate, tuple(0 if q == qa else 1 for q in i.qubits)) for i in run.instructions],
        2,
    ):
        return run.instructions
    back = {0: qa, 1: qb}
    return [
        Instruction(inst.gate, tuple(back[q] for q in inst.qubits))
        for inst in replacement
    ]


def resynthesize_two_qubit_runs(circuit: QuantumCircuit) -> QuantumCircuit:
    """Collapse runs of two-qubit interactions to ≤3-CX implementations.

    Runs containing parameterized gates are left untouched, so the pass is
    safe inside the partial-compilation pipeline: Fixed blocks shrink while
    the Rz(θᵢ) landmarks survive.  A run is only replaced when its
    gate-based critical path strictly improves.
    """
    output: list = []
    pending: dict = {q: [] for q in range(circuit.num_qubits)}
    open_run: _Run | None = None

    def flush_pending(qubits) -> list:
        got = []
        for q in qubits:
            got.extend(pending[q])
            pending[q] = []
        return got

    def close_run() -> None:
        nonlocal open_run
        if open_run is not None:
            output.extend(_resynthesize_run(open_run, circuit.num_qubits))
            open_run = None

    for inst in circuit:
        qubits = inst.qubits
        if len(qubits) == 1:
            q = qubits[0]
            if open_run is not None and q in open_run.pair:
                open_run.add(inst)
            else:
                pending[q].append(inst)
        elif len(qubits) == 2:
            pair = frozenset(qubits)
            if open_run is not None and open_run.pair == pair:
                open_run.add(inst)
                continue
            if open_run is not None and open_run.pair & pair:
                close_run()
            elif open_run is not None:
                close_run()
            run = _Run(pair)
            for prior in flush_pending(sorted(pair)):
                run.add(prior)
            run.add(inst)
            open_run = run
        else:
            close_run()
            output.extend(flush_pending(range(circuit.num_qubits)))
            output.append(inst)
    close_run()
    # Remaining 1q gates, in original program order.
    leftovers = [inst for q in pending for inst in pending[q]]
    order = {id(inst): i for i, inst in enumerate(circuit)}
    leftovers.sort(key=lambda inst: order.get(id(inst), len(order)))
    output.extend(leftovers)

    result = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    for inst in output:
        result.append(inst.gate, inst.qubits)
    # Per-run improvements can still lose global scheduling slack (a
    # shorter serial run may delay one qubit's tail).  Guarantee the pass
    # never regresses the circuit's critical path by falling back to the
    # input when the ASAP duration did not strictly improve.
    before = asap_schedule(decompose_to_basis(circuit)).duration_ns
    after = asap_schedule(decompose_to_basis(result)).duration_ns
    if after >= before:
        return circuit
    return result
