"""Commutation-aware rotation merging.

``merge_rotations`` only fuses rotations that are *adjacent* on their qubit.
But a ``Rz`` on a CX's control qubit commutes through the CX (both are
diagonal on that qubit), and an ``Rx`` on a CX's target commutes likewise —
so rotations separated by commuting gates can still merge.  This pass
implements that stronger rule, one of the "circuit identity templates" the
paper's optimization stack applies (section 2.2).

Commutation rules used (for the rotation's qubit ``q``):

* ``Rz(q)`` passes ``cx`` (when ``q`` is the control), ``cz``, ``rzz``,
  and the diagonal gates ``z, s, sdg, t, tdg``.
* ``Rx(q)`` passes ``cx`` (when ``q`` is the target) and ``x``.

Symbolic safety: two symbolic rotations merge only when they depend on the
same parameter (merging θⱼ into an earlier θᵢ position would break the
parameter-monotonic list order partial compilation relies on).
"""

from __future__ import annotations

from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.circuits.gates import RXGate, RZGate
from repro.transpile.optimize import _add_angles, _is_zero_angle

_ROTATION_CLASSES = {"rz": RZGate, "rx": RXGate}

_Z_DIAGONAL = {"z", "s", "sdg", "t", "tdg", "rz", "rzz", "cz"}


def _commutes(axis: str, qubit: int, inst: Instruction) -> bool:
    """Does ``inst`` commute with an ``axis`` rotation on ``qubit``?"""
    name = inst.gate.name
    if axis == "rz":
        if name in _Z_DIAGONAL:
            return True
        if name == "cx":
            return inst.qubits[0] == qubit  # diagonal on the control
        return False
    if axis == "rx":
        if name in ("x", "rx"):
            return True
        if name == "cx":
            return inst.qubits[1] == qubit  # X-like on the target
        return False
    return False


def _mergeable(a, b) -> bool:
    """Symbolic-safety rule: allow constant/constant, constant/symbolic,
    and same-parameter symbolic merges."""
    from repro.circuits.parameters import angle_parameters

    params_a, params_b = angle_parameters(a), angle_parameters(b)
    if not params_a or not params_b:
        return True
    return params_a == params_b


def commuting_rotation_merge(circuit: QuantumCircuit) -> QuantumCircuit:
    """Merge same-axis rotations separated by commuting gates."""
    emitted: list = list(circuit.instructions)
    # Per-qubit ordered positions into `emitted`.
    timelines: dict[int, list] = {q: [] for q in range(circuit.num_qubits)}
    for pos, inst in enumerate(emitted):
        for q in inst.qubits:
            timelines[q].append(pos)

    for q, positions in timelines.items():
        i = 0
        while i < len(positions):
            pos = positions[i]
            inst = emitted[pos]
            if inst is None or inst.gate.name not in _ROTATION_CLASSES or len(inst.qubits) != 1:
                i += 1
                continue
            axis = inst.gate.name
            # Walk forward through commuting gates looking for a partner.
            j = i + 1
            while j < len(positions):
                other_pos = positions[j]
                other = emitted[other_pos]
                if other is None:
                    j += 1
                    continue
                if other.gate.name == axis and len(other.qubits) == 1:
                    if _mergeable(inst.gate.params[0], other.gate.params[0]):
                        merged = _add_angles(inst.gate.params[0], other.gate.params[0])
                        emitted[other_pos] = None
                        if _is_zero_angle(merged):
                            emitted[pos] = None
                        else:
                            emitted[pos] = Instruction(
                                _ROTATION_CLASSES[axis](merged), (q,)
                            )
                            inst = emitted[pos]
                        j += 1
                        continue
                    break
                if _commutes(axis, q, other):
                    j += 1
                    continue
                break
            i += 1

    out = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    for inst in emitted:
        if inst is not None:
            out.append(inst.gate, inst.qubits)
    return out
