"""Peephole circuit optimization.

Implements the paper's optimization stack (section 2.2): "aggressive
cancellation of CX gates and Hadamard gates" plus the authors' custom pass
"for merging rotation gates — e.g. Rx(α) followed by Rx(β) merges into
Rx(α+β)".  All passes are symbolic-parameter safe: merging ``Rz(θ₀)`` with
``Rz(-θ₀/2)`` produces ``Rz(θ₀/2)`` with the dependency tag intact.
"""

from __future__ import annotations

import math

from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.circuits.gates import Gate, HGate, RXGate, RYGate, RZGate, RZZGate
from repro.circuits.parameters import Parameter, ParameterExpression

_ROTATIONS = {"rx": RXGate, "ry": RYGate, "rz": RZGate}
_SYMMETRIC_GATES = {"cz", "swap", "rzz", "iswap"}
_TWO_PI = 2.0 * math.pi


def _add_angles(a, b):
    """Sum two angles, staying symbolic when either side is."""
    symbolic = isinstance(a, (Parameter, ParameterExpression)) or isinstance(
        b, (Parameter, ParameterExpression)
    )
    if symbolic:
        return ParameterExpression._coerce(a) + b
    return float(a) + float(b)


def _is_zero_angle(angle) -> bool:
    """True for *constant* angles equal to 0 modulo 2π.

    ``R(2π) = -1`` is a global phase, unobservable in this library's
    phase-insensitive fidelity measures, so it is safe to drop.
    """
    if isinstance(angle, Parameter):
        return False
    if isinstance(angle, ParameterExpression):
        if not angle.is_constant():
            return False
        angle = angle.to_float()
    return math.isclose(math.cos(angle), 1.0, abs_tol=1e-12) and (
        abs(math.sin(angle)) < 1e-9
    )


def merge_rotations(circuit: QuantumCircuit) -> QuantumCircuit:
    """Merge runs of same-axis rotations that are adjacent on their qubit.

    This is the paper's custom compiler pass.  Later rotations merge *into
    the position of the first rotation of the run*, so the instruction-list
    order of the remaining gates is preserved (parameter monotonicity
    analyses depend on list order).  Runs that merge to a constant zero
    angle are removed entirely.
    """
    emitted: list = []  # Instruction | None tombstones
    # open_rotation[q] = index into ``emitted`` of the mergeable rotation.
    open_rotation: dict[int, int] = {}

    for inst in circuit:
        name = inst.gate.name
        if name in _ROTATIONS and len(inst.qubits) == 1:
            q = inst.qubits[0]
            slot = open_rotation.get(q)
            if slot is not None and emitted[slot].gate.name == name:
                merged = _add_angles(emitted[slot].gate.params[0], inst.gate.params[0])
                if _is_zero_angle(merged):
                    emitted[slot] = None
                    open_rotation.pop(q)
                else:
                    emitted[slot] = Instruction(_ROTATIONS[name](merged), (q,))
                continue
            emitted.append(inst)
            open_rotation[q] = len(emitted) - 1
        else:
            for q in inst.qubits:
                open_rotation.pop(q, None)
            emitted.append(inst)

    out = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    for inst in emitted:
        if inst is not None and not (
            inst.gate.name in _ROTATIONS and _is_zero_angle(inst.gate.params[0])
        ):
            out.append(inst.gate, inst.qubits)
    return out


def remove_zero_rotations(circuit: QuantumCircuit) -> QuantumCircuit:
    """Drop rotations with constant angle ≡ 0 (mod 2π), and identity gates."""
    out = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    for inst in circuit:
        name = inst.gate.name
        if name == "id":
            continue
        if name in ("rx", "ry", "rz", "rzz") and _is_zero_angle(inst.gate.params[0]):
            continue
        out.append(inst.gate, inst.qubits)
    return out


def _inverse_pair(first: Instruction, second: Instruction) -> bool:
    """True when ``second`` undoes ``first`` on the same qubits."""
    if first.gate.name in _SYMMETRIC_GATES or second.gate.name in _SYMMETRIC_GATES:
        if set(first.qubits) != set(second.qubits):
            return False
    elif first.qubits != second.qubits:
        return False
    try:
        return bool(second.gate == first.gate.inverse())
    except NotImplementedError:
        return False


def cancel_adjacent_inverses(circuit: QuantumCircuit) -> QuantumCircuit:
    """Cancel gate pairs that are mutually inverse and adjacent on all their
    qubits (CX·CX, H·H, Rz(θ)·Rz(-θ), …), iterating as pairs expose new
    pairs."""
    # ``emitted`` holds instructions (or None tombstones); ``top[q]`` is a
    # stack of emitted indices touching qubit q, so adjacency means: for all
    # qubits of the incoming gate, the stack tops agree.
    emitted: list = []
    top: dict[int, list] = {q: [] for q in range(circuit.num_qubits)}

    for inst in circuit:
        tops = [top[q][-1] if top[q] else None for q in inst.qubits]
        prev_idx = tops[0]
        if (
            prev_idx is not None
            and all(t == prev_idx for t in tops)
            and emitted[prev_idx] is not None
            and len(emitted[prev_idx].qubits) == len(inst.qubits)
            and _inverse_pair(emitted[prev_idx], inst)
        ):
            emitted[prev_idx] = None
            for q in inst.qubits:
                top[q].pop()
            continue
        emitted.append(inst)
        idx = len(emitted) - 1
        for q in inst.qubits:
            top[q].append(idx)

    out = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    for inst in emitted:
        if inst is not None:
            out.append(inst.gate, inst.qubits)
    return out


def parametrized_rx_to_rz(circuit: QuantumCircuit) -> QuantumCircuit:
    """Rewrite parameter-dependent ``Rx(θ)`` as ``H · Rz(θ) · H``.

    After this pass every parameter-dependent gate in the benchmark circuits
    is an ``Rz(θᵢ)``, matching the paper's slicing model (the H gates join
    the neighbouring Fixed blocks).  Constant-angle Rx gates are untouched.
    """
    out = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    for inst in circuit:
        if inst.gate.name == "rx" and inst.parameters:
            q = inst.qubits[0]
            out.append(HGate(), (q,))
            out.append(RZGate(inst.gate.params[0]), (q,))
            out.append(HGate(), (q,))
        else:
            out.append(inst.gate, inst.qubits)
    return out


def optimize_circuit(circuit: QuantumCircuit, max_rounds: int = 10) -> QuantumCircuit:
    """Run merge + cancel + cleanup to a fixed point (≤ ``max_rounds``)."""
    current = circuit
    for _ in range(max_rounds):
        previous_len = len(current)
        current = merge_rotations(current)
        current = cancel_adjacent_inverses(current)
        current = remove_zero_rotations(current)
        if len(current) == previous_len:
            break
    return current
