"""Cartan (KAK) decomposition of two-qubit unitaries.

The paper's section 5.4 leans on the classic circuit-complexity bound that
"3 CX gates, sandwiched by single-qubit rotations, is sufficient to
implement any two qubit operation".  This module makes that bound
executable: any 4x4 unitary is factored through the Cartan decomposition

    ``U = e^{iφ} (A₀ ⊗ A₁) · K(x, y, z) · (B₀ ⊗ B₁)``

where ``K(x, y, z) = exp(i (x·XX + y·YY + z·ZZ))`` is the canonical
two-qubit interaction and the canonical coordinates ``(x, y, z)`` live in
the Weyl chamber.  From the coordinates we read off the minimal CX count
(0, 1, 2, or 3) and synthesize a matching circuit.

Conventions
-----------
Qubit 0 is the *most significant* tensor factor (matching
:func:`repro.linalg.embed_operator`); ``A₀`` above acts on qubit 0.  The
magic basis is the Cirq/Makhlin one; in it every ``SU(2) ⊗ SU(2)`` operator
is real orthogonal and every ``K(x, y, z)`` is diagonal.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import TranspileError

__all__ = [
    "KAKDecomposition",
    "canonical_matrix",
    "cx_count_for_coordinates",
    "decompose_su2_tensor",
    "kak_decompose",
    "makhlin_invariants",
    "weyl_coordinates",
    "zyz_angles",
]

_PI_2 = math.pi / 2
_PI_4 = math.pi / 4

_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.diag([1.0, -1.0]).astype(complex)
_I2 = np.eye(2, dtype=complex)

#: Magic basis (columns are the magic Bell states).
MAGIC = np.array(
    [[1, 0, 0, 1j], [0, 1j, 1, 0], [0, 1j, -1, 0], [1, 0, 0, -1j]],
    dtype=complex,
) / math.sqrt(2)

# Diagonals of XX / YY / ZZ in the magic basis (all three are diagonal
# there); verified by tests against the explicit conjugation.
_H_XX = np.array([1.0, 1.0, -1.0, -1.0])
_H_YY = np.array([-1.0, 1.0, -1.0, 1.0])
_H_ZZ = np.array([1.0, -1.0, -1.0, 1.0])

# Two-qubit Paulis used by the canonicalization moves.
_XX = np.kron(_X, _X)
_YY = np.kron(_Y, _Y)
_ZZ = np.kron(_Z, _Z)


def _rx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def _ry(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def _rz(phi: float) -> np.ndarray:
    return np.diag([cmath.exp(-0.5j * phi), cmath.exp(0.5j * phi)])


def canonical_matrix(x: float, y: float, z: float) -> np.ndarray:
    """``K(x, y, z) = exp(i (x·XX + y·YY + z·ZZ))`` as a dense 4x4 array.

    Computed in closed form through the magic basis, where the exponent is
    diagonal — no iterative ``expm`` needed.
    """
    lam = x * _H_XX + y * _H_YY + z * _H_ZZ
    return (MAGIC * np.exp(1j * lam)) @ MAGIC.conj().T


def zyz_angles(u: np.ndarray, atol: float = 1e-9) -> tuple:
    """Euler angles ``(α, β, γ, δ)`` with ``u = e^{iα} Rz(β) Ry(γ) Rz(δ)``.

    Works for any 2x2 unitary; the global phase ``α`` is returned
    explicitly so callers can track it exactly.
    """
    u = np.asarray(u, dtype=complex)
    if u.shape != (2, 2):
        raise TranspileError(f"zyz_angles needs a 2x2 matrix, got {u.shape}")
    det = np.linalg.det(u)
    alpha = cmath.phase(det) / 2
    su = u * cmath.exp(-1j * alpha)
    # su = [[cos(γ/2) e^{-i(β+δ)/2}, -sin(γ/2) e^{-i(β-δ)/2}],
    #       [sin(γ/2) e^{+i(β-δ)/2},  cos(γ/2) e^{+i(β+δ)/2}]]
    gamma = 2 * math.atan2(abs(su[1, 0]), abs(su[0, 0]))
    if abs(su[0, 0]) < atol:
        # γ = π: only β - δ is determined; pick δ = 0.
        beta = 2 * cmath.phase(su[1, 0])
        delta = 0.0
    elif abs(su[1, 0]) < atol:
        # γ = 0: only β + δ is determined; pick δ = 0.
        beta = 2 * cmath.phase(su[1, 1])
        delta = 0.0
    else:
        plus = 2 * cmath.phase(su[1, 1])
        minus = 2 * cmath.phase(su[1, 0])
        beta = (plus + minus) / 2
        delta = (plus - minus) / 2
    return alpha, beta, gamma, delta


def decompose_su2_tensor(u: np.ndarray, atol: float = 1e-7) -> tuple:
    """Split a 4x4 ``e^{iφ} (A ⊗ B)`` into ``(phase, A, B)`` with A, B in SU(2).

    Raises :class:`TranspileError` if ``u`` is not a tensor product within
    ``atol`` (checked via the second singular value of the reshuffled
    matrix).
    """
    u = np.asarray(u, dtype=complex)
    if u.shape != (4, 4):
        raise TranspileError(f"expected a 4x4 matrix, got {u.shape}")
    # Reshuffle so that u = A ⊗ B becomes the rank-1 outer product
    # vec(A) vec(B)^T.
    m = u.reshape(2, 2, 2, 2).transpose(0, 2, 1, 3).reshape(4, 4)
    w, s, vh = np.linalg.svd(m)
    if s[1] > atol:
        raise TranspileError(
            f"matrix is not a tensor product of single-qubit operators "
            f"(residual singular value {s[1]:.2e})"
        )
    a = (w[:, 0] * s[0]).reshape(2, 2)
    b = vh[0, :].reshape(2, 2)
    # Normalize both factors to SU(2) and pool the leftover global phase.
    det_a = np.linalg.det(a)
    det_b = np.linalg.det(b)
    a = a / np.sqrt(det_a)
    b = b / np.sqrt(det_b)
    phase = cmath.phase(np.linalg.det(u)) / 4
    # Align the pooled phase: u == e^{iφ} (a ⊗ b) up to a residual sign.
    probe = np.kron(a, b)
    idx = np.unravel_index(np.argmax(np.abs(probe)), probe.shape)
    residual = u[idx] / (cmath.exp(1j * phase) * probe[idx])
    phase += cmath.phase(residual)
    return phase, a, b


@dataclass(frozen=True)
class KAKDecomposition:
    """Canonical Cartan decomposition of a two-qubit unitary.

    ``unitary() == e^{i·global_phase} (k1_q0 ⊗ k1_q1) · K(x, y, z)
    · (k2_q0 ⊗ k2_q1)`` with ``(x, y, z)`` in the Weyl chamber:
    ``π/4 ≥ x ≥ y ≥ |z|``.  Mirror classes keep ``z < 0`` — they are not
    locally equivalent to their ``z > 0`` counterparts — except at the
    ``x = π/4`` face where both coincide and ``z ≥ 0`` is normalized.
    """

    global_phase: float
    k1_q0: np.ndarray
    k1_q1: np.ndarray
    x: float
    y: float
    z: float
    k2_q0: np.ndarray
    k2_q1: np.ndarray

    @property
    def coordinates(self) -> tuple:
        """Canonical Weyl-chamber coordinates ``(x, y, z)``."""
        return (self.x, self.y, self.z)

    def canonical_unitary(self) -> np.ndarray:
        """``K(x, y, z)`` for this decomposition's coordinates."""
        return canonical_matrix(self.x, self.y, self.z)

    def unitary(self) -> np.ndarray:
        """Reconstruct the original 4x4 unitary exactly (incl. phase)."""
        left = np.kron(self.k1_q0, self.k1_q1)
        right = np.kron(self.k2_q0, self.k2_q1)
        return cmath.exp(1j * self.global_phase) * (
            left @ self.canonical_unitary() @ right
        )


def _simultaneously_diagonalize(re: np.ndarray, im: np.ndarray) -> np.ndarray:
    """Real orthogonal ``P`` diagonalizing two commuting symmetric matrices."""
    rng = np.random.default_rng(20190716)
    for _ in range(24):
        t = rng.uniform(0.1, 2.0)
        _, p = np.linalg.eigh(re + t * im)
        if (
            _is_diagonal(p.T @ re @ p)
            and _is_diagonal(p.T @ im @ p)
        ):
            return p
    raise TranspileError("simultaneous diagonalization failed to converge")


def _is_diagonal(m: np.ndarray, atol: float = 1e-9) -> bool:
    return bool(np.abs(m - np.diag(np.diag(m))).max() < atol)


class _Canonicalizer:
    """Folds Weyl coordinates into the chamber, tracking local corrections.

    Maintains the invariant ``K(x₀,y₀,z₀) = e^{iφ} L · K(x,y,z) · R`` where
    ``L`` and ``R`` stay in SU(2)⊗SU(2) (up to phase) throughout.
    """

    _NEGATE_PAULI = {frozenset((0, 1)): _Z, frozenset((0, 2)): _Y, frozenset((1, 2)): _X}

    def __init__(self, x: float, y: float, z: float, atol: float):
        self.coords = [x, y, z]
        self.left = np.eye(4, dtype=complex)
        self.right = np.eye(4, dtype=complex)
        self.phase = 0.0
        self.atol = atol
        # Conjugating Cliffords for coordinate swaps: S swaps x<->y,
        # Rx(π/2) swaps y<->z, Ry(π/2) swaps x<->z (all sign-free).
        s = np.diag([1.0, 1j])
        self._swap_clifford = {
            frozenset((0, 1)): s,
            frozenset((1, 2)): _rx(_PI_2),
            frozenset((0, 2)): _ry(_PI_2),
        }
        self._pauli_for_axis = (_XX, _YY, _ZZ)

    def shift_into_range(self, i: int) -> None:
        """Bring ``coords[i]`` into (-π/4, π/4] by multiples of π/2."""
        n = math.floor((self.coords[i] + _PI_4) / _PI_2)
        if self.coords[i] - n * _PI_2 <= -_PI_4 + self.atol:
            # Land exactly-boundary values on +π/4, not -π/4, so the
            # chamber fold terminates (SWAP-like coordinates).
            n -= 1
        if n == 0:
            return
        self.coords[i] -= n * _PI_2
        self.phase += n * _PI_2
        if n % 2:
            self.right = self._pauli_for_axis[i] @ self.right

    def negate(self, i: int, j: int) -> None:
        pauli = self._NEGATE_PAULI[frozenset((i, j))]
        op = np.kron(pauli, _I2)
        self.coords[i] = -self.coords[i]
        self.coords[j] = -self.coords[j]
        self.left = self.left @ op
        self.right = op @ self.right

    def swap(self, i: int, j: int) -> None:
        c = self._swap_clifford[frozenset((i, j))]
        op = np.kron(c, c)
        self.coords[i], self.coords[j] = self.coords[j], self.coords[i]
        self.left = self.left @ op.conj().T
        self.right = op @ self.right

    def run(self) -> None:
        for i in range(3):
            self.shift_into_range(i)
        for _ in range(8):
            if self._step():
                return
        raise TranspileError("Weyl-chamber canonicalization did not converge")

    def _step(self) -> bool:
        c = self.coords
        # Clamp numerically-zero coordinates so -0 never drives a negate.
        for i in range(3):
            if abs(c[i]) < self.atol:
                c[i] = 0.0
        # Sort by magnitude, descending.
        if abs(c[0]) < abs(c[1]):
            self.swap(0, 1)
        if abs(c[1]) < abs(c[2]):
            self.swap(1, 2)
        if abs(c[0]) < abs(c[1]):
            self.swap(0, 1)
        negatives = [i for i in range(3) if c[i] < 0]
        if len(negatives) >= 2:
            self.negate(negatives[0], negatives[1])
            return False
        if len(negatives) == 1 and negatives[0] != 2:
            self.negate(negatives[0], 2)
            return False
        # At x = π/4 the mirror classes coincide; normalize z to be >= 0.
        if c[2] < 0 and abs(c[0] - _PI_4) < self.atol:
            self.negate(0, 2)
            self.shift_into_range(0)
            return False
        return True


def kak_decompose(u: np.ndarray, atol: float = 1e-8) -> KAKDecomposition:
    """Canonical KAK decomposition of a two-qubit unitary.

    The result reconstructs ``u`` exactly (up to numerical precision) via
    :meth:`KAKDecomposition.unitary`, with Weyl-chamber canonical
    coordinates.
    """
    u = np.asarray(u, dtype=complex)
    if u.shape != (4, 4):
        raise TranspileError(f"KAK needs a 4x4 unitary, got shape {u.shape}")
    if not np.allclose(u @ u.conj().T, np.eye(4), atol=1e-7):
        raise TranspileError("KAK input is not unitary")

    det = np.linalg.det(u)
    phase = cmath.phase(det) / 4
    u_su = u * cmath.exp(-1j * phase)

    m = MAGIC.conj().T @ u_su @ MAGIC
    mtm = m.T @ m
    p = _simultaneously_diagonalize(mtm.real, mtm.imag)
    if np.linalg.det(p) < 0:
        p = p.copy()
        p[:, 0] = -p[:, 0]

    d = np.diag(p.T @ mtm @ p)
    lam = np.angle(d) / 2
    q = m @ p @ np.diag(np.exp(-1j * lam))
    # q is real orthogonal for any eigenphase branch, but det q = e^{-i Σλ}
    # may be -1; shifting one λ by π selects the SO(4) branch so that both
    # orthogonal factors map back to tensor products of single-qubit gates.
    if np.linalg.det(q).real < 0:
        lam = lam.copy()
        lam[0] += math.pi
        q = m @ p @ np.diag(np.exp(-1j * lam))
    if np.abs(q.imag).max() > 1e-6:
        raise TranspileError("KAK orthogonal factor failed to become real")
    q = q.real.astype(float)

    k1 = MAGIC @ q @ MAGIC.conj().T
    k2 = MAGIC @ p.T @ MAGIC.conj().T

    x = float(lam @ _H_XX) / 4
    y = float(lam @ _H_YY) / 4
    z = float(lam @ _H_ZZ) / 4
    phase += float(np.sum(lam)) / 4

    canon = _Canonicalizer(x, y, z, atol)
    canon.run()
    k1 = k1 @ canon.left
    k2 = canon.right @ k2
    phase += canon.phase

    p1, a0, a1 = decompose_su2_tensor(k1)
    p2, b0, b1 = decompose_su2_tensor(k2)
    cx, cy, cz = canon.coords
    return KAKDecomposition(
        global_phase=_wrap_angle(phase + p1 + p2),
        k1_q0=a0,
        k1_q1=a1,
        x=cx,
        y=cy,
        z=cz,
        k2_q0=b0,
        k2_q1=b1,
    )


def weyl_coordinates(u: np.ndarray, atol: float = 1e-8) -> tuple:
    """Canonical Weyl-chamber coordinates ``(x, y, z)`` of a 4x4 unitary."""
    return kak_decompose(u, atol=atol).coordinates


def makhlin_invariants(u: np.ndarray) -> tuple:
    """Makhlin local invariants ``(Re g1, Im g1, g2)``.

    Two two-qubit unitaries are equivalent up to single-qubit operations
    iff their Makhlin invariants coincide.
    """
    u = np.asarray(u, dtype=complex)
    u_su = u / np.linalg.det(u) ** 0.25
    m = MAGIC.conj().T @ u_su @ MAGIC
    mtm = m.T @ m
    tr = np.trace(mtm)
    g1 = tr**2 / 16
    g2 = (tr**2 - np.trace(mtm @ mtm)) / 4
    return float(g1.real), float(g1.imag), float(g2.real)


def cx_count_for_coordinates(coords, atol: float = 1e-7) -> int:
    """Minimal CX count needed for canonical coordinates ``(x, y, z)``."""
    x, y, z = coords
    if abs(x) < atol and abs(y) < atol and abs(z) < atol:
        return 0
    if abs(x - _PI_4) < atol and abs(y) < atol and abs(z) < atol:
        return 1
    if abs(z) < atol:
        return 2
    return 3


def _wrap_angle(a: float) -> float:
    return (a + math.pi) % (2 * math.pi) - math.pi
