"""Qubit mapping and SWAP-insertion routing.

Conforms circuits to nearest-neighbor connectivity, like the paper's use of
"Qiskit's circuit mapper (to conform to nearest neighbor connectivity)".
A greedy shortest-path router: when a two-qubit gate spans non-adjacent
physical qubits, SWAPs walk one operand along a shortest path until the pair
is adjacent.  SWAPs are emitted as native gates (Table 1 gives SWAP its own
pulse), not decomposed into CXs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import SwapGate
from repro.errors import TranspileError
from repro.transpile.topology import Topology


@dataclass
class RoutingResult:
    """Output of :func:`route_circuit`.

    Attributes
    ----------
    circuit:
        The routed circuit on physical qubits (width = topology size).
    initial_layout:
        Mapping logical qubit -> physical qubit before the first gate.
    final_layout:
        The same mapping after all inserted SWAPs.
    swap_count:
        Number of SWAP gates inserted.
    """

    circuit: QuantumCircuit
    initial_layout: dict
    final_layout: dict
    swap_count: int


def route_circuit(
    circuit: QuantumCircuit,
    topology: Topology,
    initial_layout: Mapping[int, int] | None = None,
) -> RoutingResult:
    """Insert SWAPs so every two-qubit gate acts on adjacent physical qubits.

    Parameters
    ----------
    circuit:
        Logical circuit; its width must not exceed the topology size.
    topology:
        Physical connectivity.
    initial_layout:
        Optional logical→physical placement; identity by default.
    """
    if circuit.num_qubits > topology.num_qubits:
        raise TranspileError(
            f"circuit width {circuit.num_qubits} exceeds device size "
            f"{topology.num_qubits}"
        )
    if initial_layout is None:
        layout = {q: q for q in range(circuit.num_qubits)}
    else:
        layout = {int(k): int(v) for k, v in initial_layout.items()}
        if len(set(layout.values())) != len(layout):
            raise TranspileError("initial layout maps two logical qubits to one site")
    start_layout = dict(layout)

    physical_of = layout  # logical -> physical
    logical_of = {p: l for l, p in layout.items()}  # physical -> logical

    routed = QuantumCircuit(topology.num_qubits, name=circuit.name)
    swaps = 0

    def apply_swap(phys_a: int, phys_b: int) -> None:
        nonlocal swaps
        routed.append(SwapGate(), (phys_a, phys_b))
        swaps += 1
        la, lb = logical_of.get(phys_a), logical_of.get(phys_b)
        if la is not None:
            physical_of[la] = phys_b
        if lb is not None:
            physical_of[lb] = phys_a
        logical_of[phys_a], logical_of[phys_b] = lb, la

    for inst in circuit:
        phys = [physical_of[q] for q in inst.qubits]
        if len(phys) == 2 and not topology.are_adjacent(*phys):
            path = topology.shortest_path(phys[0], phys[1])
            # Walk the first operand down the path until adjacent.
            for hop in path[1:-1]:
                apply_swap(physical_of[inst.qubits[0]], hop)
            phys = [physical_of[q] for q in inst.qubits]
        elif len(phys) > 2:
            raise TranspileError("router only supports 1- and 2-qubit gates")
        routed.append(inst.gate, tuple(phys))

    return RoutingResult(
        circuit=routed,
        initial_layout=start_layout,
        final_layout=dict(physical_of),
        swap_count=swaps,
    )


def sabre_route(
    circuit: QuantumCircuit,
    topology: Topology,
    initial_layout: Mapping[int, int] | None = None,
    lookahead: int = 20,
    lookahead_weight: float = 0.5,
) -> RoutingResult:
    """SWAP-insertion routing with a SABRE-style lookahead heuristic.

    Instead of greedily walking each blocked gate along one shortest path,
    the router keeps the dataflow front layer and, when no front gate is
    executable, applies the candidate SWAP minimizing

        ``H = Σ_front dist(gate) + w · Σ_window dist(gate) / |window|``

    where the window holds the next ``lookahead`` two-qubit gates in
    program order.  A per-qubit decay factor discourages ping-ponging the
    same qubits.  Falls back to identical semantics as
    :func:`route_circuit`: same result type, SWAPs as native gates.
    """
    if circuit.num_qubits > topology.num_qubits:
        raise TranspileError(
            f"circuit width {circuit.num_qubits} exceeds device size "
            f"{topology.num_qubits}"
        )
    if initial_layout is None:
        layout = {q: q for q in range(circuit.num_qubits)}
    else:
        layout = {int(k): int(v) for k, v in initial_layout.items()}
        if len(set(layout.values())) != len(layout):
            raise TranspileError("initial layout maps two logical qubits to one site")
    start_layout = dict(layout)

    instructions = list(circuit)
    # Dataflow DAG over shared qubits: pred_count + per-qubit successor chain.
    pred_count = [0] * len(instructions)
    successors: list = [[] for _ in instructions]
    last_on_qubit: dict = {}
    for index, inst in enumerate(instructions):
        for q in inst.qubits:
            if q in last_on_qubit:
                successors[last_on_qubit[q]].append(index)
                pred_count[index] += 1
            last_on_qubit[q] = index
    two_qubit_order = [
        i for i, inst in enumerate(instructions) if len(inst.qubits) == 2
    ]

    physical_of = layout
    logical_of = {p: l for l, p in layout.items()}
    routed = QuantumCircuit(topology.num_qubits, name=circuit.name)
    swaps = 0
    done = [False] * len(instructions)
    front = [i for i in range(len(instructions)) if pred_count[i] == 0]
    decay = {p: 1.0 for p in range(topology.num_qubits)}

    def emit(index: int) -> None:
        inst = instructions[index]
        routed.append(inst.gate, tuple(physical_of[q] for q in inst.qubits))
        done[index] = True

    def apply_swap(phys_a: int, phys_b: int) -> None:
        nonlocal swaps
        routed.append(SwapGate(), (phys_a, phys_b))
        swaps += 1
        la, lb = logical_of.get(phys_a), logical_of.get(phys_b)
        if la is not None:
            physical_of[la] = phys_b
        if lb is not None:
            physical_of[lb] = phys_a
        logical_of[phys_a], logical_of[phys_b] = lb, la
        decay[phys_a] += 0.1
        decay[phys_b] += 0.1

    def gate_distance(index: int) -> int:
        a, b = instructions[index].qubits
        return topology.distance(physical_of[a], physical_of[b])

    guard = 0
    max_swaps = 10 * (len(instructions) + 1) * max(topology.num_qubits, 1)
    while front:
        progressed = False
        for index in list(front):
            inst = instructions[index]
            if len(inst.qubits) > 2:
                raise TranspileError("router only supports 1- and 2-qubit gates")
            if len(inst.qubits) == 1 or gate_distance(index) == 1:
                emit(index)
                front.remove(index)
                for succ in successors[index]:
                    pred_count[succ] -= 1
                    if pred_count[succ] == 0:
                        front.append(succ)
                progressed = True
        if progressed:
            decay = {p: 1.0 for p in decay}
            continue

        # Blocked: every front gate is a distant two-qubit gate.
        blocked = [i for i in front if len(instructions[i].qubits) == 2]
        window = [
            i
            for i in two_qubit_order
            if not done[i] and i not in front
        ][:lookahead]
        candidates = set()
        for index in blocked:
            for q in instructions[index].qubits:
                p = physical_of[q]
                for neighbor in topology.neighbors(p):
                    candidates.add(tuple(sorted((p, neighbor))))

        def score(swap: tuple) -> tuple:
            a, b = swap
            # Tentatively apply the swap to a local view of the layout.
            override = {}
            la, lb = logical_of.get(a), logical_of.get(b)
            if la is not None:
                override[la] = b
            if lb is not None:
                override[lb] = a

            def dist(index: int) -> int:
                qa, qb = instructions[index].qubits
                pa = override.get(qa, physical_of[qa])
                pb = override.get(qb, physical_of[qb])
                return topology.distance(pa, pb)

            h = sum(dist(i) for i in blocked)
            if window:
                h += lookahead_weight * sum(dist(i) for i in window) / len(window)
            return (max(decay[a], decay[b]) * h, swap)

        best_score, best_swap = min(score(s) for s in candidates)
        apply_swap(*best_swap)
        guard += 1
        if guard > max_swaps:
            raise TranspileError("sabre routing failed to make progress")

    return RoutingResult(
        circuit=routed,
        initial_layout=start_layout,
        final_layout=dict(physical_of),
        swap_count=swaps,
    )
