"""Decomposition into the compilation basis gate set.

The paper's compiler basis is ``{Rz, Rx, H, CX, SWAP}`` (Table 1).  Every
other library gate is rewritten into it here.  Rewrites are symbolic-safe:
a parameterized ``Rzz(θ)`` becomes ``CX · Rz(θ) · CX`` with the expression
``θ`` intact, so the parameter tag survives decomposition.
"""

from __future__ import annotations

import math

from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.circuits.gates import CXGate, HGate, RXGate, RZGate, SwapGate
from repro.errors import TranspileError

#: The compilation basis of the paper (Table 1).
BASIS_GATES = frozenset({"rz", "rx", "h", "cx", "swap"})

_HALF_PI = math.pi / 2


def _rewrite(inst: Instruction) -> list:
    """Rewrite one instruction into basis instructions (circuit order)."""
    gate, qubits = inst.gate, inst.qubits
    name = gate.name
    if name in BASIS_GATES:
        return [inst]
    if name == "id":
        return []
    a = qubits[0]
    if name == "x":
        return [Instruction(RXGate(math.pi), (a,))]
    if name == "y":
        # Y = i · Rz(π) Rx(π): apply Rx first, then Rz.
        return [Instruction(RXGate(math.pi), (a,)), Instruction(RZGate(math.pi), (a,))]
    if name == "z":
        return [Instruction(RZGate(math.pi), (a,))]
    if name == "s":
        return [Instruction(RZGate(_HALF_PI), (a,))]
    if name == "sdg":
        return [Instruction(RZGate(-_HALF_PI), (a,))]
    if name == "t":
        return [Instruction(RZGate(math.pi / 4), (a,))]
    if name == "tdg":
        return [Instruction(RZGate(-math.pi / 4), (a,))]
    if name == "ry":
        # Ry(θ) = Rz(π/2) · Rx(θ) · Rz(-π/2) as matrices; circuit order is
        # rightmost matrix first.
        theta = gate.params[0]
        return [
            Instruction(RZGate(-_HALF_PI), (a,)),
            Instruction(RXGate(theta), (a,)),
            Instruction(RZGate(_HALF_PI), (a,)),
        ]
    if name == "cz":
        b = qubits[1]
        return [
            Instruction(HGate(), (b,)),
            Instruction(CXGate(), (a, b)),
            Instruction(HGate(), (b,)),
        ]
    if name == "rzz":
        b = qubits[1]
        theta = gate.params[0]
        return [
            Instruction(CXGate(), (a, b)),
            Instruction(RZGate(theta), (b,)),
            Instruction(CXGate(), (a, b)),
        ]
    if name == "iswap":
        # iSWAP = H_b · CX_ba · CX_ab · H_a · (S ⊗ S) as matrices, i.e.
        # circuit order S, S, H_a, CX(a,b), CX(b,a), H_b (up to global phase).
        b = qubits[1]
        return [
            Instruction(RZGate(_HALF_PI), (a,)),
            Instruction(RZGate(_HALF_PI), (b,)),
            Instruction(HGate(), (a,)),
            Instruction(CXGate(), (a, b)),
            Instruction(CXGate(), (b, a)),
            Instruction(HGate(), (b,)),
        ]
    if name == "iswap_dg":
        # iSWAP† = (S† ⊗ S†) · iSWAP · (S† ⊗ S†); the leading S† pair cancels
        # the S pair of the iSWAP expansion.
        b = qubits[1]
        return [
            Instruction(HGate(), (a,)),
            Instruction(CXGate(), (a, b)),
            Instruction(CXGate(), (b, a)),
            Instruction(HGate(), (b,)),
            Instruction(RZGate(-_HALF_PI), (a,)),
            Instruction(RZGate(-_HALF_PI), (b,)),
        ]
    raise TranspileError(f"no basis decomposition for gate {name!r}")


def decompose_to_basis(circuit: QuantumCircuit, expand_swap: bool = False) -> QuantumCircuit:
    """Rewrite ``circuit`` into the {Rz, Rx, H, CX, SWAP} basis.

    With ``expand_swap=True``, SWAP gates are further expanded into three CX
    gates (useful when a backend lacks a native SWAP pulse).
    """
    out = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    for inst in circuit:
        for new in _rewrite(inst):
            if expand_swap and new.gate.name == "swap":
                a, b = new.qubits
                out.append(CXGate(), (a, b))
                out.append(CXGate(), (b, a))
                out.append(CXGate(), (a, b))
            else:
                out.append(new.gate, new.qubits)
    return out
