"""Pass manager and the default transpilation pipeline.

The default pipeline reproduces the paper's baseline preparation (section 4):
decompose to the Table-1 basis, optimize (rotation merging + inverse
cancellation), rewrite parameter-dependent Rx into H·Rz·H so that every
parametrized gate is an Rz(θᵢ), route to the device topology, then optimize
once more to clean up around inserted SWAPs.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.circuits.circuit import QuantumCircuit
from repro.transpile.basis import decompose_to_basis
from repro.transpile.commute import commuting_rotation_merge
from repro.transpile.optimize import (
    cancel_adjacent_inverses,
    merge_rotations,
    optimize_circuit,
    parametrized_rx_to_rz,
    remove_zero_rotations,
)
from repro.transpile.routing import route_circuit
from repro.transpile.topology import Topology

Pass = Callable[[QuantumCircuit], QuantumCircuit]


class PassManager:
    """An ordered list of circuit→circuit passes."""

    def __init__(self, passes: Iterable[Pass] = ()):
        self.passes: list[Pass] = list(passes)

    def append(self, pass_: Pass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def run(self, circuit: QuantumCircuit) -> QuantumCircuit:
        for pass_ in self.passes:
            circuit = pass_(circuit)
        return circuit


def default_pass_manager(
    topology: Topology | None = None,
    rz_only_parameters: bool = True,
    resynthesize: bool = False,
) -> PassManager:
    """The standard benchmark pipeline.

    Parameters
    ----------
    topology:
        If given, the circuit is routed to it (SWAP insertion).
    rz_only_parameters:
        Rewrite parameter-dependent Rx gates into H·Rz·H (paper's model
        where every parametrized gate is an Rz).
    resynthesize:
        Additionally collapse two-qubit runs to ≤3-CX implementations via
        the KAK decomposition.  Off by default so the gate-based baselines
        stay calibrated to the paper's Qiskit pipeline; turn it on to
        study how much of GRAPE's advantage a stronger gate-level
        optimizer can recover (see ``benchmarks/bench_ablation_resynthesis``).
    """
    manager = PassManager()
    manager.append(decompose_to_basis)
    manager.append(optimize_circuit)
    manager.append(commuting_rotation_merge)
    manager.append(remove_zero_rotations)
    if rz_only_parameters:
        manager.append(parametrized_rx_to_rz)
        manager.append(optimize_circuit)
    if resynthesize:
        from repro.transpile.resynth import resynthesize_two_qubit_runs

        manager.append(resynthesize_two_qubit_runs)
        manager.append(decompose_to_basis)
        manager.append(optimize_circuit)
    if topology is not None:
        manager.append(lambda qc: route_circuit(qc, topology).circuit)
        # Inserted SWAPs can expose new cancellations.
        manager.append(cancel_adjacent_inverses)
        manager.append(merge_rotations)
        manager.append(remove_zero_rotations)
    return manager


def transpile(
    circuit: QuantumCircuit,
    topology: Topology | None = None,
    rz_only_parameters: bool = True,
    resynthesize: bool = False,
) -> QuantumCircuit:
    """Run the default pipeline over ``circuit``."""
    return default_pass_manager(topology, rz_only_parameters, resynthesize).run(circuit)
