"""Circuit transpilation: basis decomposition, optimization, routing,
scheduling.

Mirrors the paper's gate-based compilation pipeline (section 4.1): circuits
are "optimized, parallel-scheduled, mapped using IBM Qiskit's tools,
augmented by an additional optimization pass ... to merge consecutive
rotation gates".  Here every stage is implemented from scratch.
"""

from repro.transpile.topology import (
    Topology,
    full_topology,
    grid_topology,
    heavy_hex_topology,
    line_topology,
    nearly_square_grid,
    ring_topology,
)
from repro.transpile.basis import decompose_to_basis, BASIS_GATES
from repro.transpile.optimize import (
    cancel_adjacent_inverses,
    merge_rotations,
    optimize_circuit,
    parametrized_rx_to_rz,
    remove_zero_rotations,
)
from repro.transpile.commute import commuting_rotation_merge
from repro.transpile.routing import RoutingResult, route_circuit, sabre_route
from repro.transpile.schedule import Schedule, ScheduledInstruction, asap_schedule
from repro.transpile.passes import PassManager, default_pass_manager, transpile
from repro.transpile.kak import (
    KAKDecomposition,
    canonical_matrix,
    cx_count_for_coordinates,
    kak_decompose,
    makhlin_invariants,
    weyl_coordinates,
)
from repro.transpile.resynth import (
    canonical_gate_circuit,
    resynthesize_two_qubit_runs,
    two_qubit_circuit,
)

__all__ = [
    "nearly_square_grid",
    "ring_topology",
    "heavy_hex_topology",
    "sabre_route",
    "RoutingResult",
    "weyl_coordinates",
    "two_qubit_circuit",
    "resynthesize_two_qubit_runs",
    "makhlin_invariants",
    "kak_decompose",
    "cx_count_for_coordinates",
    "canonical_matrix",
    "canonical_gate_circuit",
    "KAKDecomposition",
    "BASIS_GATES",
    "PassManager",
    "Schedule",
    "ScheduledInstruction",
    "Topology",
    "asap_schedule",
    "cancel_adjacent_inverses",
    "commuting_rotation_merge",
    "decompose_to_basis",
    "default_pass_manager",
    "full_topology",
    "grid_topology",
    "line_topology",
    "merge_rotations",
    "optimize_circuit",
    "parametrized_rx_to_rz",
    "remove_zero_rotations",
    "route_circuit",
    "transpile",
]
