"""FleetAutoscaler — queue-depth-driven worker scaling.

Fleet milestone 2's third leg: instead of keeping a fixed
``REPRO_FLEET_WORKERS`` process count alive, the dispatcher samples the
queue and sizes its local worker pool between a floor and a ceiling.

The policy is deliberately boring (hysteresis, not prediction):

* **Scale up** when the backlog (pending + leased jobs) has exceeded the
  live worker count for ``backlog_streak`` consecutive samples — a
  momentary spike rides on the existing pool; a *sustained* backlog earns
  a new worker, one per decision, up to ``max_workers``.
* **Scale down** by attrition: surge workers (everything above
  ``min_workers``) are spawned with an idle-exit deadline, so when the
  queue empties they terminate themselves; the autoscaler merely reaps
  the exited processes and counts the shrink.  Core workers (the first
  ``min_workers``) have no idle exit and are respawned if they die.

Scaling decisions are rate-limited to one per ``interval_s`` so a poll
loop can call :meth:`maybe_sample` as often as it likes.  The spawn and
depth probes are injectable, which keeps the policy unit-testable without
real processes; counters surface in ``stats()["fleet"]["autoscaler"]``.
"""

from __future__ import annotations

import time

from repro.errors import ReproError


class FleetAutoscaler:
    """Size a local worker pool from sampled queue depth.

    Parameters
    ----------
    queue_depth:
        ``() -> int`` returning the current backlog (pending + leased
        jobs visible in the fleet directory).
    spawn_worker:
        ``(idle_exit_s | None) -> handle`` starting one worker process;
        the handle must expose ``poll()`` (``None`` while alive), as
        :class:`subprocess.Popen` does.
    min_workers / max_workers:
        The pool's floor (core workers, kept alive) and ceiling.
    backlog_streak:
        How many consecutive backlogged samples trigger one scale-up.
    interval_s:
        Minimum spacing between scaling decisions.
    surge_idle_exit_s:
        The idle-exit deadline given to surge workers — the scale-down
        mechanism.  Core workers never get one.
    clock:
        Injectable time source (tests); defaults to ``time.monotonic``.
    """

    def __init__(
        self,
        queue_depth,
        spawn_worker,
        min_workers: int = 0,
        max_workers: int = 4,
        backlog_streak: int = 3,
        interval_s: float = 1.0,
        surge_idle_exit_s: float = 5.0,
        clock=time.monotonic,
    ):
        if min_workers < 0:
            raise ReproError(f"min_workers must be >= 0, got {min_workers}")
        if max_workers < 1:
            raise ReproError(f"max_workers must be >= 1, got {max_workers}")
        if min_workers > max_workers:
            raise ReproError(
                f"min_workers ({min_workers}) must not exceed "
                f"max_workers ({max_workers})"
            )
        if backlog_streak < 1:
            raise ReproError(
                f"backlog_streak must be >= 1, got {backlog_streak}"
            )
        self._queue_depth = queue_depth
        self._spawn = spawn_worker
        self.min_workers = int(min_workers)
        self.max_workers = int(max_workers)
        self.backlog_streak = int(backlog_streak)
        self.interval_s = float(interval_s)
        self.surge_idle_exit_s = float(surge_idle_exit_s)
        self._clock = clock
        self._core: list = []
        self._surge: list = []
        self._streak = 0
        self._last_decision: float | None = None
        self.samples = 0
        self.scale_ups = 0
        self.scale_downs = 0
        self.core_respawns = 0
        self.peak_workers = 0
        self.last_depth = 0

    # -- pool state --------------------------------------------------------
    def _reap(self) -> None:
        """Drop exited handles; surge exits count as scale-downs, dead
        core workers are respawned (they have no reason to exit)."""
        self._surge, exited = (
            [p for p in self._surge if p.poll() is None],
            [p for p in self._surge if p.poll() is not None],
        )
        self.scale_downs += len(exited)
        dead_core = [p for p in self._core if p.poll() is not None]
        self._core = [p for p in self._core if p.poll() is None]
        for _ in dead_core:
            self.core_respawns += 1
            self._core.append(self._spawn(None))

    def live_workers(self) -> int:
        """Current pool size (core + surge), after reaping."""
        self._reap()
        return len(self._core) + len(self._surge)

    def processes(self) -> list:
        """Every live handle (for the dispatcher's close())."""
        return list(self._core) + list(self._surge)

    # -- policy ------------------------------------------------------------
    def ensure_floor(self) -> None:
        """Bring the core pool up to ``min_workers`` (no sampling)."""
        self._reap()
        while len(self._core) < self.min_workers:
            self._core.append(self._spawn(None))
        self.peak_workers = max(
            self.peak_workers, len(self._core) + len(self._surge)
        )

    def sample(self) -> None:
        """One scaling decision from the current queue depth."""
        self.samples += 1
        self.ensure_floor()
        depth = int(self._queue_depth())
        self.last_depth = depth
        live = len(self._core) + len(self._surge)
        if depth > live:
            self._streak += 1
        else:
            self._streak = 0
        if self._streak >= self.backlog_streak and live < self.max_workers:
            self._surge.append(self._spawn(self.surge_idle_exit_s))
            self.scale_ups += 1
            self._streak = 0
            self.peak_workers = max(self.peak_workers, live + 1)

    def maybe_sample(self) -> bool:
        """Rate-limited :meth:`sample`; returns whether one ran."""
        now = self._clock()
        if (
            self._last_decision is not None
            and now - self._last_decision < self.interval_s
        ):
            return False
        self._last_decision = now
        self.sample()
        return True

    # -- telemetry ---------------------------------------------------------
    def describe(self) -> dict:
        return {
            "min_workers": self.min_workers,
            "max_workers": self.max_workers,
            "core_workers": len(self._core),
            "surge_workers": len(self._surge),
            "samples": self.samples,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "core_respawns": self.core_respawns,
            "peak_workers": self.peak_workers,
            "last_depth": self.last_depth,
            "backlog_streak": self.backlog_streak,
            "interval_s": self.interval_s,
            "surge_idle_exit_s": self.surge_idle_exit_s,
        }
