"""File-backed work queue with lease/heartbeat crash reclaim.

The fleet's coordination layer is a directory, not a broker: producers
atomically drop pickled :class:`~repro.pipeline.jobs.BlockJob` files into
``jobs/``, workers claim them by writing a lease into ``leases/`` under
the queue's :class:`~repro.library.locking.FileLock`, and finished work
comes back as JSON completion records in ``results/``.  Everything is
plain files with atomic writes (temp + ``os.replace``), so any process —
or several processes on hosts sharing the directory — can participate
with no daemon in between.

Crash safety is lease-based, in the style of filesystem work queues: a
claim is a lease with a TTL, renewed by the worker's heartbeat while it
compiles.  A worker that died holding a lease stops heartbeating, the
lease goes stale after the TTL (or immediately, when the lease's pid is
provably dead on this host), and the next ``claim`` hands the job to
someone else with the lease's ``reclaims`` count bumped.  Delivery is
therefore *at least once* — which is safe here by construction: GRAPE is
deterministic for a given job, and both the pulse-library write and the
completion record are atomic and idempotent, so a reclaimed job merely
recomputes the same pulse.

Layout under the queue directory::

    queue.lock        the claim/complete critical-section lock
    jobs/<id>.job     pickled {"schema_version": 1, "job": BlockJob}
    leases/<id>.json  worker, pid, host, acquired_at, heartbeat_at, ttl_s
    results/<id>.json completion record (encoded outcome or error)
    workers/<id>.json per-worker liveness heartbeat (for ``fleet status``)
"""

from __future__ import annotations

import json
import os
import pickle
import platform
import threading
import time
from contextlib import contextmanager
from pathlib import Path

from repro.library.locking import FileLock

#: Bump when the on-disk job payload or record layout changes; workers
#: refuse (error-complete) jobs whose schema they do not speak.
FLEET_SCHEMA_VERSION = 1


def _write_json_atomic(path: Path, payload: dict) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload))
    os.replace(tmp, path)


def _read_json(path: Path) -> dict | None:
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for a pid on *this* host."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (OSError, PermissionError):
        # Exists but owned by someone else (or an exotic platform error):
        # assume alive and let the TTL decide.
        return True
    return True


class FleetQueue:
    """One fleet coordination directory: enqueue, claim, complete.

    Safe to share between threads of one process (an internal mutex
    serializes use of the non-reentrant file lock) and between processes
    (the file lock serializes the claim/complete critical sections).
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        lease_ttl_s: float = 30.0,
        host_label: str | None = None,
    ):
        self.directory = Path(directory)
        self.lease_ttl_s = float(lease_ttl_s)
        # The host name written into leases and worker heartbeats.  A
        # ``host_label`` override simulates a distinct host on one box
        # (CI's multi-host mode): it also disables the same-host dead-pid
        # probe, so reclaim runs on real TTL semantics — exactly what a
        # genuinely remote host would experience.
        self.host = host_label or platform.node()
        self._host_is_real = host_label is None
        self.jobs_dir = self.directory / "jobs"
        self.leases_dir = self.directory / "leases"
        self.results_dir = self.directory / "results"
        self.workers_dir = self.directory / "workers"
        for sub in (
            self.jobs_dir,
            self.leases_dir,
            self.results_dir,
            self.workers_dir,
        ):
            sub.mkdir(parents=True, exist_ok=True)
        self._file_lock = FileLock(self.directory / "queue.lock")
        self._mutex = threading.Lock()
        self._seq = 0

    @contextmanager
    def _locked(self):
        # The FileLock is not thread-safe (one fd slot per object); the
        # mutex keeps a worker's heartbeat thread from racing its claim
        # loop, and the flock keeps other processes out.
        with self._mutex:
            with self._file_lock:
                yield

    # -- producer side -----------------------------------------------------
    def enqueue(self, job) -> str:
        """Durably add one job; returns its queue id.

        Ids sort by enqueue time (ns timestamp first), so ``claim`` hands
        out work roughly first-in-first-out.
        """
        with self._mutex:
            self._seq += 1
            seq = self._seq
        job_id = f"{time.time_ns():020d}-{os.getpid()}-{seq:04d}"
        payload = pickle.dumps(
            {"schema_version": FLEET_SCHEMA_VERSION, "job": job},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        path = self.jobs_dir / f"{job_id}.job"
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_bytes(payload)
        os.replace(tmp, path)
        return job_id

    def consume_result(self, job_id: str) -> dict | None:
        """Claim-and-remove one completion record, or ``None`` if not done."""
        path = self.results_dir / f"{job_id}.json"
        with self._locked():
            record = _read_json(path)
            if record is None:
                return None
            try:
                path.unlink()
            except OSError:
                pass
            return record

    # -- worker side -------------------------------------------------------
    def _lease_stale(self, lease: dict) -> bool:
        """Whether a lease's worker should be presumed dead.

        A lease from a pid on *this* host that no longer exists is stale
        immediately (the ``kill -9`` case); otherwise the worker gets the
        full TTL since its last heartbeat before anyone steals its job.
        The pid probe only applies between real hostnames — under a
        ``host_label`` override pids are not comparable, so staleness
        falls back to pure TTL (the cross-host rule).
        """
        if (
            self._host_is_real
            and lease.get("host") == self.host
            and isinstance(lease.get("pid"), int)
            and not _pid_alive(lease["pid"])
        ):
            return True
        heartbeat = lease.get("heartbeat_at") or lease.get("acquired_at") or 0.0
        ttl = lease.get("ttl_s") or self.lease_ttl_s
        return (time.time() - heartbeat) > ttl

    def claim(self, worker_id: str):
        """Lease the oldest claimable job: ``(job_id, job)`` or ``None``.

        Claimable means no lease, or a lease gone stale (see
        :meth:`_lease_stale`).  An unreadable job payload is completed
        with an error record on the spot so it cannot wedge the queue.
        """
        with self._locked():
            for path in sorted(self.jobs_dir.glob("*.job")):
                job_id = path.stem
                if (self.results_dir / f"{job_id}.json").exists():
                    # A completer crashed between its record write and the
                    # job-file removal: finish the retirement, don't redo
                    # the work.
                    for leftover in (path, self.leases_dir / f"{job_id}.json"):
                        try:
                            leftover.unlink()
                        except OSError:
                            pass
                    continue
                lease_path = self.leases_dir / f"{job_id}.json"
                lease = _read_json(lease_path)
                reclaims = 0
                if lease is not None:
                    if not self._lease_stale(lease):
                        continue
                    reclaims = int(lease.get("reclaims", 0)) + 1
                try:
                    payload = pickle.loads(path.read_bytes())
                    if payload.get("schema_version") != FLEET_SCHEMA_VERSION:
                        raise ValueError(
                            f"job {job_id} has schema "
                            f"{payload.get('schema_version')!r}; this worker "
                            f"speaks {FLEET_SCHEMA_VERSION}"
                        )
                    job = payload["job"]
                except Exception as exc:  # noqa: BLE001 - poison-pill guard
                    self._complete_locked(
                        job_id,
                        {
                            "job_id": job_id,
                            "worker": worker_id,
                            "outcome": None,
                            "error": f"unreadable job payload: {exc!r}",
                            "wall_time_s": 0.0,
                            "reclaims": reclaims,
                        },
                    )
                    continue
                now = time.time()
                _write_json_atomic(
                    lease_path,
                    {
                        "job_id": job_id,
                        "worker": worker_id,
                        "pid": os.getpid(),
                        "host": self.host,
                        "acquired_at": now,
                        "heartbeat_at": now,
                        "ttl_s": self.lease_ttl_s,
                        "reclaims": reclaims,
                    },
                )
                return job_id, job
        return None

    def heartbeat(self, job_id: str) -> None:
        """Refresh a held lease's heartbeat timestamp."""
        path = self.leases_dir / f"{job_id}.json"
        with self._locked():
            lease = _read_json(path)
            if lease is None:
                return
            lease["heartbeat_at"] = time.time()
            _write_json_atomic(path, lease)

    def _complete_locked(self, job_id: str, record: dict) -> None:
        _write_json_atomic(self.results_dir / f"{job_id}.json", record)
        for leftover in (
            self.jobs_dir / f"{job_id}.job",
            self.leases_dir / f"{job_id}.json",
        ):
            try:
                leftover.unlink()
            except OSError:
                pass

    def complete(self, job_id: str, record: dict) -> None:
        """Publish a completion record and retire the job + lease.

        The record lands before the job file disappears, so a crash
        between the two leaves a completed job that a later ``claim``
        skips-and-retires rather than a lost result.
        """
        with self._locked():
            self._complete_locked(job_id, record)

    def write_worker_heartbeat(
        self, worker_id: str, state: str, jobs_done: int, extra: dict | None = None
    ) -> None:
        """Publish one worker's liveness for ``fleet status``.

        ``extra`` carries the worker's ``--announce`` registration fields
        (start time, knobs, capabilities); it rides along on every beat
        so the record survives the atomic rewrite.
        """
        record = {
            "worker": worker_id,
            "pid": os.getpid(),
            "host": self.host,
            "updated_at": time.time(),
            "state": state,
            "jobs_done": jobs_done,
        }
        if extra:
            record.update(extra)
        _write_json_atomic(self.workers_dir / f"{worker_id}.json", record)

    # -- observability -----------------------------------------------------
    def status(self) -> dict:
        """A point-in-time snapshot: depth, leases, results, workers.

        Host-aware: every lease and worker entry carries its ``host``,
        and ``hosts`` aggregates them per machine sharing the directory —
        the view ``fleet status`` renders and the autoscaler samples.
        """
        now = time.time()
        pending = sorted(p.stem for p in self.jobs_dir.glob("*.job"))
        leases = []
        for path in sorted(self.leases_dir.glob("*.json")):
            lease = _read_json(path)
            if lease is None:
                continue
            heartbeat = lease.get("heartbeat_at") or lease.get("acquired_at")
            leases.append(
                {
                    "job_id": lease.get("job_id", path.stem),
                    "worker": lease.get("worker"),
                    "host": lease.get("host"),
                    "age_s": round(now - (lease.get("acquired_at") or now), 3),
                    "heartbeat_age_s": round(now - (heartbeat or now), 3),
                    "reclaims": lease.get("reclaims", 0),
                    "stale": self._lease_stale(lease),
                }
            )
        workers = []
        for path in sorted(self.workers_dir.glob("*.json")):
            info = _read_json(path)
            if info is None:
                continue
            entry = {
                "worker": info.get("worker", path.stem),
                "pid": info.get("pid"),
                "host": info.get("host"),
                "state": info.get("state"),
                "jobs_done": info.get("jobs_done", 0),
                "heartbeat_age_s": round(
                    now - (info.get("updated_at") or now), 3
                ),
            }
            if info.get("announced"):
                entry["announced"] = {
                    key: info[key]
                    for key in (
                        "started_at",
                        "lease_ttl_s",
                        "heartbeat_s",
                        "cache_dir",
                        "version",
                    )
                    if key in info
                }
            workers.append(entry)
        hosts: dict = {}
        for entry in workers:
            host = entry.get("host") or "?"
            group = hosts.setdefault(
                host,
                {"workers": 0, "active": 0, "jobs_done": 0, "leases": 0},
            )
            group["workers"] += 1
            if entry.get("state") != "exited":
                group["active"] += 1
            group["jobs_done"] += entry.get("jobs_done") or 0
        for entry in leases:
            host = entry.get("host") or "?"
            group = hosts.setdefault(
                host,
                {"workers": 0, "active": 0, "jobs_done": 0, "leases": 0},
            )
            group["leases"] += 1
        return {
            "directory": str(self.directory),
            "pending_jobs": len(pending),
            "leased_jobs": len(leases),
            "completed_results": len(list(self.results_dir.glob("*.json"))),
            "leases": leases,
            "workers": workers,
            "hosts": hosts,
        }
