"""QueueDispatcher — the fleet-backed implementation of the dispatch contract.

Where the in-process executors run :class:`~repro.pipeline.jobs.BlockJob`
descriptors through their own ``map``, this dispatcher enqueues them on a
:class:`~repro.fleet.queue.FleetQueue` and lets detached worker processes
(``python -m repro worker``) compile them.  Workers are spawned lazily on
the first dispatch and revived if they die; pulses come back through the
shared pulse library (each job is stamped with the dispatcher's
``cache_dir`` before enqueueing) and through the completion record's
encoded outcome, which round-trips bit-identically.

Worker processes are launched with an explicit ``sys.path`` bootstrap
rather than environment surgery — configuration enters this package only
through constructor arguments, in keeping with the repo's single-reader
environment rule (:mod:`repro.service.config`).

With ``workers=0`` and nothing else draining the queue directory, jobs
run inline in the calling process — the dispatcher stays usable in
one-process tests and as a degraded mode when spawning is undesirable.
"""

from __future__ import annotations

import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.errors import PipelineError
from repro.fleet.queue import FleetQueue
from repro.pipeline.executors import BlockExecutor
from repro.pipeline.jobs import _decode_outcome, run_block_job

#: ``python -c`` shim that puts this checkout's ``src`` on ``sys.path``
#: (first argv entry) and hands the rest to the repro CLI.
_WORKER_BOOTSTRAP = (
    "import sys; sys.path.insert(0, sys.argv.pop(1)); "
    "from repro.cli import main; sys.exit(main(sys.argv[1:]))"
)

#: Worker crash-loop guard: revival attempts per dispatch call.
_MAX_RESPAWNS = 3


class QueueDispatcher(BlockExecutor):
    """Ship block jobs to a fleet of worker processes via the file queue."""

    name = "queue"
    #: ``map`` runs inline in the service process (parametrized handlers,
    #: plan entries), so the scheduler should not stack batched GRAPE work
    #: onto it, and service-side speculative probes buy nothing.
    prefers_batched = False
    speculation_helps = False

    def __init__(
        self,
        fleet_dir,
        cache_dir: str | None = None,
        workers: int = 0,
        lease_ttl_s: float = 30.0,
        heartbeat_s: float | None = None,
        poll_s: float = 0.05,
        job_timeout_s: float = 600.0,
        autoscale: bool = False,
        min_workers: int = 0,
        max_workers: int = 4,
        surge_idle_exit_s: float = 5.0,
    ):
        self.queue = FleetQueue(fleet_dir, lease_ttl_s=lease_ttl_s)
        self.cache_dir = str(cache_dir) if cache_dir else None
        self.workers = max(0, int(workers))
        self.heartbeat_s = heartbeat_s
        self.poll_s = float(poll_s)
        self.job_timeout_s = float(job_timeout_s)
        self._procs: list = []
        # Concurrent dispatch_jobs() calls (service submit-pool threads)
        # share the worker pool; the lock keeps them from over-spawning.
        self._procs_lock = threading.Lock()
        self.workers_spawned = 0
        self.respawns = 0
        self.dispatched_jobs = 0
        self.completed_jobs = 0
        self.inline_jobs = 0
        self.completions_by_worker: dict = {}
        # Autoscale mode replaces the fixed-count respawn loop: the
        # autoscaler owns the pool, sampling backlog once per interval
        # from inside the dispatch poll loop.
        self._autoscaler = None
        if autoscale:
            from repro.fleet.autoscaler import FleetAutoscaler

            self._autoscaler = FleetAutoscaler(
                queue_depth=self._backlog,
                spawn_worker=self._spawn_worker_process,
                min_workers=min_workers,
                max_workers=max_workers,
                surge_idle_exit_s=surge_idle_exit_s,
            )

    # -- worker lifecycle --------------------------------------------------
    def _backlog(self) -> int:
        """Incomplete jobs (pending + leased) — the autoscaler's signal.

        A job file persists until its completion record retires it, so
        counting ``jobs/`` covers both queued and in-flight work without
        the full ``status()`` scan.
        """
        return len(list(self.queue.jobs_dir.glob("*.job")))

    def _spawn_worker_process(self, idle_exit_s: float | None = None):
        """Start one detached worker; returns its process handle."""
        import repro

        src_root = Path(repro.__file__).resolve().parent.parent
        cmd = [
            sys.executable,
            "-c",
            _WORKER_BOOTSTRAP,
            str(src_root),
            "worker",
            "--fleet-dir",
            str(self.queue.directory),
            "--lease-ttl",
            str(self.queue.lease_ttl_s),
            "--poll",
            str(self.poll_s),
        ]
        if self.heartbeat_s is not None:
            cmd += ["--heartbeat", str(self.heartbeat_s)]
        if idle_exit_s is not None:
            cmd += ["--idle-exit", str(idle_exit_s)]
        if self.cache_dir:
            cmd += ["--cache-dir", self.cache_dir]
        proc = subprocess.Popen(cmd)
        self.workers_spawned += 1
        return proc

    def _spawn_worker(self) -> None:
        self._procs.append(self._spawn_worker_process())

    def _live_workers(self) -> int:
        with self._procs_lock:
            if self._autoscaler is not None:
                return self._autoscaler.live_workers()
            self._procs = [p for p in self._procs if p.poll() is None]
            return len(self._procs)

    def _ensure_workers(self) -> None:
        """Top the fleet back up to the configured worker count."""
        with self._procs_lock:
            if self._autoscaler is not None:
                self._autoscaler.ensure_floor()
                return
            self._procs = [p for p in self._procs if p.poll() is None]
            while len(self._procs) < self.workers:
                self._spawn_worker()

    def close(self) -> None:
        """Drain the fleet: SIGTERM each worker, then escalate to kill."""
        with self._procs_lock:
            procs, self._procs = self._procs, []
            if self._autoscaler is not None:
                procs += self._autoscaler.processes()
        for proc in procs:
            if proc.poll() is None:
                try:
                    proc.send_signal(signal.SIGTERM)
                except OSError:
                    pass
        for proc in procs:
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- dispatch ----------------------------------------------------------
    def map(self, fn, items) -> list:
        """Non-job work (parametrized handlers, plan entries) runs inline."""
        return [fn(item) for item in items]

    def dispatch_jobs(self, jobs: list, cache=None) -> list:
        """Enqueue every job and collect outcomes in input order.

        Jobs are stamped with the dispatcher's ``cache_dir`` so workers
        persist their pulses where the service reads.  ``cache`` (the
        caller's in-process pulse cache) is only used by the inline
        degraded mode — fleet workers open the shared library themselves.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        for job in jobs:
            if self.cache_dir and not job.cache_dir:
                job.cache_dir = self.cache_dir
        if (
            self._autoscaler is None
            and self.workers == 0
            and self._live_workers() == 0
        ):
            # Degraded one-process mode: nothing will drain the queue, so
            # compile here and skip the round-trip through the directory.
            # (Never taken with the autoscaler: it spawns on backlog.)
            self.inline_jobs += len(jobs)
            return [run_block_job(job, cache=cache) for job in jobs]
        self._ensure_workers()
        job_ids = [self.queue.enqueue(job) for job in jobs]
        self.dispatched_jobs += len(jobs)
        pending = dict.fromkeys(job_ids)
        outcomes: dict = {}
        respawns_left = _MAX_RESPAWNS
        deadline = time.monotonic() + self.job_timeout_s
        while pending:
            progressed = False
            for job_id in list(pending):
                record = self.queue.consume_result(job_id)
                if record is None:
                    continue
                del pending[job_id]
                progressed = True
                if record.get("error"):
                    raise PipelineError(
                        f"fleet worker {record.get('worker')} failed job "
                        f"{job_id}: {record['error']}"
                    )
                outcomes[job_id] = _decode_outcome(record["outcome"])
                self.completed_jobs += 1
                worker = record.get("worker") or "?"
                self.completions_by_worker[worker] = (
                    self.completions_by_worker.get(worker, 0) + 1
                )
            if progressed:
                deadline = time.monotonic() + self.job_timeout_s
                continue
            if self._autoscaler is not None:
                # The autoscaler owns the pool: one rate-limited backlog
                # sample per poll instead of fixed-count respawning.
                with self._procs_lock:
                    self._autoscaler.maybe_sample()
            elif self.workers > 0 and self._live_workers() < self.workers:
                if respawns_left <= 0:
                    raise PipelineError(
                        "fleet workers keep dying with "
                        f"{len(pending)} job(s) outstanding; "
                        f"queue: {self.queue.status()!r}"
                    )
                respawns_left -= 1
                self.respawns += 1
                self._ensure_workers()
            if time.monotonic() > deadline:
                raise PipelineError(
                    f"fleet made no progress for {self.job_timeout_s:.0f}s "
                    f"with {len(pending)} job(s) outstanding; "
                    f"queue: {self.queue.status()!r}"
                )
            time.sleep(self.poll_s)
        return [outcomes[job_id] for job_id in job_ids]

    def describe(self) -> dict:
        with self._procs_lock:
            autoscaler = (
                self._autoscaler.describe()
                if self._autoscaler is not None
                else None
            )
        status = self.queue.status()
        return {
            "executor": self.name,
            "fleet_dir": str(self.queue.directory),
            "workers": self.workers,
            "live_workers": self._live_workers(),
            "workers_spawned": self.workers_spawned,
            "respawns": self.respawns,
            "dispatched_jobs": self.dispatched_jobs,
            "completed_jobs": self.completed_jobs,
            "inline_jobs": self.inline_jobs,
            "completions_by_worker": dict(self.completions_by_worker),
            # The ``fleet`` section the service lifts into stats()["fleet"]
            # and the HTTP frontend serves under /v1/stats.
            "fleet": {
                "mode": "autoscale" if self._autoscaler is not None else "fixed",
                "directory": str(self.queue.directory),
                "pending_jobs": status["pending_jobs"],
                "leased_jobs": status["leased_jobs"],
                "hosts": status["hosts"],
                "live_workers": self._live_workers(),
                "workers_spawned": self.workers_spawned,
                "autoscaler": autoscaler,
            },
        }
