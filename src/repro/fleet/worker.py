"""The fleet worker loop: claim → compile → complete, forever.

``python -m repro worker --fleet-dir DIR`` runs one of these.  The loop
claims jobs off the :class:`~repro.fleet.queue.FleetQueue`, applies each
job's recorded preset (so preset-derived knobs like the time-search
precision resolve exactly as they would have in the producing process),
compiles it through the one true execution function
(:func:`repro.pipeline.jobs.run_block_job`), and publishes a completion
record.  Pulses persist through the shared library when the worker was
given a cache directory, and travel back inside the record either way.

Robustness contract (the fleet's satellite requirements):

* **SIGTERM / SIGINT drain** — the signal handler only sets a flag; the
  in-flight job finishes compiling and publishes its record before the
  loop exits cleanly.  Nothing is left mid-lease.
* **Crash reclaim** — while compiling, a daemon thread renews the job's
  lease every ``ttl/3`` seconds.  A worker that is ``kill -9``'d stops
  renewing, and the queue hands its lease to the next claimant (see
  :meth:`~repro.fleet.queue.FleetQueue._lease_stale`).
* **Poison pills** — a job that raises completes with an ``error``
  record instead of wedging the queue; the worker moves on.
"""

from __future__ import annotations

import os
import signal
import threading
import time

from repro.config import set_preset
from repro.fleet.queue import FleetQueue
from repro.pipeline.jobs import _encode_outcome, run_block_job


class FleetWorker:
    """One pull-loop worker over a fleet queue directory.

    Parameters
    ----------
    fleet_dir:
        The queue directory shared with the dispatcher and other workers.
    cache_dir:
        Optional shared pulse-library directory; jobs may also carry
        their own ``cache_dir``, which wins when present.
    lease_ttl_s / poll_s:
        Crash-reclaim TTL and the idle claim-poll interval.
    heartbeat_s:
        Lease-renewal interval while compiling.  ``None`` (default)
        derives ``lease_ttl_s / 3`` — three missed beats before the
        lease goes stale.  Must be shorter than ``lease_ttl_s``.
    max_jobs:
        Exit after completing this many jobs (``None`` = unbounded).
    idle_exit_s:
        Exit after this long with nothing claimable (``None`` = wait for
        a signal instead).
    worker_id:
        Stable identity for leases/heartbeats; defaults to host + pid.
    host_label:
        Override the hostname written into leases/heartbeats (simulated
        multi-host testing; see :class:`~repro.fleet.queue.FleetQueue`).
    announce:
        Publish a registration record (start time, knobs, capabilities)
        in the worker heartbeat, surfaced by ``fleet status``.
    """

    def __init__(
        self,
        fleet_dir,
        cache_dir: str | None = None,
        lease_ttl_s: float = 30.0,
        poll_s: float = 0.2,
        heartbeat_s: float | None = None,
        max_jobs: int | None = None,
        idle_exit_s: float | None = None,
        worker_id: str | None = None,
        host_label: str | None = None,
        announce: bool = False,
    ):
        from repro.errors import ReproError

        self.queue = FleetQueue(
            fleet_dir, lease_ttl_s=lease_ttl_s, host_label=host_label
        )
        self.cache_dir = cache_dir
        self.poll_s = float(poll_s)
        if heartbeat_s is not None and heartbeat_s >= float(lease_ttl_s):
            raise ReproError(
                f"heartbeat_s ({heartbeat_s}) must be shorter than "
                f"lease_ttl_s ({lease_ttl_s}) or every lease goes stale "
                "between beats"
            )
        self.heartbeat_s = (
            float(heartbeat_s)
            if heartbeat_s is not None
            else max(self.queue.lease_ttl_s / 3.0, 0.05)
        )
        self.max_jobs = max_jobs
        self.idle_exit_s = idle_exit_s
        self.worker_id = worker_id or f"{self.queue.host}-{os.getpid()}"
        self.jobs_done = 0
        self._drain = threading.Event()
        self._caches: dict = {}  # cache_dir (or None) -> shared cache
        self._announce: dict | None = None
        if announce:
            from repro import __version__

            self._announce = {
                "announced": True,
                "started_at": time.time(),
                "lease_ttl_s": self.queue.lease_ttl_s,
                "heartbeat_s": self.heartbeat_s,
                "cache_dir": cache_dir,
                "version": __version__,
            }

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to the drain flag (main thread only)."""
        signal.signal(signal.SIGTERM, self._on_signal)
        signal.signal(signal.SIGINT, self._on_signal)

    def _on_signal(self, signum, frame) -> None:
        # Only flip the flag: the claim loop observes it between jobs, so
        # the in-flight compilation always drains to a completion record.
        self._drain.set()

    def _cache_for(self, job):
        """The per-directory shared cache a job compiles against.

        One cache per distinct directory, kept for the worker's lifetime:
        repeat jobs against the same library reuse its loaded index
        instead of re-scanning the directory every claim.
        """
        directory = job.cache_dir or self.cache_dir
        if directory not in self._caches:
            from repro.core.cache import PersistentPulseCache, PulseCache

            self._caches[directory] = (
                PersistentPulseCache(directory) if directory else PulseCache()
            )
        return self._caches[directory]

    def _run_one(self, job_id: str, job) -> None:
        """Compile one claimed job and publish its completion record."""
        stop = threading.Event()
        interval = self.heartbeat_s

        def _renew():
            while not stop.wait(interval):
                self.queue.heartbeat(job_id)

        renewer = threading.Thread(
            target=_renew, name=f"lease-{job_id[:12]}", daemon=True
        )
        renewer.start()
        start = time.perf_counter()
        try:
            set_preset(job.preset)
            outcome = run_block_job(job, cache=self._cache_for(job))
            record = {
                "job_id": job_id,
                "worker": self.worker_id,
                "outcome": _encode_outcome(outcome),
                "error": None,
                "wall_time_s": round(time.perf_counter() - start, 6),
            }
        except Exception as exc:  # noqa: BLE001 - poison-pill guard
            record = {
                "job_id": job_id,
                "worker": self.worker_id,
                "outcome": None,
                "error": repr(exc),
                "wall_time_s": round(time.perf_counter() - start, 6),
            }
        finally:
            stop.set()
            renewer.join()
        self.queue.complete(job_id, record)
        self.jobs_done += 1

    def _beat(self, state: str) -> None:
        """One liveness heartbeat, carrying the announce record if any."""
        self.queue.write_worker_heartbeat(
            self.worker_id, state, self.jobs_done, extra=self._announce
        )

    def run(self) -> int:
        """The claim loop; returns a process exit code (0 = clean)."""
        self._beat("idle")
        idle_since = time.monotonic()
        while not self._drain.is_set():
            claimed = self.queue.claim(self.worker_id)
            if claimed is None:
                if (
                    self.idle_exit_s is not None
                    and time.monotonic() - idle_since >= self.idle_exit_s
                ):
                    break
                self._beat("idle")
                self._drain.wait(self.poll_s)
                continue
            job_id, job = claimed
            self._beat(f"compiling:{job_id}")
            self._run_one(job_id, job)
            idle_since = time.monotonic()
            if self.max_jobs is not None and self.jobs_done >= self.max_jobs:
                break
        self._beat("exited")
        return 0
