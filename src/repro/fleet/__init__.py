"""Multi-process compilation fleet: queue, workers, and their dispatcher.

The block-level parallelism of the paper's pulse compilation is
embarrassing — blocks share nothing but the pulse cache — so once
dispatch travels as serializable :class:`~repro.pipeline.jobs.BlockJob`
data (instead of closures), work can leave the service's address space
entirely.  This package is the venue for that:

* :mod:`repro.fleet.queue` — :class:`FleetQueue`, a file-backed work
  queue with lease/heartbeat crash reclaim built on the pulse library's
  advisory file locking.  At-least-once delivery, safe because jobs are
  deterministic and their effects idempotent.
* :mod:`repro.fleet.worker` — :class:`FleetWorker`, the pull loop behind
  ``python -m repro worker``: claim, compile, heartbeat, complete, with
  SIGTERM draining the in-flight job before exit.
* :mod:`repro.fleet.dispatcher` — :class:`QueueDispatcher`, the
  :class:`~repro.pipeline.executors.Dispatcher` implementation the
  service selects with ``REPRO_DISPATCHER=queue``: it spawns and revives
  ``REPRO_FLEET_WORKERS`` local workers and routes every fixed block
  through the queue.
* :mod:`repro.fleet.autoscaler` — :class:`FleetAutoscaler`, queue-depth
  worker scaling between ``REPRO_FLEET_MIN_WORKERS`` and
  ``REPRO_FLEET_MAX_WORKERS``: sustained backlog grows the pool, surge
  workers drain away on idle exit.

Milestone 1 was N workers on one machine splitting one batch's unique
blocks.  Milestone 2 (this PR) adds the network frontend
(:mod:`repro.server`), host-aware status over a shared directory (real
NFS, or ``host_label`` simulation in CI), and backlog-driven autoscaling.
"""

from repro.fleet.autoscaler import FleetAutoscaler
from repro.fleet.dispatcher import QueueDispatcher
from repro.fleet.queue import FLEET_SCHEMA_VERSION, FleetQueue
from repro.fleet.worker import FleetWorker

__all__ = [
    "FLEET_SCHEMA_VERSION",
    "FleetAutoscaler",
    "FleetQueue",
    "FleetWorker",
    "QueueDispatcher",
]
