"""Aggregate impact on total variational runtime (paper section 8.4).

The paper's closing argument: VQE needs thousands of iterations (3500 for
the BeH2 study of Kandala et al.), so per-iteration compilation latency
multiplies into the total wall time — "over 2 years of runtime compilation
latency via Full-GRAPE", versus ~an hour of one-off pre-compute for strict
partial compilation.  This module projects total campaign cost for a given
strategy from the measured per-iteration numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError

#: Iteration count of the Kandala et al. (2017) BeH2 VQE experiment that
#: the paper extrapolates from.
KANDALA_BEH2_ITERATIONS = 3500


@dataclass(frozen=True)
class CampaignProjection:
    """Projected cost of a full variational campaign under one strategy.

    Attributes
    ----------
    strategy:
        Compiler name.
    iterations:
        Number of variational iterations in the campaign.
    precompute_s:
        One-off pre-computation wall time.
    per_iteration_compile_s:
        Runtime compilation latency paid every iteration.
    per_iteration_pulse_ns:
        Pulse duration per circuit execution (per iteration, one execution
        modelled; shots multiply it uniformly across strategies).
    """

    strategy: str
    iterations: int
    precompute_s: float
    per_iteration_compile_s: float
    per_iteration_pulse_ns: float

    @property
    def total_compile_s(self) -> float:
        """Total compilation cost of the campaign, precompute included."""
        return self.precompute_s + self.iterations * self.per_iteration_compile_s

    @property
    def total_compile_days(self) -> float:
        return self.total_compile_s / 86_400.0

    def speedup_over(self, other: "CampaignProjection") -> float:
        """How much cheaper this strategy's total compilation is."""
        if self.total_compile_s <= 0:
            return float("inf")
        return other.total_compile_s / self.total_compile_s


def project_campaign(
    strategy: str,
    per_iteration_compile_s: float,
    per_iteration_pulse_ns: float,
    iterations: int = KANDALA_BEH2_ITERATIONS,
    precompute_s: float = 0.0,
) -> CampaignProjection:
    """Build a :class:`CampaignProjection` from measured per-iteration data."""
    if iterations < 1:
        raise ReproError(f"campaign needs at least one iteration, got {iterations}")
    if per_iteration_compile_s < 0 or precompute_s < 0:
        raise ReproError("latencies must be non-negative")
    return CampaignProjection(
        strategy=strategy,
        iterations=iterations,
        precompute_s=precompute_s,
        per_iteration_compile_s=per_iteration_compile_s,
        per_iteration_pulse_ns=per_iteration_pulse_ns,
    )
