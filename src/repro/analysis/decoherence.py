"""Decoherence model: why pulse speedups matter.

"Fidelity decreases exponentially in time" (paper §1): under a simple
amplitude-damping picture, a circuit of duration ``T`` on a device with
coherence time ``T_coh`` succeeds with probability ``exp(-T / T_coh)``.
A pulse speedup of ``s`` therefore improves the success probability by
``exp(T (1 - 1/s) / T_coh)`` — "the effect of a pulse time speedup enters
the power of an exponential term".
"""

from __future__ import annotations

import math

from repro.errors import ReproError

#: Representative gmon coherence time (ns).  Chen et al. 2014 report qubit
#: lifetimes in the few-tens-of-microseconds range for gmon devices.
DEFAULT_COHERENCE_NS = 20_000.0


def success_probability(duration_ns: float, coherence_ns: float = DEFAULT_COHERENCE_NS) -> float:
    """``exp(-T / T_coh)`` — probability the computation outruns decoherence."""
    if duration_ns < 0:
        raise ReproError(f"negative duration {duration_ns}")
    if coherence_ns <= 0:
        raise ReproError(f"coherence time must be positive, got {coherence_ns}")
    return math.exp(-duration_ns / coherence_ns)


def decoherence_advantage(
    baseline_ns: float,
    improved_ns: float,
    coherence_ns: float = DEFAULT_COHERENCE_NS,
) -> float:
    """Multiplicative success-probability gain of the shorter pulse.

    Greater than 1 whenever ``improved_ns < baseline_ns``; grows
    exponentially with the absolute time saved.
    """
    return success_probability(improved_ns, coherence_ns) / success_probability(
        baseline_ns, coherence_ns
    )
