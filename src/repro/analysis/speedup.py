"""Speedup tables over compilation strategies (Table 4 / Figures 5-6)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError

METHOD_ORDER = ("gate", "strict", "flexible", "grape")


@dataclass
class SpeedupRow:
    """Pulse durations for one benchmark across the four strategies."""

    benchmark: str
    gate_ns: float
    strict_ns: float | None = None
    flexible_ns: float | None = None
    grape_ns: float | None = None

    def speedup(self, method: str) -> float | None:
        """Pulse speedup factor of ``method`` relative to gate-based."""
        value = {
            "gate": self.gate_ns,
            "strict": self.strict_ns,
            "flexible": self.flexible_ns,
            "grape": self.grape_ns,
        }.get(method)
        if method not in METHOD_ORDER:
            raise ReproError(f"unknown method {method!r}")
        if value is None or value <= 0:
            return None
        return self.gate_ns / value

    def ordering_holds(self, tolerance_ns: float = 1e-6) -> bool:
        """Check the paper's invariant gate ≥ strict ≥ flexible (GRAPE may
        beat or tie flexible; blocking granularity lets either win by a
        hair, so GRAPE is only required not to exceed strict)."""
        chain = [self.gate_ns, self.strict_ns, self.flexible_ns]
        values = [v for v in chain if v is not None]
        ok = all(a >= b - tolerance_ns for a, b in zip(values, values[1:]))
        if self.grape_ns is not None and self.strict_ns is not None:
            ok = ok and self.grape_ns <= self.strict_ns + tolerance_ns
        return ok


def speedup_table(rows: list) -> list:
    """Rows of (benchmark, duration per method, speedup per method)."""
    out = []
    for row in rows:
        record = {"benchmark": row.benchmark, "gate_ns": row.gate_ns}
        for method in ("strict", "flexible", "grape"):
            value = getattr(row, f"{method}_ns")
            record[f"{method}_ns"] = value
            record[f"{method}_speedup"] = row.speedup(method)
        out.append(record)
    return out
