"""Reporting and analysis helpers used by the benchmark harness."""

from repro.analysis.aggregate import (
    KANDALA_BEH2_ITERATIONS,
    CampaignProjection,
    project_campaign,
)
from repro.analysis.decoherence import (
    decoherence_advantage,
    success_probability,
)
from repro.analysis.speedup import SpeedupRow, speedup_table
from repro.analysis.charts import render_chart
from repro.analysis.tables import format_table

__all__ = [
    "render_chart",
    "CampaignProjection",
    "KANDALA_BEH2_ITERATIONS",
    "SpeedupRow",
    "project_campaign",
    "decoherence_advantage",
    "format_table",
    "speedup_table",
    "success_probability",
]
