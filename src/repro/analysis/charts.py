"""ASCII line charts for the figure benchmarks.

The paper's Figures 2 and 6 are pulse-duration-vs-p line plots.  The
benchmark harness runs in text-only environments, so the figure benches
render their series as monospace scatter charts alongside the numeric
tables — close enough to eyeball the linear-vs-asymptote shapes the
reproduction asserts.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ReproError

__all__ = ["render_chart"]

#: Plot glyphs, assigned to series in insertion order.
_MARKERS = "ox+*#@%&"


def render_chart(
    series: Mapping[str, Sequence[tuple]],
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    title: str | None = None,
) -> str:
    """Render ``{name: [(x, y), …]}`` as an ASCII scatter/line chart.

    Each series gets one marker glyph; a legend, axis ranges, and optional
    title are attached.  Raises :class:`ReproError` for empty input or
    degenerate dimensions.
    """
    if not series or all(len(points) == 0 for points in series.values()):
        raise ReproError("nothing to plot")
    if width < 10 or height < 4:
        raise ReproError(f"chart area {width}x{height} is too small")

    xs = [x for points in series.values() for x, _ in points]
    ys = [y for points in series.values() for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, (name, points) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker} {name}")
        for x, y in points:
            col = int(round((x - x_lo) / x_span * (width - 1)))
            row = int(round((y - y_lo) / y_span * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} (top = {y_hi:g}, bottom = {y_lo:g})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_lo:g} … {x_hi:g}    legend: " + "   ".join(legend))
    return "\n".join(lines)
