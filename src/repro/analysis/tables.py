"""Plain-text table rendering for the benchmark harness output."""

from __future__ import annotations

from typing import Iterable, Sequence


def _fmt(value, precision: int) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str | None = None,
    precision: int = 1,
) -> str:
    """Render an aligned monospace table (benchmark stdout mirrors the
    paper's tables)."""
    str_rows = [[_fmt(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(
            " | ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)
