"""Exception hierarchy for the repro library.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CircuitError(ReproError):
    """Raised for malformed circuits or invalid circuit operations."""


class ParameterError(CircuitError):
    """Raised for invalid symbolic-parameter operations (e.g. binding a
    value to a parameter the expression does not contain)."""


class TranspileError(ReproError):
    """Raised when a transpiler pass cannot process a circuit."""


class DeviceError(ReproError):
    """Raised for invalid device topologies or out-of-range qubit indices."""


class PulseError(ReproError):
    """Raised for malformed pulse schedules or control arrays."""


class GrapeError(ReproError):
    """Raised when GRAPE optimization cannot be set up or fails to make
    progress (e.g. infeasible time bounds in the minimum-time search)."""


class BlockingError(ReproError):
    """Raised when circuit blocking produces an invalid partition."""


class PipelineError(ReproError):
    """Raised for invalid pipeline configurations: unknown executors,
    mis-ordered stages, or a stage reading context a prior stage never
    produced."""


class CompilationError(ReproError):
    """Raised by the partial-compilation engines for invalid inputs, such as
    binding the wrong number of parameters at run time."""


class ServiceSaturated(ReproError):
    """Raised by non-blocking admission when the service's bounded queue
    is full — the caller should back off and retry (HTTP maps this to
    429 Too Many Requests)."""


class VQEError(ReproError):
    """Raised for invalid fermionic operators, molecules, or VQE setups."""


class QAOAError(ReproError):
    """Raised for invalid QAOA problem instances."""
