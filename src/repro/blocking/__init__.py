"""Circuit blocking: partition circuits into ≤4-qubit GRAPE blocks."""

from repro.blocking.aggregate import Block, BlockedCircuit, aggregate_blocks

__all__ = ["Block", "BlockedCircuit", "aggregate_blocks"]
