"""Instruction aggregation into GRAPE-sized blocks.

GRAPE converges reliably only up to ~4-qubit blocks (paper section 5.2), so
circuits are partitioned into maximal subcircuits of bounded width using the
aggregation methodology of Shi et al. [44]: grow blocks greedily along qubit
timelines, merging open blocks when the block dependency graph stays
acyclic, and closing blocks whose width would overflow.

The resulting blocks form a DAG; emitted in topological order they replay
the original circuit exactly (tested property), and scheduling blocks ASAP
on their qubit sets never delays execution relative to the gate schedule
beyond each block's own critical path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import critical_path_ns
from repro.errors import BlockingError


@dataclass
class Block:
    """A contiguous group of instructions on a bounded qubit set."""

    index: int
    qubits: set = field(default_factory=set)
    instruction_indices: list = field(default_factory=list)
    open: bool = True

    def __hash__(self) -> int:
        return self.index

    def __eq__(self, other) -> bool:
        return isinstance(other, Block) and other.index == self.index


@dataclass
class BlockedCircuit:
    """A partition of ``circuit`` into width-bounded blocks (topological order)."""

    circuit: QuantumCircuit
    blocks: list
    max_width: int

    def __len__(self) -> int:
        return len(self.blocks)

    def local_circuit(self, block: Block) -> tuple:
        """The block's subcircuit on local qubits plus the local→global map.

        Returns ``(subcircuit, qubit_order)`` where ``qubit_order[i]`` is the
        global qubit of local qubit ``i`` (sorted ascending, so the pulse
        model's channel layout is deterministic).
        """
        order = tuple(sorted(block.qubits))
        local = {q: i for i, q in enumerate(order)}
        sub = QuantumCircuit(len(order), name=f"{self.circuit.name}_block{block.index}")
        for idx in block.instruction_indices:
            inst = self.circuit[idx]
            sub.append(inst.gate, tuple(local[q] for q in inst.qubits))
        return sub, order

    def gate_based_duration_ns(self, block: Block) -> float:
        """Critical-path gate-based runtime of the block's subcircuit."""
        sub, _ = self.local_circuit(block)
        return critical_path_ns(sub)

    def flattened(self) -> QuantumCircuit:
        """Replay all blocks in order — must equal the original circuit's
        semantics (instruction order within qubit timelines preserved)."""
        out = QuantumCircuit(self.circuit.num_qubits, name=self.circuit.name)
        for block in self.blocks:
            for idx in block.instruction_indices:
                inst = self.circuit[idx]
                out.append(inst.gate, inst.qubits)
        return out


def aggregate_blocks(
    circuit: QuantumCircuit, max_width: int, isolate: set | None = None
) -> BlockedCircuit:
    """Partition ``circuit`` into blocks of at most ``max_width`` qubits.

    ``isolate`` is an optional set of instruction indices that must each
    form their own singleton block (closed immediately).  Strict partial
    compilation isolates the parameter-dependent gates this way: the
    barrier they impose is then *per-qubit* — the DAG-aware reading of the
    paper's "maximal parametrization-independent subcircuits" — rather
    than a global temporal cut.
    """
    if max_width < 1:
        raise BlockingError(f"max_width must be >= 1, got {max_width}")
    isolate = isolate or set()

    blocks: list[Block] = []
    dag = nx.DiGraph()
    current: dict[int, Block] = {}  # qubit -> owning block (open or closed)

    def new_block(qubits, idx) -> Block:
        block = Block(index=len(blocks), qubits=set(qubits), instruction_indices=[idx])
        blocks.append(block)
        dag.add_node(block.index)
        return block

    def add_dependency(src: Block, dst: Block) -> None:
        if src.index != dst.index:
            dag.add_edge(src.index, dst.index)

    def can_merge(targets: list) -> bool:
        """Safe to fuse ``targets`` iff no path connects two of them through
        an outside block (fusing would create a cycle)."""
        ids = {b.index for b in targets}
        for a in ids:
            # DFS from a avoiding direct internal hops.
            stack = [s for s in dag.successors(a) if s not in ids]
            seen = set(stack)
            while stack:
                node = stack.pop()
                for nxt in dag.successors(node):
                    if nxt in ids:
                        return False
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append(nxt)
        return True

    for idx, inst in enumerate(circuit):
        qubits = set(inst.qubits)
        owners = {current[q] for q in qubits if q in current}
        open_owners = sorted((b for b in owners if b.open), key=lambda b: b.index)

        if idx in isolate:
            # Forced singleton: close owners, emit, close immediately.
            for b in open_owners:
                b.open = False
            placed = new_block(qubits, idx)
            placed.open = False
            for b in owners:
                add_dependency(b, placed)
            for q in qubits:
                current[q] = placed
            continue

        placed = None
        if open_owners:
            union = set(qubits)
            for b in open_owners:
                union |= b.qubits
            if len(union) <= max_width and (
                len(open_owners) == 1 or can_merge(open_owners)
            ):
                # Fuse all open owners into the earliest one.
                host = open_owners[0]
                for other in open_owners[1:]:
                    host.qubits |= other.qubits
                    host.instruction_indices.extend(other.instruction_indices)
                    for q, owner in list(current.items()):
                        if owner is other:
                            current[q] = host
                    for pred in list(dag.predecessors(other.index)):
                        add_dependency(blocks[pred], host)
                    for succ in list(dag.successors(other.index)):
                        add_dependency(host, blocks[succ])
                    dag.remove_node(other.index)
                    other.open = False
                    other.instruction_indices = []
                host.qubits |= qubits
                host.instruction_indices.append(idx)
                placed = host
            else:
                for b in open_owners:
                    b.open = False

        if placed is None:
            placed = new_block(qubits, idx)
        for b in owners:
            if b is not placed:
                add_dependency(b, placed)
        for q in qubits:
            current[q] = placed

    # Drop husks left by merges, close everything, emit topologically.
    alive = [b for b in blocks if b.instruction_indices]
    for b in alive:
        b.open = False
    order = {bid: pos for pos, bid in enumerate(nx.topological_sort(dag))}
    alive.sort(key=lambda b: (order[b.index], min(b.instruction_indices)))
    # Stable re-index.
    for pos, b in enumerate(alive):
        b.index = pos
    # Instructions within a block must stay in original order.
    for b in alive:
        b.instruction_indices.sort()

    blocked = BlockedCircuit(circuit=circuit, blocks=alive, max_width=max_width)
    _validate(blocked)
    return blocked


def _validate(blocked: BlockedCircuit) -> None:
    """Every instruction exactly once, widths bounded, qubit order preserved."""
    seen: list[int] = []
    for block in blocked.blocks:
        if len(block.qubits) > blocked.max_width:
            raise BlockingError(
                f"block {block.index} spans {len(block.qubits)} qubits "
                f"(max {blocked.max_width})"
            )
        seen.extend(block.instruction_indices)
    if sorted(seen) != list(range(len(blocked.circuit))):
        raise BlockingError("blocking lost or duplicated instructions")
    # Per-qubit instruction order must be preserved by block emission order.
    position = {idx: pos for pos, idx in enumerate(seen)}
    last: dict[int, int] = {}
    for idx, inst in enumerate(blocked.circuit):
        for q in inst.qubits:
            if q in last and position[last[q]] > position[idx]:
                raise BlockingError(f"qubit {q} ordering violated by blocking")
            last[q] = idx
