"""repro — Partial Compilation of Variational Algorithms (MICRO 2019).

A from-scratch reproduction of Gokhale et al., "Partial Compilation of
Variational Algorithms for Noisy Intermediate-Scale Quantum Machines"
(MICRO-52, 2019): a quantum circuit IR and transpiler, a gmon pulse-level
device model, a GRAPE optimal-control engine, and the paper's contribution —
strict and flexible partial compilation for variational algorithms (VQE and
QAOA).

Quickstart::

    from repro import qaoa
    from repro.service import CompilationService, CompileRequest

    problem = qaoa.maxcut_problem("3regular", 6, seed=0)
    circuit = qaoa.qaoa_circuit(problem, p=1)
    with CompilationService() as service:
        result = service.compile(
            CompileRequest(circuit, [0.3, 1.1], strategy="strict-partial")
        )
    print(result.pulse_duration_ns)
"""

from repro import (
    analysis,
    blocking,
    circuits,
    core,
    fleet,
    linalg,
    pipeline,
    pulse,
    qaoa,
    service,
    sim,
    transpile,
    vqe,
)
from repro.config import (
    available_presets,
    get_pipeline_config,
    get_preset,
    set_pipeline_config,
    set_preset,
)
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "analysis",
    "available_presets",
    "blocking",
    "circuits",
    "core",
    "fleet",
    "get_pipeline_config",
    "get_preset",
    "linalg",
    "pipeline",
    "pulse",
    "qaoa",
    "service",
    "set_pipeline_config",
    "set_preset",
    "sim",
    "transpile",
    "vqe",
    "__version__",
]
