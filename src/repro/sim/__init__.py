"""Statevector simulation, circuit unitaries, and Pauli observables."""

from repro.sim.density import DensityMatrix, NoiseModel, simulate_noisy, success_probability_with_speedup
from repro.sim.statevector import Statevector, simulate
from repro.sim.unitary import circuit_unitary
from repro.sim.pauli import PauliString, PauliSum

__all__ = [
    "DensityMatrix",
    "NoiseModel",
    "PauliString",
    "PauliSum",
    "Statevector",
    "circuit_unitary",
    "simulate",
    "simulate_noisy",
    "success_probability_with_speedup",
]
