"""Density-matrix simulation with duration-dependent decoherence.

The paper's central physical argument is that "error due to decoherence
scales exponentially with quantum runtime", so shorter pulses translate
directly into higher success probability.  This module makes that argument
executable: a :class:`DensityMatrix` simulator applies each gate's unitary
*followed by* amplitude-damping (T1) and pure-dephasing (T2) channels whose
strengths depend on the gate's pulse duration.  Running the same circuit
with gate-based durations versus GRAPE durations shows the fidelity gap the
pulse speedups buy.
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.errors import CircuitError, ReproError
from repro.linalg.operators import embed_operator
from repro.sim.statevector import Statevector
from repro.transpile.schedule import gate_duration_ns

#: Representative gmon coherence times (ns).
DEFAULT_T1_NS = 20_000.0
DEFAULT_T2_NS = 15_000.0


class NoiseModel:
    """Per-qubit amplitude damping and dephasing from T1/T2 times.

    For a gate of duration ``t`` the damping probability is
    ``γ = 1 - exp(-t / T1)`` and the extra pure-dephasing probability is
    ``λ = 1 - exp(-t (1/T2 - 1/(2 T1)))`` (requires T2 ≤ 2·T1).
    """

    def __init__(self, t1_ns: float = DEFAULT_T1_NS, t2_ns: float | None = None):
        if t2_ns is None:
            t2_ns = min(DEFAULT_T2_NS, t1_ns)
        if t1_ns <= 0 or t2_ns <= 0:
            raise ReproError("coherence times must be positive")
        if t2_ns > 2 * t1_ns:
            raise ReproError(f"T2 = {t2_ns} exceeds the physical bound 2·T1 = {2 * t1_ns}")
        self.t1_ns = t1_ns
        self.t2_ns = t2_ns

    def damping_probability(self, duration_ns: float) -> float:
        return 1.0 - math.exp(-duration_ns / self.t1_ns)

    def dephasing_probability(self, duration_ns: float) -> float:
        rate = 1.0 / self.t2_ns - 0.5 / self.t1_ns
        return 1.0 - math.exp(-duration_ns * rate)

    def kraus_operators(self, duration_ns: float) -> list:
        """Single-qubit Kraus set combining damping then dephasing."""
        gamma = self.damping_probability(duration_ns)
        lam = self.dephasing_probability(duration_ns)
        damp = [
            np.array([[1, 0], [0, math.sqrt(1 - gamma)]], dtype=complex),
            np.array([[0, math.sqrt(gamma)], [0, 0]], dtype=complex),
        ]
        dephase = [
            math.sqrt(1 - lam) * np.eye(2, dtype=complex),
            math.sqrt(lam) * np.diag([1.0, -1.0]).astype(complex),
        ]
        kraus = [d @ a for a in damp for d in dephase]
        return kraus


class DensityMatrix:
    """A mixed state of ``num_qubits`` qubits."""

    def __init__(self, data: np.ndarray):
        rho = np.asarray(data, dtype=complex)
        n = int(np.log2(rho.shape[0]))
        if rho.shape != (2**n, 2**n):
            raise CircuitError(f"invalid density-matrix shape {rho.shape}")
        self.num_qubits = n
        self.data = rho

    @classmethod
    def zero_state(cls, num_qubits: int) -> "DensityMatrix":
        dim = 2**num_qubits
        rho = np.zeros((dim, dim), dtype=complex)
        rho[0, 0] = 1.0
        return cls(rho)

    @classmethod
    def from_statevector(cls, state: Statevector) -> "DensityMatrix":
        return cls(np.outer(state.data, state.data.conj()))

    # -- channels -----------------------------------------------------------
    def apply_unitary(self, matrix: np.ndarray, qubits: tuple) -> "DensityMatrix":
        full = embed_operator(matrix, qubits, self.num_qubits)
        return DensityMatrix(full @ self.data @ full.conj().T)

    def apply_kraus(self, kraus: list, qubit: int) -> "DensityMatrix":
        out = np.zeros_like(self.data)
        for k in kraus:
            full = embed_operator(k, (qubit,), self.num_qubits)
            out += full @ self.data @ full.conj().T
        return DensityMatrix(out)

    # -- measurement ----------------------------------------------------------
    def trace(self) -> float:
        return float(np.real(np.trace(self.data)))

    def purity(self) -> float:
        return float(np.real(np.trace(self.data @ self.data)))

    def probabilities(self) -> np.ndarray:
        return np.real(np.diag(self.data)).clip(min=0.0)

    def expectation(self, operator: np.ndarray) -> float:
        return float(np.real(np.trace(operator @ self.data)))

    def fidelity_with_pure(self, state: Statevector) -> float:
        """``<ψ| ρ |ψ>`` — success probability against the ideal output."""
        vec = state.data
        return float(np.real(np.vdot(vec, self.data @ vec)))


def simulate_noisy(
    circuit: QuantumCircuit,
    noise: NoiseModel | None = None,
    durations: dict | None = None,
) -> DensityMatrix:
    """Run ``circuit`` with decoherence proportional to gate durations.

    Parameters
    ----------
    circuit:
        A fully bound circuit.
    noise:
        The T1/T2 model (defaults to representative gmon values).
    durations:
        Optional gate-name → duration (ns) override.  Passing durations
        scaled by a pulse-speedup factor models running the same circuit on
        faster (GRAPE) pulses.
    """
    if circuit.is_parameterized():
        raise CircuitError("bind parameters before noisy simulation")
    noise = noise or NoiseModel()
    rho = DensityMatrix.zero_state(circuit.num_qubits)
    for inst in circuit:
        rho = rho.apply_unitary(inst.gate.matrix(), inst.qubits)
        duration = (
            durations.get(inst.gate.name)
            if durations and inst.gate.name in durations
            else gate_duration_ns(inst.gate.name)
        )
        kraus = noise.kraus_operators(duration / len(inst.qubits))
        for q in inst.qubits:
            rho = rho.apply_kraus(kraus, q)
    return rho


def success_probability_with_speedup(
    circuit: QuantumCircuit,
    speedup: float,
    noise: NoiseModel | None = None,
) -> float:
    """Fidelity to the ideal output when every pulse is ``speedup``x shorter.

    The executable version of the paper's claim that pulse speedups enter
    "the power of an exponential term": fidelity gains compound with depth.
    """
    if speedup <= 0:
        raise ReproError("speedup must be positive")
    from repro.config import GATE_DURATIONS_NS
    from repro.sim.statevector import simulate

    scaled = {name: t / speedup for name, t in GATE_DURATIONS_NS.items()}
    rho = simulate_noisy(circuit, noise=noise, durations=scaled)
    ideal = simulate(circuit)
    return rho.fidelity_with_pure(ideal)
