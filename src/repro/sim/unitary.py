"""Circuit → unitary matrix construction.

GRAPE's input is the full unitary of a (sub)circuit (paper section 5:
"the unitary matrix of the targeted quantum circuit must be specified as
input").  We build it by embedding each gate matrix and multiplying; cost is
``O(gates · 4^n)``, fine for the ≤4-qubit blocks GRAPE consumes.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.errors import CircuitError
from repro.linalg.operators import embed_operator


def circuit_unitary(circuit: QuantumCircuit) -> np.ndarray:
    """The ``2^n x 2^n`` unitary implemented by a fully bound circuit."""
    if circuit.is_parameterized():
        unbound = sorted(p.name for p in circuit.parameters)
        raise CircuitError(f"cannot build unitary with unbound parameters {unbound}")
    dim = 2**circuit.num_qubits
    unitary = np.eye(dim, dtype=complex)
    for inst in circuit:
        full = embed_operator(inst.gate.matrix(), inst.qubits, circuit.num_qubits)
        unitary = full @ unitary
    return unitary
