"""Dense statevector simulator.

Applies gates by tensor contraction on the reshaped state, so memory is
``O(2^n)`` and each k-qubit gate costs ``O(2^n · 2^k)``.  Big-endian
convention (qubit 0 = most significant index bit), matching the gate
matrices in :mod:`repro.circuits.gates`.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.errors import CircuitError


class Statevector:
    """A normalized pure state of ``num_qubits`` qubits."""

    def __init__(self, data: np.ndarray, num_qubits: int | None = None):
        vec = np.asarray(data, dtype=complex).ravel()
        n = int(np.log2(vec.size))
        if 2**n != vec.size:
            raise CircuitError(f"state dimension {vec.size} is not a power of two")
        if num_qubits is not None and num_qubits != n:
            raise CircuitError(f"state of dim {vec.size} is not {num_qubits} qubits")
        self.num_qubits = n
        self.data = vec

    @classmethod
    def zero_state(cls, num_qubits: int) -> "Statevector":
        vec = np.zeros(2**num_qubits, dtype=complex)
        vec[0] = 1.0
        return cls(vec)

    @classmethod
    def computational_basis(cls, num_qubits: int, bitstring: str) -> "Statevector":
        """State ``|bitstring>`` with qubit 0 as the leftmost character."""
        if len(bitstring) != num_qubits or any(b not in "01" for b in bitstring):
            raise CircuitError(f"invalid bitstring {bitstring!r} for {num_qubits} qubits")
        vec = np.zeros(2**num_qubits, dtype=complex)
        vec[int(bitstring, 2)] = 1.0
        return cls(vec)

    # -- evolution -----------------------------------------------------------
    def apply_matrix(self, matrix: np.ndarray, qubits: tuple) -> "Statevector":
        """Apply a ``2^k x 2^k`` matrix to ``qubits`` and return a new state."""
        k = len(qubits)
        if matrix.shape != (2**k, 2**k):
            raise CircuitError(f"matrix shape {matrix.shape} does not act on {k} qubits")
        n = self.num_qubits
        tensor = self.data.reshape([2] * n)
        # Move the target axes to the front, contract, and move back.
        tensor = np.moveaxis(tensor, qubits, range(k))
        shape = tensor.shape
        tensor = matrix @ tensor.reshape(2**k, -1)
        tensor = tensor.reshape(shape)
        tensor = np.moveaxis(tensor, range(k), qubits)
        return Statevector(tensor.ravel())

    def evolve(self, circuit: QuantumCircuit) -> "Statevector":
        """Run ``circuit`` on this state (must be fully bound)."""
        if circuit.num_qubits != self.num_qubits:
            raise CircuitError(
                f"circuit width {circuit.num_qubits} != state width {self.num_qubits}"
            )
        state = self
        for inst in circuit:
            state = state.apply_matrix(inst.gate.matrix(), inst.qubits)
        return state

    # -- measurement ----------------------------------------------------------
    def probabilities(self) -> np.ndarray:
        """Measurement probabilities over computational basis states."""
        return np.abs(self.data) ** 2

    def expectation(self, operator: np.ndarray) -> float:
        """Real expectation value ``<ψ|O|ψ>`` of a Hermitian ``operator``."""
        val = np.vdot(self.data, operator @ self.data)
        return float(val.real)

    def sample_counts(self, shots: int, seed: int | None = None) -> dict:
        """Simulated measurement: bitstring -> count over ``shots`` samples."""
        rng = np.random.default_rng(seed)
        probs = self.probabilities()
        outcomes = rng.choice(len(probs), size=shots, p=probs / probs.sum())
        counts: dict[str, int] = {}
        for outcome in outcomes:
            key = format(outcome, f"0{self.num_qubits}b")
            counts[key] = counts.get(key, 0) + 1
        return counts

    def fidelity(self, other: "Statevector") -> float:
        """State fidelity ``|<ψ|φ>|²``."""
        if other.num_qubits != self.num_qubits:
            raise CircuitError("fidelity requires equal widths")
        return float(np.abs(np.vdot(self.data, other.data)) ** 2)

    def __repr__(self) -> str:
        return f"Statevector({self.num_qubits} qubits)"


def simulate(circuit: QuantumCircuit, initial: Statevector | None = None) -> Statevector:
    """Evolve ``|0…0>`` (or ``initial``) through ``circuit``."""
    state = initial if initial is not None else Statevector.zero_state(circuit.num_qubits)
    return state.evolve(circuit)
