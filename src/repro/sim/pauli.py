"""Pauli-string observables.

VQE Hamiltonians (after Jordan-Wigner) and QAOA cost functions are sums of
tensor products of Paulis.  :class:`PauliString` is one weighted product;
:class:`PauliSum` is a simplified linear combination.  Expectation values are
computed by applying single-qubit factors to the statevector, so no
``4^n``-sized matrices are materialized for wide registers.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import ReproError
from repro.linalg.operators import pauli_matrix
from repro.sim.statevector import Statevector

_PAULI_CHARS = "IXYZ"

# Single-qubit Pauli multiplication table: (left, right) -> (phase, result).
_MULT = {
    ("I", "I"): (1, "I"), ("I", "X"): (1, "X"), ("I", "Y"): (1, "Y"), ("I", "Z"): (1, "Z"),
    ("X", "I"): (1, "X"), ("X", "X"): (1, "I"), ("X", "Y"): (1j, "Z"), ("X", "Z"): (-1j, "Y"),
    ("Y", "I"): (1, "Y"), ("Y", "X"): (-1j, "Z"), ("Y", "Y"): (1, "I"), ("Y", "Z"): (1j, "X"),
    ("Z", "I"): (1, "Z"), ("Z", "X"): (1j, "Y"), ("Z", "Y"): (-1j, "X"), ("Z", "Z"): (1, "I"),
}

_SINGLE = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


class PauliString:
    """A coefficient times a tensor product of Paulis, e.g. ``0.5 · XIZY``."""

    __slots__ = ("label", "coefficient")

    def __init__(self, label: str, coefficient: complex = 1.0):
        label = label.upper()
        if not label or any(ch not in _PAULI_CHARS for ch in label):
            raise ReproError(f"invalid Pauli label {label!r}")
        self.label = label
        self.coefficient = complex(coefficient)

    @classmethod
    def from_sparse(
        cls, num_qubits: int, factors: Mapping[int, str], coefficient: complex = 1.0
    ) -> "PauliString":
        """Build from ``{qubit: 'X'|'Y'|'Z'}`` with identities elsewhere."""
        chars = ["I"] * num_qubits
        for qubit, ch in factors.items():
            if qubit < 0 or qubit >= num_qubits:
                raise ReproError(f"qubit {qubit} out of range for {num_qubits} qubits")
            chars[qubit] = ch.upper()
        return cls("".join(chars), coefficient)

    @property
    def num_qubits(self) -> int:
        return len(self.label)

    @property
    def support(self) -> tuple:
        """Qubits acted on non-trivially."""
        return tuple(i for i, ch in enumerate(self.label) if ch != "I")

    def is_identity(self) -> bool:
        return all(ch == "I" for ch in self.label)

    def matrix(self) -> np.ndarray:
        """Dense matrix (use only for small registers)."""
        return self.coefficient * pauli_matrix(self.label)

    def expectation(self, state: Statevector) -> complex:
        """``coeff · <ψ| P |ψ>`` without building the full matrix."""
        if state.num_qubits != self.num_qubits:
            raise ReproError(
                f"operator width {self.num_qubits} != state width {state.num_qubits}"
            )
        transformed = state
        for qubit, ch in enumerate(self.label):
            if ch != "I":
                transformed = transformed.apply_matrix(_SINGLE[ch], (qubit,))
        return self.coefficient * np.vdot(state.data, transformed.data)

    def __mul__(self, other):
        if isinstance(other, PauliString):
            if other.num_qubits != self.num_qubits:
                raise ReproError("cannot multiply Pauli strings of different widths")
            phase = 1 + 0j
            chars = []
            for a, b in zip(self.label, other.label):
                p, ch = _MULT[(a, b)]
                phase *= p
                chars.append(ch)
            return PauliString(
                "".join(chars), self.coefficient * other.coefficient * phase
            )
        return PauliString(self.label, self.coefficient * complex(other))

    __rmul__ = __mul__

    def __neg__(self):
        return PauliString(self.label, -self.coefficient)

    def __add__(self, other):
        return PauliSum([self]) + other

    def __sub__(self, other):
        return PauliSum([self]) - other

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PauliString):
            return NotImplemented
        return self.label == other.label and np.isclose(
            self.coefficient, other.coefficient
        )

    def __hash__(self) -> int:
        return hash(self.label)

    def __repr__(self) -> str:
        return f"({self.coefficient:g}) {self.label}"


class PauliSum:
    """A simplified sum of :class:`PauliString` terms over a fixed width."""

    def __init__(self, terms: Iterable[PauliString] = ()):
        collected: dict[str, complex] = {}
        width: int | None = None
        for term in terms:
            if width is None:
                width = term.num_qubits
            elif term.num_qubits != width:
                raise ReproError("mixed widths in PauliSum")
            collected[term.label] = collected.get(term.label, 0.0) + term.coefficient
        self._width = width
        self._terms = {
            label: coeff for label, coeff in collected.items() if abs(coeff) > 1e-12
        }

    @property
    def num_qubits(self) -> int:
        if self._width is None:
            raise ReproError("empty PauliSum has no width")
        return self._width

    @property
    def terms(self) -> tuple:
        return tuple(
            PauliString(label, coeff) for label, coeff in sorted(self._terms.items())
        )

    def __len__(self) -> int:
        return len(self._terms)

    def __iter__(self):
        return iter(self.terms)

    def coefficient(self, label: str) -> complex:
        return self._terms.get(label.upper(), 0.0)

    # -- algebra -----------------------------------------------------------
    def __add__(self, other):
        if isinstance(other, PauliString):
            other = PauliSum([other])
        if not isinstance(other, PauliSum):
            return NotImplemented
        return PauliSum(list(self.terms) + list(other.terms))

    def __sub__(self, other):
        if isinstance(other, PauliString):
            other = PauliSum([other])
        return self + (other * -1.0)

    def __mul__(self, other):
        if isinstance(other, PauliString):
            other = PauliSum([other])
        if isinstance(other, PauliSum):
            products = [
                PauliString(la, ca) * PauliString(lb, cb)
                for la, ca in self._terms.items()
                for lb, cb in other._terms.items()
            ]
            return PauliSum(products)
        return PauliSum(
            [PauliString(l, c * complex(other)) for l, c in self._terms.items()]
        )

    def __rmul__(self, other):
        if isinstance(other, (int, float, complex)):
            return self * other
        if isinstance(other, PauliString):
            return PauliSum([other]) * self
        return NotImplemented

    # -- numerics -----------------------------------------------------------
    def matrix(self) -> np.ndarray:
        """Dense matrix of the sum (small registers only)."""
        dim = 2**self.num_qubits
        out = np.zeros((dim, dim), dtype=complex)
        for term in self.terms:
            out += term.matrix()
        return out

    def expectation(self, state: Statevector) -> float:
        """Real expectation ``<ψ|H|ψ>`` (sum must be Hermitian)."""
        total = sum(term.expectation(state) for term in self.terms)
        return float(np.real(total))

    def ground_state_energy(self) -> float:
        """Exact lowest eigenvalue by dense diagonalization."""
        return float(np.linalg.eigvalsh(self.matrix())[0])

    def __repr__(self) -> str:
        inner = " + ".join(repr(t) for t in self.terms[:4])
        suffix = " + ..." if len(self) > 4 else ""
        return f"PauliSum[{inner}{suffix}]"
