"""The five built-in compilation strategies behind the service registry.

Each strategy adapts one of the paper's compilation modes to the service's
request/response surface while sharing the service's machinery — one pulse
cache, one block executor, one cross-call scheduler state — so repeated
requests reuse each other's work regardless of which thread submitted
them.  The heavy lifting stays in :mod:`repro.core`: the strategy classes
here wrap the same implementation classes the deprecated compiler
constructors delegate to, which is what makes service results bit-identical
to the legacy API.
"""

from __future__ import annotations

import time

from repro.errors import ReproError
from repro.service.registry import CompilationStrategy
from repro.service.requests import CompileRequest, CompileResult


class _StrategyBase(CompilationStrategy):
    """Shared option validation + result assembly."""

    #: Option keys this strategy understands (unknown keys raise).
    allowed_options: frozenset = frozenset()

    def _check_options(self, request: CompileRequest) -> None:
        unknown = set(request.options) - set(self.allowed_options)
        if unknown:
            raise ReproError(
                f"strategy {self.name!r} does not understand options "
                f"{sorted(unknown)}; allowed: {sorted(self.allowed_options)}"
            )

    def compile(self, service, request: CompileRequest) -> CompileResult:
        self._check_options(request)
        start = time.perf_counter()
        compiled, report, compiler = self._run(service, request)
        return CompileResult(
            request=request,
            strategy=self.name,
            compiled=compiled,
            precompile_report=report,
            compiler=compiler,
            wall_time_s=time.perf_counter() - start,
        )

    def _run(self, service, request: CompileRequest) -> tuple:
        """Return ``(compiled_pulse, precompile_report, plan_compiler)``."""
        raise NotImplementedError


class GateStrategy(_StrategyBase):
    """Table-1 lookup + concatenation — the paper's baseline."""

    name = "gate"
    allowed_options = frozenset({"pass_manager"})

    def _run(self, service, request):
        from repro.core.gate_based import _GateBasedCompiler

        impl = _GateBasedCompiler(request.option("pass_manager"))
        if request.values is None:
            return impl.compile(request.circuit), None, None
        return impl.compile_parametrized(request.circuit, request.values), None, None


class StepFunctionStrategy(_StrategyBase):
    """Angle-dependent lookup-table compilation (Barends-style ranges)."""

    name = "step-function"
    allowed_options = frozenset({"table"})

    def _run(self, service, request):
        from repro.core.stepfunction import _StepFunctionGateCompiler

        impl = _StepFunctionGateCompiler(request.option("table"))
        if request.values is None:
            return impl.compile_bound(request.circuit), None, None
        return (
            impl.compile_parametrized(request.circuit, request.values),
            None,
            None,
        )


class FullGrapeStrategy(_StrategyBase):
    """Blocked minimum-time GRAPE over the whole bound circuit.

    Runs through the service's shared scheduler state (when the request
    allows caching), so a stream of requests — from one thread or many —
    dispatches GRAPE only for blocks the whole service lifetime has never
    seen: the :class:`~repro.pipeline.session.VariationalSession` behavior,
    now a service internal.
    """

    name = "full-grape"
    allowed_options = frozenset()

    def _run(self, service, request):
        from repro.core.cache import PulseCache
        from repro.core.compiler import BlockPulseCompiler
        from repro.core.full_grape import result_from_context
        from repro.pipeline.strategies import full_grape_pipeline

        # The *symbolic* circuit goes into the pipeline (the bind stage
        # applies the values): the plan cache keys blocking output on the
        # ansatz's content fingerprint, so every binding of one ansatz
        # replays one plan.
        circuit = request.circuit
        values = (
            request.normalized_values() if request.values is not None else None
        )
        cache = service.cache if request.use_cache else PulseCache()
        block_compiler = BlockPulseCompiler(
            service.device_for(circuit),
            request.settings or service.settings,
            request.hyperparameters or service.hyperparameters,
            cache,
            warm_start=service.config.warm_start,
            warm_start_max_dist=service.config.warm_start_max_dist,
        )
        pipeline = full_grape_pipeline(
            block_compiler, request.max_block_width, service.executor
        )
        # An uncached request must pay the honest out-of-the-box latency,
        # so it also skips the cross-call dedup memory and the plan cache.
        state = service.scheduler_state if request.use_cache else None
        plan_cache = service.plan_cache if request.use_cache else None
        start = time.perf_counter()
        contexts, report = pipeline.run_many(
            [circuit],
            [values],
            state=state,
            plan_cache=plan_cache,
            plan_scope=self.name,
            grape_batch=service.config.grape_batch,
            grape_batch_size=service.config.grape_batch_size,
        )
        elapsed = time.perf_counter() - start
        extra = {
            "scheduler": report.as_dict() if report is not None else None,
            "service": True,
        }
        compiled = result_from_context("grape", contexts[0], elapsed, cache, extra)
        return compiled, None, None

    def compile_batch(self, service, requests) -> list:
        """Serve a uniform batch through one scheduler pass.

        Blocks shared between the batch's circuits compile once even on a
        cold cache; every result's ``runtime_latency_s`` is the shared
        batch wall time, exactly like the legacy ``compile_many``.
        """
        from repro.core.cache import PulseCache
        from repro.core.compiler import BlockPulseCompiler
        from repro.core.full_grape import result_from_context
        from repro.pipeline.strategies import full_grape_pipeline

        first = requests[0]
        for request in requests:
            self._check_options(request)
            if (
                request.settings is not first.settings
                or request.hyperparameters is not first.hyperparameters
                or request.max_block_width != first.max_block_width
                or request.use_cache != first.use_cache
            ):
                raise ReproError(
                    "compile_batch needs uniform settings/hyperparameters/"
                    "max_block_width/use_cache across the batch; mix "
                    "strategies or options via individual compile() calls"
                )
        circuits = [request.circuit for request in requests]
        values = [
            request.normalized_values() if request.values is not None else None
            for request in requests
        ]
        widest = max(circuits, key=lambda c: c.num_qubits)
        cache = service.cache if first.use_cache else PulseCache()
        block_compiler = BlockPulseCompiler(
            service.device_for(widest),
            first.settings or service.settings,
            first.hyperparameters or service.hyperparameters,
            cache,
            warm_start=service.config.warm_start,
            warm_start_max_dist=service.config.warm_start_max_dist,
        )
        pipeline = full_grape_pipeline(
            block_compiler, first.max_block_width, service.executor
        )
        state = service.scheduler_state if first.use_cache else None
        plan_cache = service.plan_cache if first.use_cache else None
        start = time.perf_counter()
        contexts, report = pipeline.run_many(
            circuits,
            values,
            state=state,
            plan_cache=plan_cache,
            plan_scope=self.name,
            grape_batch=service.config.grape_batch,
            grape_batch_size=service.config.grape_batch_size,
        )
        elapsed = time.perf_counter() - start
        extra = {
            "scheduler": report.as_dict() if report is not None else None,
            "batch_wall_time_s": elapsed,
            "service": True,
        }
        # One stats snapshot for the whole batch: a disk-backed cache's
        # stats() sweeps the library, which must not repeat per circuit.
        cache_stats = cache.stats()
        return [
            CompileResult(
                request=request,
                strategy=self.name,
                compiled=result_from_context(
                    "grape", context, elapsed, cache, extra, cache_stats
                ),
                wall_time_s=elapsed,
            )
            for request, context in zip(requests, contexts)
        ]


class _PartialStrategyBase(_StrategyBase):
    """Shared flow for the precompile-then-replay strategies."""

    def _precompile(self, service, request):
        """Return the plan compiler built over the service's machinery."""
        raise NotImplementedError

    def _run(self, service, request):
        compiler = self._precompile(service, request)
        compiled = None
        if request.values is not None:
            compiled = compiler.compile(request.normalized_values())
        return compiled, compiler.report, compiler


class StrictPartialStrategy(_PartialStrategyBase):
    """GRAPE-precompiled Fixed blocks + lookup ``Rz(θ)`` at runtime.

    Precompilation flows through the service's scheduler state, so the
    Fixed blocks of an ansatz the service has seen before cost zero GRAPE
    dispatches.  Each request still pays the (GRAPE-free) blocking and
    fingerprinting pass; callers replaying one ansatz thousands of times
    can precompile once (``values=None``) and reuse
    ``result.compiler.compile(values)`` directly.
    """

    name = "strict-partial"
    allowed_options = frozenset()

    def _precompile(self, service, request):
        from repro.core.cache import PulseCache
        from repro.core.strict import _StrictPartialCompiler

        return _StrictPartialCompiler.precompile_many(
            [request.circuit],
            device=service.device,
            settings=request.settings or service.settings,
            hyperparameters=request.hyperparameters or service.hyperparameters,
            max_block_width=request.max_block_width,
            cache=service.cache if request.use_cache else PulseCache(),
            executor=service.executor,
            state=service.scheduler_state if request.use_cache else None,
        )[0]


class FlexiblePartialStrategy(_PartialStrategyBase):
    """Single-θ slices with tuned warm-started GRAPE at runtime."""

    name = "flexible-partial"
    allowed_options = frozenset(
        {
            "tuning_samples",
            "learning_rates",
            "decay_rates",
            "seed",
            "tuning_strategy",
            "probe_executor",
        }
    )

    def _precompile(self, service, request):
        from repro.core.cache import PulseCache
        from repro.core.flexible import _FlexiblePartialCompiler

        return _FlexiblePartialCompiler.precompile_many(
            [request.circuit],
            device=service.device,
            settings=request.settings or service.settings,
            hyperparameters=request.hyperparameters or service.hyperparameters,
            max_block_width=request.max_block_width,
            cache=service.cache if request.use_cache else PulseCache(),
            tuning_samples=request.option("tuning_samples", 2),
            learning_rates=request.option("learning_rates"),
            decay_rates=request.option("decay_rates"),
            seed=request.option("seed", 11),
            tuning_strategy=request.option("tuning_strategy", "grid"),
            executor=service.executor,
            probe_executor=request.option("probe_executor"),
            state=service.scheduler_state if request.use_cache else None,
        )[0]
