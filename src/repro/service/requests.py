"""Typed request/response objects for the compilation service.

One :class:`CompileRequest` in, one :class:`CompileResult` out — whatever
the strategy.  The request carries everything a strategy may need (the
circuit, optional parameter values, GRAPE settings/hyperparameters, block
width, plus a free-form ``options`` dict for strategy-specific extras);
the result wraps the strategy's :class:`~repro.core.results.CompiledPulse`
together with its precompute report and, for the partial-compilation
strategies, the reusable precompiled plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.errors import ReproError


@dataclass(frozen=True)
class CompileRequest:
    """One unit of work for :meth:`CompilationService.compile`.

    Attributes
    ----------
    circuit:
        The (possibly parametrized) :class:`~repro.circuits.QuantumCircuit`.
    values:
        Parameter values to bind — a sequence in parameter-index order or a
        mapping.  ``None`` is allowed for bound circuits, and for the
        partial-compilation strategies it means *precompile only*: the
        result carries the reusable plan compiler but no pulse program.
    strategy:
        Registry key of the compilation strategy (``"gate"``,
        ``"full-grape"``, ``"strict-partial"``, ``"flexible-partial"``,
        ``"step-function"``, or any :func:`~repro.service.register_strategy`
        addition).
    settings / hyperparameters:
        Optional :class:`~repro.pulse.grape.GrapeSettings` /
        :class:`~repro.pulse.grape.GrapeHyperparameters` overrides; ``None``
        falls back to the service's defaults.
    max_block_width:
        Maximum GRAPE block width; ``None`` uses the blocking default.
    use_cache:
        Whether GRAPE results may be served from (and recorded into) the
        service's pulse cache.  Defaults on — the service exists to share
        work.  The paper's *uncached* full-GRAPE latency numbers need
        ``use_cache=False``.
    options:
        Strategy-specific extras (e.g. ``tuning_samples``,
        ``learning_rates``, ``tuning_strategy``, ``probe_executor`` for
        flexible partial compilation; ``pass_manager`` for gate-based;
        ``table`` for step-function).  Unknown keys raise at compile time.
    """

    circuit: Any
    values: Sequence[float] | Mapping | None = None
    strategy: str = "full-grape"
    settings: Any = None
    hyperparameters: Any = None
    max_block_width: int | None = None
    use_cache: bool = True
    options: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.circuit is None:
            raise ReproError("CompileRequest.circuit is required")
        if not isinstance(self.strategy, str) or not self.strategy:
            raise ReproError(
                f"CompileRequest.strategy must be a registry key, "
                f"got {self.strategy!r}"
            )

    def option(self, name: str, default=None):
        """One strategy-specific option, with a default."""
        return self.options.get(name, default)

    def normalized_values(self):
        """``values`` in the form the binding APIs take: a dict as-is, any
        other sequence materialized as a list, ``None`` untouched."""
        if self.values is None or isinstance(self.values, dict):
            return self.values
        return list(self.values)


@dataclass(frozen=True)
class CompileResult:
    """The service's response to one :class:`CompileRequest`.

    Attributes
    ----------
    request:
        The originating request (for correlation in concurrent use).
    strategy:
        The registry key that served it.
    compiled:
        The strategy's :class:`~repro.core.results.CompiledPulse`, or
        ``None`` for a precompile-only request (``values=None`` on a
        partial-compilation strategy).
    precompile_report:
        The :class:`~repro.core.results.PrecompileReport` for strategies
        with a precompute phase; ``None`` otherwise.
    compiler:
        The reusable plan compiler for the partial-compilation strategies
        (its ``compile(values)`` replays the plan at zero GRAPE precompute
        cost; also what :func:`repro.pulse.assembly_from_strict_plan`
        exports).  ``None`` for the stateless strategies.
    wall_time_s:
        End-to-end service-side wall time for this request, including any
        precompute phase.
    """

    request: CompileRequest
    strategy: str
    compiled: Any = None
    precompile_report: Any = None
    compiler: Any = None
    wall_time_s: float = 0.0

    # -- pass-throughs to the compiled pulse --------------------------------
    def _compiled(self):
        if self.compiled is None:
            raise ReproError(
                "this CompileResult is precompile-only (request.values was "
                "None); pass values to get a pulse program"
            )
        return self.compiled

    @property
    def program(self):
        return self._compiled().program

    @property
    def pulse_duration_ns(self) -> float:
        return self._compiled().pulse_duration_ns

    @property
    def runtime_latency_s(self) -> float:
        return self._compiled().runtime_latency_s

    @property
    def runtime_iterations(self) -> int:
        return self._compiled().runtime_iterations

    @property
    def metadata(self) -> dict:
        return self._compiled().metadata
