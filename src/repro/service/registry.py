"""The string-keyed compilation-strategy registry.

The five paper strategies register here under stable names —
``"gate"``, ``"full-grape"``, ``"strict-partial"``, ``"flexible-partial"``,
``"step-function"`` — and third parties add their own with
:func:`register_strategy`.  :class:`~repro.service.facade.CompilationService`
resolves ``CompileRequest.strategy`` through this registry, so a new
strategy is reachable from every driver, the CLI, and any future network
frontend without touching them.

Built-ins materialize lazily (the strategy implementations import
:mod:`repro.core`, which must not load just because :mod:`repro.config`
imported the service config at startup).
"""

from __future__ import annotations

import importlib
import threading

from repro.errors import ReproError
from repro.service.requests import CompileRequest, CompileResult


class CompilationStrategy:
    """One registered way to turn a :class:`CompileRequest` into a
    :class:`CompileResult`.

    Subclasses implement :meth:`compile`; the ``service`` argument gives
    access to the shared machinery (pulse cache, block executor, scheduler
    state, default device/settings) so every strategy automatically
    benefits from cross-request reuse.
    """

    #: Registry key; subclasses must override.
    name = "abstract"

    def compile(self, service, request: CompileRequest) -> CompileResult:
        """Serve one request using ``service``'s shared machinery."""
        raise NotImplementedError

    def describe(self) -> dict:
        """Telemetry fragment identifying this strategy."""
        return {"strategy": self.name, "class": type(self).__qualname__}


#: Lazily materialized built-in strategies: name -> (module, class name).
_BUILTIN_SPECS = {
    "gate": ("repro.service.strategies", "GateStrategy"),
    "full-grape": ("repro.service.strategies", "FullGrapeStrategy"),
    "strict-partial": ("repro.service.strategies", "StrictPartialStrategy"),
    "flexible-partial": ("repro.service.strategies", "FlexiblePartialStrategy"),
    "step-function": ("repro.service.strategies", "StepFunctionStrategy"),
}

_registry: dict = {}
_registry_lock = threading.Lock()


def register_strategy(strategy, name: str | None = None) -> None:
    """Register ``strategy`` (an instance or zero-arg class) under ``name``.

    ``name`` defaults to the strategy's own ``name`` attribute.
    Re-registering a key replaces it — including the built-ins, which is
    how a deployment swaps in a tuned variant behind the same request
    surface.
    """
    if isinstance(strategy, type):
        strategy = strategy()
    key = name or getattr(strategy, "name", None)
    if not key or key == "abstract":
        raise ReproError(
            f"strategy {strategy!r} needs a name (set .name or pass name=)"
        )
    if not callable(getattr(strategy, "compile", None)):
        raise ReproError(f"{strategy!r} has no compile(service, request) method")
    with _registry_lock:
        _registry[key] = strategy


def unregister_strategy(name: str) -> None:
    """Remove a registered strategy (built-ins re-materialize on demand)."""
    with _registry_lock:
        _registry.pop(name, None)


def get_strategy(name: str) -> CompilationStrategy:
    """Resolve ``name`` to its registered strategy, materializing built-ins."""
    with _registry_lock:
        strategy = _registry.get(name)
    if strategy is not None:
        return strategy
    spec = _BUILTIN_SPECS.get(name)
    if spec is None:
        raise ReproError(
            f"unknown compilation strategy {name!r}; "
            f"available: {available_strategies()}"
        )
    module_name, class_name = spec
    strategy = getattr(importlib.import_module(module_name), class_name)()
    with _registry_lock:
        # A concurrent materialization (or an explicit registration that
        # raced us) wins: first write stays.
        strategy = _registry.setdefault(name, strategy)
    return strategy


def available_strategies() -> tuple:
    """Sorted names of every reachable strategy (built-in or registered)."""
    with _registry_lock:
        names = set(_registry)
    return tuple(sorted(names | set(_BUILTIN_SPECS)))
