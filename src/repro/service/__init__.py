"""The compilation service — one typed front door for every caller.

The paper frames partial compilation as a *service* a variational outer
loop calls thousands of times.  This package is that service:

* :mod:`repro.service.config` — :class:`ServiceConfig`, the typed,
  immutable consolidation of every ``REPRO_*`` environment knob, with
  :meth:`ServiceConfig.from_env` as the only env-reading path in the
  package.
* :mod:`repro.service.requests` — :class:`CompileRequest` /
  :class:`CompileResult`, the typed request/response objects.
* :mod:`repro.service.registry` — the string-keyed strategy registry
  (``"gate"``, ``"full-grape"``, ``"strict-partial"``,
  ``"flexible-partial"``, ``"step-function"``) plus
  :func:`register_strategy` for third-party strategies.
* :mod:`repro.service.facade` — :class:`CompilationService`, the single
  supported way to compile: one persistent block executor, one open pulse
  library, one cross-call scheduler state, shared by every ``compile`` /
  ``submit`` from any number of threads.

This ``__init__`` imports lazily (PEP 562): :mod:`repro.config` depends on
:mod:`repro.service.config` at import time, so pulling the facade (which
imports :mod:`repro.core`) in eagerly would create an import cycle.
"""

from repro.service.config import (
    CACHE_SHARD_CHOICES,
    EXECUTOR_CHOICES,
    ReproDeprecationWarning,
    ServiceConfig,
)

__all__ = [
    "CACHE_SHARD_CHOICES",
    "CompilationService",
    "CompilationStrategy",
    "CompileRequest",
    "CompileResult",
    "EXECUTOR_CHOICES",
    "ReproDeprecationWarning",
    "ServiceConfig",
    "available_strategies",
    "get_strategy",
    "register_strategy",
    "unregister_strategy",
]

_LAZY = {
    "CompilationService": "repro.service.facade",
    "CompileRequest": "repro.service.requests",
    "CompileResult": "repro.service.requests",
    "CompilationStrategy": "repro.service.registry",
    "available_strategies": "repro.service.registry",
    "get_strategy": "repro.service.registry",
    "register_strategy": "repro.service.registry",
    "unregister_strategy": "repro.service.registry",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.service' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list:
    return sorted(set(globals()) | set(_LAZY))
