"""`CompilationService` — the single supported way to compile.

One service instance owns the machinery every request shares:

* one typed, immutable :class:`~repro.service.config.ServiceConfig`
  (the only consumer of the ``REPRO_*`` environment),
* one resolved block executor (persistent pools stay warm across every
  request),
* one open pulse cache (in-memory, or the sharded on-disk
  :class:`~repro.library.PulseLibrary` when ``cache_dir`` is set),
* one cross-call :class:`~repro.pipeline.scheduler.SchedulerState`
  (optionally resumed from — and spilled back to —
  ``scheduler_state_path``, so a *new process* inherits a previous
  session's dedup memory).

Requests are typed (:class:`~repro.service.requests.CompileRequest` in,
:class:`~repro.service.requests.CompileResult` out) and strategy dispatch
goes through the string-keyed registry, so drivers, the CLI, and any
future network frontend sit on one stable seam.

Concurrency model: ``submit()`` accepts requests from any number of
threads and strategy execution (blocking + GRAPE) runs *outside* the
service lock, so non-conflicting requests genuinely overlap.  The shared
mutable pieces each carry their own short-lived lock: the
:class:`~repro.pipeline.scheduler.SchedulerState` serializes its
lookup/record operations internally, the
:class:`~repro.pipeline.plan.PlanCache` its lookups/inserts, and
``self._lock`` shrinks to the request counters and lifecycle flags.
GRAPE is deterministic for a given (target, control context, settings),
so results stay bit-identical to a serial ``compile()`` of the same
requests — a cold race on one block can at worst duplicate work, never
change output.  See DESIGN.md "Concurrency model" for the lock-scope
table.
"""

from __future__ import annotations

import threading
import time
import warnings
from concurrent.futures import Future, ThreadPoolExecutor

from repro.errors import PipelineError, ReproError, ServiceSaturated
from repro.service.config import ServiceConfig
from repro.service.registry import get_strategy
from repro.service.requests import CompileRequest, CompileResult


class CompilationService:
    """One typed front door over the five compilation strategies.

    Parameters
    ----------
    config:
        The service configuration; ``None`` reads the environment once via
        :meth:`ServiceConfig.from_env`.
    device:
        Optional fixed :class:`~repro.pulse.device.GmonDevice`.  ``None``
        (the default) sizes a gmon grid per request, exactly like the
        legacy compilers.
    settings / hyperparameters:
        Service-wide GRAPE defaults applied when a request leaves them
        ``None``.
    default_strategy:
        The registry key :meth:`compile_parametrized` (the
        :class:`~repro.vqe.VQEDriver` / :class:`~repro.qaoa.QAOADriver`
        compiler-hook path) uses.
    max_block_width:
        Default block width for :meth:`compile_parametrized` requests.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        device=None,
        settings=None,
        hyperparameters=None,
        default_strategy: str = "full-grape",
        max_block_width: int | None = None,
    ):
        from repro.core.cache import PersistentPulseCache, PulseCache
        from repro.pipeline.executors import resolve_executor
        from repro.pipeline.plan import PlanCache
        from repro.pipeline.scheduler import SchedulerState

        self.config = config if config is not None else ServiceConfig.from_env()
        self.device = device
        self.settings = settings
        self.hyperparameters = hyperparameters
        self.default_strategy = default_strategy
        self.max_block_width = max_block_width
        self.cache = (
            PersistentPulseCache(self.config.cache_dir)
            if self.config.cache_dir
            else PulseCache()
        )
        if self.config.dispatcher == "queue":
            self.executor = self._make_queue_dispatcher()
        else:
            self.executor = resolve_executor(
                self.config.executor, self.config.max_workers
            )
        self.scheduler_state = self._load_scheduler_state(SchedulerState)
        # Blocking plans keyed by ansatz content: repeated requests for one
        # symbolic circuit replay blocking instead of recomputing it.
        self.plan_cache = PlanCache()
        # ``_lock`` guards only the counters and lifecycle flags; strategy
        # execution runs outside it (the scheduler state and plan cache
        # serialize themselves).  ``_idle`` lets close() wait for in-flight
        # direct compile() calls before releasing the block executor.
        self._lock = threading.RLock()
        self._idle = threading.Condition(self._lock)
        self._inflight = 0
        self._submit_pool = None
        self._submit_pool_lock = threading.Lock()
        # ``_draining`` rejects new work the moment close() starts;
        # ``_closed`` flips only after the submission pool has drained, so
        # already-accepted futures complete instead of erroring.
        self._draining = False
        self._closed = False
        self.requests_total = 0
        self.requests_by_strategy: dict = {}
        self.submitted_total = 0
        # Bounded admission: at most ``queue_depth`` submissions queued or
        # running at once; further submit() calls block until a slot
        # frees.  ``None`` admits without bound.
        self._admission = (
            threading.BoundedSemaphore(self.config.queue_depth)
            if self.config.queue_depth is not None
            else None
        )
        self.backpressure_waits = 0

    def _make_queue_dispatcher(self):
        """The fleet dispatcher selected by ``dispatcher="queue"``.

        The queue directory comes from ``fleet_dir``, falling back to
        ``<cache_dir>/fleet`` so a cache-configured service needs no
        extra knob for a local fleet.
        """
        from pathlib import Path

        from repro.fleet import QueueDispatcher

        fleet_dir = self.config.fleet_dir
        if not fleet_dir and self.config.cache_dir:
            fleet_dir = str(Path(self.config.cache_dir) / "fleet")
        if not fleet_dir:
            raise ReproError(
                "dispatcher='queue' needs REPRO_FLEET_DIR (or REPRO_CACHE_DIR "
                "to derive <cache_dir>/fleet from)"
            )
        return QueueDispatcher(
            fleet_dir,
            cache_dir=self.config.cache_dir,
            workers=self.config.fleet_workers,
            lease_ttl_s=self.config.fleet_lease_ttl_s,
            heartbeat_s=self.config.fleet_heartbeat_s,
            autoscale=self.config.fleet_autoscale,
            min_workers=self.config.fleet_min_workers,
            max_workers=self.config.fleet_max_workers,
        )

    def _load_scheduler_state(self, state_cls):
        """Resume spilled dedup memory when configured, else start fresh.

        A missing file is a fresh start; an unreadable or schema-mismatched
        file is *also* a fresh start (with a warning) — stale state must
        never prevent the service from coming up.
        """
        path = self.config.scheduler_state_path
        if path:
            from pathlib import Path

            if Path(path).exists():
                try:
                    return state_cls.load(path)
                except PipelineError as exc:
                    warnings.warn(
                        f"ignoring scheduler state at {path}: {exc}", stacklevel=2
                    )
        return state_cls()

    # -- core API ------------------------------------------------------------
    def _begin_request(self) -> None:
        """Admit one request: reject when closed, else count it in-flight."""
        with self._lock:
            if self._closed:
                raise PipelineError("this CompilationService is closed")
            self._inflight += 1

    def _end_request(self) -> None:
        with self._lock:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.notify_all()

    def _count_requests(self, strategy_name: str, n: int = 1) -> None:
        with self._lock:
            self.requests_total += n
            self.requests_by_strategy[strategy_name] = (
                self.requests_by_strategy.get(strategy_name, 0) + n
            )

    def compile(self, request: CompileRequest) -> CompileResult:
        """Serve one request through its registered strategy.

        Thread-safe; strategy execution runs outside the service lock (see
        the module docstring), so concurrent callers overlap.
        """
        if not isinstance(request, CompileRequest):
            raise ReproError(
                f"compile() takes a CompileRequest, got {type(request).__name__}"
            )
        strategy = get_strategy(request.strategy)
        self._begin_request()
        try:
            result = strategy.compile(self, request)
            self._count_requests(request.strategy)
            return result
        finally:
            self._end_request()

    def submit(self, request: CompileRequest, block: bool = True) -> Future:
        """Enqueue one request; returns a ``concurrent.futures.Future``.

        Callable from any number of threads: all submissions share this
        service's executor, cache, and scheduler state, so concurrent
        requests reuse each other's blocks exactly as serial ones do.

        With ``queue_depth`` configured, admission is bounded: when that
        many submissions are already queued or running, this call blocks
        until one of them completes (backpressure), keeping a fast
        producer from piling unbounded work onto the service.  With
        ``block=False`` a full queue raises
        :class:`~repro.errors.ServiceSaturated` instead of waiting — the
        path the HTTP frontend turns into 429 Too Many Requests.
        """
        if not isinstance(request, CompileRequest):
            raise ReproError(
                f"submit() takes a CompileRequest, got {type(request).__name__}"
            )
        if self._admission is not None:
            # Acquire *outside* the pool lock: a blocked producer must not
            # hold up other submitters or a concurrent close().
            if not self._admission.acquire(blocking=False):
                with self._lock:
                    self.backpressure_waits += 1
                if not block:
                    raise ServiceSaturated(
                        f"submission queue is full "
                        f"({self.config.queue_depth} requests queued or "
                        "running); back off and retry"
                    )
                self._admission.acquire()
        try:
            with self._submit_pool_lock:
                if self._draining or self._closed:
                    raise PipelineError("this CompilationService is closed")
                if self._submit_pool is None:
                    self._submit_pool = ThreadPoolExecutor(
                        max_workers=self.config.submit_workers,
                        thread_name_prefix="repro-service",
                    )
                # Enqueue under the lock: a close() racing this call cannot
                # shut the pool down between the drain check and the submit,
                # so an accepted future can never hit a shut-down pool.
                future = self._submit_pool.submit(self.compile, request)
                self.submitted_total += 1
        except BaseException:
            if self._admission is not None:
                self._admission.release()
            raise
        if self._admission is not None:
            future.add_done_callback(lambda _f: self._admission.release())
        return future

    def compile_batch(self, requests) -> list:
        """Serve a batch of requests, deduplicating blocks batch-wide.

        When every request targets the same strategy and that strategy
        implements ``compile_batch`` (full GRAPE does), the whole batch
        flows through one scheduler pass — N circuits sharing a block pay
        for it once even on a cold cache.  Mixed batches fall back to
        sequential :meth:`compile` calls (which still share the service's
        cross-call state).
        """
        requests = list(requests)
        if not requests:
            return []
        names = {request.strategy for request in requests}
        if len(names) == 1:
            strategy = get_strategy(requests[0].strategy)
            batch = getattr(strategy, "compile_batch", None)
            if batch is not None:
                self._begin_request()
                try:
                    results = batch(self, requests)
                    self._count_requests(requests[0].strategy, len(requests))
                    return results
                finally:
                    self._end_request()
        return [self.compile(request) for request in requests]

    def compile_parametrized(self, circuit, values):
        """The driver compiler-hook signature: bind ``values`` and compile.

        Lets a service drop straight into
        ``VQEDriver(compiler=service)`` / ``QAOADriver(compiler=service)``;
        returns the bare :class:`~repro.core.results.CompiledPulse` the
        drivers expect.  Uses :attr:`default_strategy`.
        """
        result = self.compile(
            CompileRequest(
                circuit=circuit,
                values=list(values),
                strategy=self.default_strategy,
                max_block_width=self.max_block_width,
            )
        )
        return result.compiled

    def device_for(self, circuit):
        """The service device, or the default grid sized for ``circuit``."""
        if self.device is not None:
            return self.device
        from repro.core.compiler import default_device_for

        return default_device_for(circuit)

    # -- telemetry -----------------------------------------------------------
    def stats(self) -> dict:
        """One report folding scheduler, cache, executor, and pool counters."""
        from repro.pipeline.executors import persistent_executor_stats
        from repro.pulse.grape.batched import batch_telemetry
        from repro.pulse.grape.seeding import warm_start_telemetry

        executor_info = self.executor.describe()
        return {
            "config": self.config.as_dict(),
            "requests": {
                "total": self.requests_total,
                "submitted": self.submitted_total,
                "by_strategy": dict(self.requests_by_strategy),
                "queue_depth": self.config.queue_depth,
                "backpressure_waits": self.backpressure_waits,
            },
            "scheduler": self.scheduler_state.as_dict(),
            "plan_cache": self.plan_cache.as_dict(),
            "cache": self.cache.stats(),
            "executor": executor_info,
            # Fleet telemetry (queue depth, worker hosts, autoscaler
            # counters) when the executor is a QueueDispatcher, else None.
            "fleet": (
                executor_info.get("fleet")
                if isinstance(executor_info, dict)
                else None
            ),
            "pools": persistent_executor_stats(),
            "grape_batch": batch_telemetry(),
            "warm_start": warm_start_telemetry(),
        }

    # -- lifecycle -----------------------------------------------------------
    def save_scheduler_state(self, path=None) -> int:
        """Spill the dedup memory to ``path`` (default: the configured
        ``scheduler_state_path``).  Returns the entry count written."""
        target = path or self.config.scheduler_state_path
        if not target:
            raise ReproError(
                "no path given and ServiceConfig.scheduler_state_path is unset"
            )
        # SchedulerState.save snapshots under the state's own lock.
        return self.scheduler_state.save(target)

    def close(self) -> None:
        """Shut the service down (idempotent).

        New submissions are rejected immediately, but
        already-accepted submissions drain to completion first — a future
        returned before ``close()`` never fails just because the service
        is shutting down.  Then the scheduler state spills (when
        ``scheduler_state_path`` is configured, so it includes the drained
        work) and the block executor's workers are released.  The pulse
        cache (and its on-disk library) stays valid — a later service
        pointed at the same directory starts warm.
        """
        with self._submit_pool_lock:
            if self._draining or self._closed:
                return
            self._draining = True
            pool, self._submit_pool = self._submit_pool, None
        # Queued futures still run self.compile here: _closed is not set
        # yet, only new submissions are being refused.
        if pool is not None:
            pool.shutdown(wait=True)
        try:
            with self._lock:
                self._closed = True
                # Direct compile() callers on other threads run outside
                # the lock; wait until the last one leaves before spilling
                # state and releasing the executor under their feet.
                while self._inflight:
                    self._idle.wait()
                if self.config.scheduler_state_path:
                    self.scheduler_state.save(self.config.scheduler_state_path)
        finally:
            # A failed state spill (unwritable path) must not leak the
            # executor's live workers.
            if hasattr(self.executor, "close"):
                self.executor.close()

    def __enter__(self) -> "CompilationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"CompilationService(requests={self.requests_total}, "
            f"executor={self.executor.name!r}, "
            f"known_blocks={len(self.scheduler_state)})"
        )
