"""Typed, immutable configuration for the compilation service.

:class:`ServiceConfig` consolidates every ``REPRO_*`` environment knob —
executor, worker count, cache directory/sharding/budget, prefetch, preset,
scheduler-state spill path, GRAPE batching, warm-start seeding, scan block
size — into one frozen dataclass.
:meth:`ServiceConfig.from_env` is the **only** code path in the whole
package that reads ``REPRO_*`` environment variables (a repo test greps
for strays), so "what configuration am I actually running with?" always
has one answer: ``python -m repro config show``.

Parsing is tolerant by design: this runs at import time (via
:mod:`repro.config`), so malformed values fall back to defaults with a
warning instead of making ``import repro`` crash.

This module sits *below* :mod:`repro.config` in the import graph (it
depends only on :mod:`repro.errors`), which is why the executor and shard
choice constants live here and are re-exported from :mod:`repro.config`
for backwards compatibility.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field, fields, replace

from repro.errors import ReproError

#: Executor names understood by the compilation pipeline.  The
#: ``*-persistent`` variants keep one worker pool alive across every
#: ``map`` call of a pipeline run instead of re-creating it per call.
EXECUTOR_CHOICES = (
    "serial",
    "auto",
    "thread",
    "process",
    "thread-persistent",
    "process-persistent",
)

#: Valid shard fan-outs for the on-disk pulse library: entries shard by a
#: whole-hex-character prefix of their unitary fingerprint, so the count
#: must be a power of 16.
CACHE_SHARD_CHOICES = (16, 256, 4096)

#: How fixed-block jobs leave the service: ``"executor"`` keeps them on
#: the in-process block executor; ``"queue"`` routes them through the
#: file-backed fleet queue to detached worker processes.
DISPATCHER_CHOICES = ("executor", "queue")


class ReproDeprecationWarning(DeprecationWarning):
    """Deprecation category for repro's legacy entry-point shims.

    A dedicated subclass so CI can run the suite with
    ``-W error::DeprecationWarning`` while downgrading exactly the shims'
    warnings back to non-fatal
    (``-W default::repro.service.config.ReproDeprecationWarning``), proving
    the old constructors still work and warn without masking third-party
    deprecations.
    """


def _env_number(
    env_name: str,
    field_name: str,
    kind,
    valid,
    requirement: str,
    values: dict,
    sources: dict,
) -> None:
    """Parse one numeric env var with the standard tolerant behaviour:
    unset/empty keeps the default, malformed or out-of-range warns."""
    raw = os.environ.get(env_name)
    if not raw:
        return
    try:
        value = kind(raw)
    except ValueError:
        noun = "an integer" if kind is int else "a number"
        warnings.warn(
            f"ignoring {env_name}={raw!r} (not {noun})", stacklevel=4
        )
        return
    if not valid(value):
        warnings.warn(
            f"ignoring {env_name}={value} ({requirement})", stacklevel=4
        )
        return
    values[field_name] = value
    sources[field_name] = "env"


def _env_bool(
    env_name: str, field_name: str, values: dict, sources: dict
) -> None:
    """Parse one boolean env var (same spellings as REPRO_PREFETCH)."""
    raw = os.environ.get(env_name, "")
    if not raw:
        return
    lowered = raw.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        values[field_name] = True
        sources[field_name] = "env"
    elif lowered in ("0", "false", "no", "off"):
        values[field_name] = False
        sources[field_name] = "env"
    else:
        warnings.warn(
            f"ignoring {env_name}={raw!r} (expected a boolean)", stacklevel=4
        )


def warn_deprecated(old: str, strategy: str) -> None:
    """Emit the one-per-call shim warning pointing at the service facade."""
    warnings.warn(
        f"{old} is deprecated; use repro.service.CompilationService."
        f"compile(CompileRequest(strategy={strategy!r})) — the legacy class "
        "delegates to the same registered strategy implementation",
        ReproDeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class ServiceConfig:
    """Execution settings for the compilation service (and everything
    underneath it).

    Attributes
    ----------
    executor:
        How independent per-block GRAPE searches are dispatched
        (``REPRO_EXECUTOR``): ``"auto"`` (default) picks per host —
        inline execution plus cross-block batched GRAPE on 1–2 CPU
        machines, the shared thread pool for large maps elsewhere — or
        force ``"serial"``, ``"thread"``, ``"process"``, or the
        ``"thread-persistent"`` / ``"process-persistent"`` variants that
        amortize one long-lived pool across every map of a run.
    max_workers:
        Worker count for the parallel executors (``REPRO_MAX_WORKERS``);
        ``None`` means ``os.cpu_count()``.
    submit_workers:
        Size of the request-level thread pool behind
        :meth:`repro.service.CompilationService.submit`
        (``REPRO_SUBMIT_WORKERS``).  Defaults to
        ``min(8, os.cpu_count())`` — enough to overlap non-conflicting
        requests without oversubscribing block-level workers.
    cache_dir:
        Directory for the persistent pulse cache (``REPRO_CACHE_DIR``).
        ``None`` keeps the cache purely in memory.
    cache_shards:
        Shard fan-out of the on-disk pulse library
        (``REPRO_CACHE_SHARDS``); one of :data:`CACHE_SHARD_CHOICES`.
    cache_budget_mb:
        Default size budget for :meth:`repro.library.PulseLibrary.gc`
        (``REPRO_CACHE_BUDGET_MB``).  ``None`` means unbounded.
    prefetch:
        Manifest-aware shard prefetch for the on-disk pulse library
        (``REPRO_PREFETCH``).
    preset:
        The active workload preset name (``REPRO_PRESET``); validated
        lazily by :func:`repro.config.get_preset` so an unknown name only
        errors when actually used.
    scheduler_state_path:
        Where the service spills its cross-call block-dedup memory
        (``REPRO_SCHEDULER_STATE``).  When set, a new
        :class:`~repro.service.CompilationService` resumes the dedup
        memory a previous process saved there, and saves its own on
        ``close()``.  ``None`` keeps scheduler state process-local.
    grape_batch:
        Whether the batch scheduler may stack same-shape cold blocks into
        the cross-block batched GRAPE kernel
        (:mod:`repro.pulse.grape.batched`) when the executor runs tasks
        inline (``REPRO_GRAPE_BATCH``).  Results are bit-identical to the
        per-block kernel; this knob exists for debugging and A/B timing.
    grape_batch_size:
        Cap on how many blocks one batched GRAPE group stacks
        (``REPRO_GRAPE_BATCH_SIZE``); bounds the stacked kernel's
        working-set memory.
    warm_start:
        Whether cache-missing blocks warm-start GRAPE from the nearest
        cached pulse — or, for seedless two-qubit blocks, from the
        analytic KAK seed — instead of random fields
        (``REPRO_WARM_START``).  A best-of guard makes seeding strictly
        safe (never a worse pulse than a cold start), so this knob exists
        for debugging and A/B iteration counts.
    warm_start_max_dist:
        Acceptance threshold for approximate-match retrieval
        (``REPRO_WARM_START_MAX_DIST``): a cached pulse seeds a new block
        only when the phase-invariant trace distance
        ``sqrt(1 - |tr(U†V)|/d)`` between the targets is at most this, in
        ``(0, 1]``.  ``1.0`` accepts any same-context pulse; the default
        0.25 keeps seeds to genuinely nearby unitaries.
    scan_block:
        Fixed block size for the blocked propagator scan of
        :mod:`repro.linalg.scan` (``REPRO_SCAN_BLOCK``).  ``None`` (the
        default) keeps the auto heuristic (``≈√n_steps``); setting it
        pins the chunk length for cache tuning on unusual hosts.
    dispatcher:
        Where fixed-block jobs are compiled (``REPRO_DISPATCHER``):
        ``"executor"`` (default) keeps them on the in-process block
        executor; ``"queue"`` sends them through the
        :class:`repro.fleet.QueueDispatcher` to detached worker
        processes sharing the fleet queue directory.
    fleet_dir:
        The fleet queue directory (``REPRO_FLEET_DIR``).  ``None`` with
        ``dispatcher="queue"`` derives ``<cache_dir>/fleet``; with no
        cache directory either, service construction fails.
    fleet_workers:
        How many local worker processes the queue dispatcher spawns and
        keeps alive (``REPRO_FLEET_WORKERS``).  ``0`` (default) spawns
        none — jobs run inline unless external workers drain the queue.
    queue_depth:
        Bounded admission for :meth:`repro.service.CompilationService
        .submit` (``REPRO_QUEUE_DEPTH``): at most this many requests may
        be queued or running at once; further ``submit`` calls block
        until a slot frees (backpressure).  ``None`` (default) admits
        without bound.
    fleet_lease_ttl_s:
        Lease time-to-live for fleet jobs (``REPRO_FLEET_LEASE_TTL``,
        seconds).  A claimed job whose lease heartbeat goes silent for
        this long is reclaimed by another worker.
    fleet_heartbeat_s:
        Worker heartbeat interval (``REPRO_FLEET_HEARTBEAT``, seconds).
        ``None`` (default) derives ``lease_ttl / 3`` — three missed beats
        before a lease goes stale.  Must be shorter than the lease TTL.
    fleet_autoscale:
        Let the queue dispatcher scale its local worker pool from queue
        depth (``REPRO_FLEET_AUTOSCALE``) between ``fleet_min_workers``
        and ``fleet_max_workers``, instead of keeping a fixed
        ``fleet_workers`` count alive.
    fleet_min_workers:
        Autoscaler floor (``REPRO_FLEET_MIN_WORKERS``): core workers kept
        alive even when the queue is empty.
    fleet_max_workers:
        Autoscaler ceiling (``REPRO_FLEET_MAX_WORKERS``): surge workers
        stop being added once the pool reaches this size.
    server_host / server_port:
        Bind address for ``python -m repro serve``
        (``REPRO_SERVER_HOST`` / ``REPRO_SERVER_PORT``).  Port ``0``
        picks an ephemeral port.
    server_max_body_mb:
        Largest ``POST /v1/compile`` body the HTTP frontend accepts
        (``REPRO_SERVER_MAX_BODY_MB``); bigger requests get 413.
    server_ticket_ttl_s:
        How long the HTTP frontend retains a finished, unfetched async
        ticket (``REPRO_SERVER_TICKET_TTL``, seconds).
    """

    executor: str = "auto"
    max_workers: int | None = None
    submit_workers: int = field(
        default_factory=lambda: min(8, os.cpu_count() or 1)
    )
    cache_dir: str | None = None
    cache_shards: int = 16
    cache_budget_mb: float | None = None
    prefetch: bool = False
    preset: str = "ci"
    scheduler_state_path: str | None = None
    grape_batch: bool = True
    grape_batch_size: int = 16
    warm_start: bool = True
    warm_start_max_dist: float = 0.25
    scan_block: int | None = None
    dispatcher: str = "executor"
    fleet_dir: str | None = None
    fleet_workers: int = 0
    queue_depth: int | None = None
    fleet_lease_ttl_s: float = 30.0
    fleet_heartbeat_s: float | None = None
    fleet_autoscale: bool = False
    fleet_min_workers: int = 0
    fleet_max_workers: int = 4
    server_host: str = "127.0.0.1"
    server_port: int = 8642
    server_max_body_mb: float = 32.0
    server_ticket_ttl_s: float = 3600.0

    def __post_init__(self):
        if self.executor not in EXECUTOR_CHOICES:
            raise ReproError(
                f"unknown executor {self.executor!r}; available: {EXECUTOR_CHOICES}"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ReproError(f"max_workers must be >= 1, got {self.max_workers}")
        if self.submit_workers < 1:
            raise ReproError(
                f"submit_workers must be >= 1, got {self.submit_workers}"
            )
        if self.cache_shards not in CACHE_SHARD_CHOICES:
            raise ReproError(
                f"cache_shards must be one of {CACHE_SHARD_CHOICES}, "
                f"got {self.cache_shards}"
            )
        if self.cache_budget_mb is not None and self.cache_budget_mb <= 0:
            raise ReproError(
                f"cache_budget_mb must be positive, got {self.cache_budget_mb}"
            )
        if self.grape_batch_size < 1:
            raise ReproError(
                f"grape_batch_size must be >= 1, got {self.grape_batch_size}"
            )
        if not 0.0 < self.warm_start_max_dist <= 1.0:
            raise ReproError(
                "warm_start_max_dist must be in (0, 1], "
                f"got {self.warm_start_max_dist}"
            )
        if self.scan_block is not None and self.scan_block < 1:
            raise ReproError(
                f"scan_block must be >= 1, got {self.scan_block}"
            )
        if self.dispatcher not in DISPATCHER_CHOICES:
            raise ReproError(
                f"unknown dispatcher {self.dispatcher!r}; "
                f"available: {DISPATCHER_CHOICES}"
            )
        if self.fleet_workers < 0:
            raise ReproError(
                f"fleet_workers must be >= 0, got {self.fleet_workers}"
            )
        if self.queue_depth is not None and self.queue_depth < 1:
            raise ReproError(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )
        if self.fleet_lease_ttl_s <= 0:
            raise ReproError(
                f"fleet_lease_ttl_s must be positive, got {self.fleet_lease_ttl_s}"
            )
        if self.fleet_heartbeat_s is not None:
            if self.fleet_heartbeat_s <= 0:
                raise ReproError(
                    f"fleet_heartbeat_s must be positive, "
                    f"got {self.fleet_heartbeat_s}"
                )
            if self.fleet_heartbeat_s >= self.fleet_lease_ttl_s:
                raise ReproError(
                    f"fleet_heartbeat_s ({self.fleet_heartbeat_s}) must be "
                    f"shorter than fleet_lease_ttl_s "
                    f"({self.fleet_lease_ttl_s}) or every lease goes stale "
                    "between beats"
                )
        if self.fleet_min_workers < 0:
            raise ReproError(
                f"fleet_min_workers must be >= 0, got {self.fleet_min_workers}"
            )
        if self.fleet_max_workers < 1:
            raise ReproError(
                f"fleet_max_workers must be >= 1, got {self.fleet_max_workers}"
            )
        if self.fleet_min_workers > self.fleet_max_workers:
            raise ReproError(
                f"fleet_min_workers ({self.fleet_min_workers}) must not "
                f"exceed fleet_max_workers ({self.fleet_max_workers})"
            )
        if not 0 <= self.server_port <= 65535:
            raise ReproError(
                f"server_port must be in [0, 65535], got {self.server_port}"
            )
        if self.server_max_body_mb <= 0:
            raise ReproError(
                f"server_max_body_mb must be positive, "
                f"got {self.server_max_body_mb}"
            )
        if self.server_ticket_ttl_s <= 0:
            raise ReproError(
                f"server_ticket_ttl_s must be positive, "
                f"got {self.server_ticket_ttl_s}"
            )

    # -- construction --------------------------------------------------------
    @classmethod
    def from_env(cls) -> "ServiceConfig":
        """The configuration selected by the ``REPRO_*`` environment.

        The single supported env-reading path: every other module obtains
        environment-derived settings through this constructor (directly or
        via :mod:`repro.config`'s compatibility wrappers).
        """
        config, _sources = cls.from_env_with_sources()
        return config

    @classmethod
    def from_env_with_sources(cls) -> tuple:
        """Like :meth:`from_env`, plus a ``{field: "env" | "default"}`` map.

        The source map is what ``python -m repro config show`` prints, so
        debugging a mis-set environment never requires a source dive.
        """
        values: dict = {}
        sources = {f.name: "default" for f in fields(cls)}

        executor = os.environ.get("REPRO_EXECUTOR")
        if executor is not None:
            if executor in EXECUTOR_CHOICES:
                values["executor"] = executor
                sources["executor"] = "env"
            else:
                warnings.warn(
                    f"ignoring REPRO_EXECUTOR={executor!r}; "
                    f"available: {EXECUTOR_CHOICES}",
                    stacklevel=3,
                )

        workers_raw = os.environ.get("REPRO_MAX_WORKERS")
        if workers_raw:
            try:
                workers = int(workers_raw)
            except ValueError:
                warnings.warn(
                    f"ignoring REPRO_MAX_WORKERS={workers_raw!r} (not an integer)",
                    stacklevel=3,
                )
            else:
                if workers < 1:
                    warnings.warn(
                        f"ignoring REPRO_MAX_WORKERS={workers} (must be >= 1)",
                        stacklevel=3,
                    )
                else:
                    values["max_workers"] = workers
                    sources["max_workers"] = "env"

        submit_raw = os.environ.get("REPRO_SUBMIT_WORKERS")
        if submit_raw:
            try:
                submit_workers = int(submit_raw)
            except ValueError:
                warnings.warn(
                    f"ignoring REPRO_SUBMIT_WORKERS={submit_raw!r} "
                    "(not an integer)",
                    stacklevel=3,
                )
            else:
                if submit_workers < 1:
                    warnings.warn(
                        f"ignoring REPRO_SUBMIT_WORKERS={submit_workers} "
                        "(must be >= 1)",
                        stacklevel=3,
                    )
                else:
                    values["submit_workers"] = submit_workers
                    sources["submit_workers"] = "env"

        cache_dir = os.environ.get("REPRO_CACHE_DIR")
        if cache_dir:
            values["cache_dir"] = cache_dir
            sources["cache_dir"] = "env"

        shards_raw = os.environ.get("REPRO_CACHE_SHARDS")
        if shards_raw:
            try:
                candidate = int(shards_raw)
            except ValueError:
                candidate = None
            if candidate in CACHE_SHARD_CHOICES:
                values["cache_shards"] = candidate
                sources["cache_shards"] = "env"
            else:
                warnings.warn(
                    f"ignoring REPRO_CACHE_SHARDS={shards_raw!r}; "
                    f"available: {CACHE_SHARD_CHOICES}",
                    stacklevel=3,
                )

        budget_raw = os.environ.get("REPRO_CACHE_BUDGET_MB")
        if budget_raw:
            try:
                budget = float(budget_raw)
            except ValueError:
                warnings.warn(
                    f"ignoring REPRO_CACHE_BUDGET_MB={budget_raw!r} (not a number)",
                    stacklevel=3,
                )
            else:
                if budget <= 0:
                    warnings.warn(
                        f"ignoring REPRO_CACHE_BUDGET_MB={budget} (must be positive)",
                        stacklevel=3,
                    )
                else:
                    values["cache_budget_mb"] = budget
                    sources["cache_budget_mb"] = "env"

        prefetch_raw = os.environ.get("REPRO_PREFETCH", "")
        if prefetch_raw:
            lowered = prefetch_raw.strip().lower()
            if lowered in ("1", "true", "yes", "on"):
                values["prefetch"] = True
                sources["prefetch"] = "env"
            elif lowered in ("0", "false", "no", "off"):
                values["prefetch"] = False
                sources["prefetch"] = "env"
            else:
                warnings.warn(
                    f"ignoring REPRO_PREFETCH={prefetch_raw!r} (expected a boolean)",
                    stacklevel=3,
                )

        preset = os.environ.get("REPRO_PRESET")
        if preset:
            values["preset"] = preset
            sources["preset"] = "env"

        state_path = os.environ.get("REPRO_SCHEDULER_STATE")
        if state_path:
            values["scheduler_state_path"] = state_path
            sources["scheduler_state_path"] = "env"

        batch_raw = os.environ.get("REPRO_GRAPE_BATCH", "")
        if batch_raw:
            lowered = batch_raw.strip().lower()
            if lowered in ("1", "true", "yes", "on"):
                values["grape_batch"] = True
                sources["grape_batch"] = "env"
            elif lowered in ("0", "false", "no", "off"):
                values["grape_batch"] = False
                sources["grape_batch"] = "env"
            else:
                warnings.warn(
                    f"ignoring REPRO_GRAPE_BATCH={batch_raw!r} "
                    "(expected a boolean)",
                    stacklevel=3,
                )

        batch_size_raw = os.environ.get("REPRO_GRAPE_BATCH_SIZE")
        if batch_size_raw:
            try:
                batch_size = int(batch_size_raw)
            except ValueError:
                warnings.warn(
                    f"ignoring REPRO_GRAPE_BATCH_SIZE={batch_size_raw!r} "
                    "(not an integer)",
                    stacklevel=3,
                )
            else:
                if batch_size < 1:
                    warnings.warn(
                        f"ignoring REPRO_GRAPE_BATCH_SIZE={batch_size} "
                        "(must be >= 1)",
                        stacklevel=3,
                    )
                else:
                    values["grape_batch_size"] = batch_size
                    sources["grape_batch_size"] = "env"

        warm_raw = os.environ.get("REPRO_WARM_START", "")
        if warm_raw:
            lowered = warm_raw.strip().lower()
            if lowered in ("1", "true", "yes", "on"):
                values["warm_start"] = True
                sources["warm_start"] = "env"
            elif lowered in ("0", "false", "no", "off"):
                values["warm_start"] = False
                sources["warm_start"] = "env"
            else:
                warnings.warn(
                    f"ignoring REPRO_WARM_START={warm_raw!r} "
                    "(expected a boolean)",
                    stacklevel=3,
                )

        dist_raw = os.environ.get("REPRO_WARM_START_MAX_DIST")
        if dist_raw:
            try:
                dist = float(dist_raw)
            except ValueError:
                warnings.warn(
                    f"ignoring REPRO_WARM_START_MAX_DIST={dist_raw!r} "
                    "(not a number)",
                    stacklevel=3,
                )
            else:
                if not 0.0 < dist <= 1.0:
                    warnings.warn(
                        f"ignoring REPRO_WARM_START_MAX_DIST={dist} "
                        "(must be in (0, 1])",
                        stacklevel=3,
                    )
                else:
                    values["warm_start_max_dist"] = dist
                    sources["warm_start_max_dist"] = "env"

        scan_raw = os.environ.get("REPRO_SCAN_BLOCK")
        if scan_raw:
            try:
                scan_block = int(scan_raw)
            except ValueError:
                warnings.warn(
                    f"ignoring REPRO_SCAN_BLOCK={scan_raw!r} (not an integer)",
                    stacklevel=3,
                )
            else:
                if scan_block < 1:
                    warnings.warn(
                        f"ignoring REPRO_SCAN_BLOCK={scan_block} (must be >= 1)",
                        stacklevel=3,
                    )
                else:
                    values["scan_block"] = scan_block
                    sources["scan_block"] = "env"

        dispatcher = os.environ.get("REPRO_DISPATCHER")
        if dispatcher is not None:
            if dispatcher in DISPATCHER_CHOICES:
                values["dispatcher"] = dispatcher
                sources["dispatcher"] = "env"
            else:
                warnings.warn(
                    f"ignoring REPRO_DISPATCHER={dispatcher!r}; "
                    f"available: {DISPATCHER_CHOICES}",
                    stacklevel=3,
                )

        fleet_dir = os.environ.get("REPRO_FLEET_DIR")
        if fleet_dir:
            values["fleet_dir"] = fleet_dir
            sources["fleet_dir"] = "env"

        fleet_raw = os.environ.get("REPRO_FLEET_WORKERS")
        if fleet_raw:
            try:
                fleet_workers = int(fleet_raw)
            except ValueError:
                warnings.warn(
                    f"ignoring REPRO_FLEET_WORKERS={fleet_raw!r} "
                    "(not an integer)",
                    stacklevel=3,
                )
            else:
                if fleet_workers < 0:
                    warnings.warn(
                        f"ignoring REPRO_FLEET_WORKERS={fleet_workers} "
                        "(must be >= 0)",
                        stacklevel=3,
                    )
                else:
                    values["fleet_workers"] = fleet_workers
                    sources["fleet_workers"] = "env"

        depth_raw = os.environ.get("REPRO_QUEUE_DEPTH")
        if depth_raw:
            try:
                queue_depth = int(depth_raw)
            except ValueError:
                warnings.warn(
                    f"ignoring REPRO_QUEUE_DEPTH={depth_raw!r} "
                    "(not an integer)",
                    stacklevel=3,
                )
            else:
                if queue_depth < 1:
                    warnings.warn(
                        f"ignoring REPRO_QUEUE_DEPTH={queue_depth} "
                        "(must be >= 1)",
                        stacklevel=3,
                    )
                else:
                    values["queue_depth"] = queue_depth
                    sources["queue_depth"] = "env"

        _env_number(
            "REPRO_FLEET_LEASE_TTL", "fleet_lease_ttl_s", float,
            lambda v: v > 0, "must be positive", values, sources,
        )
        _env_number(
            "REPRO_FLEET_HEARTBEAT", "fleet_heartbeat_s", float,
            lambda v: v > 0, "must be positive", values, sources,
        )
        _env_bool("REPRO_FLEET_AUTOSCALE", "fleet_autoscale", values, sources)
        _env_number(
            "REPRO_FLEET_MIN_WORKERS", "fleet_min_workers", int,
            lambda v: v >= 0, "must be >= 0", values, sources,
        )
        _env_number(
            "REPRO_FLEET_MAX_WORKERS", "fleet_max_workers", int,
            lambda v: v >= 1, "must be >= 1", values, sources,
        )
        server_host = os.environ.get("REPRO_SERVER_HOST")
        if server_host:
            values["server_host"] = server_host
            sources["server_host"] = "env"
        _env_number(
            "REPRO_SERVER_PORT", "server_port", int,
            lambda v: 0 <= v <= 65535, "must be in [0, 65535]",
            values, sources,
        )
        _env_number(
            "REPRO_SERVER_MAX_BODY_MB", "server_max_body_mb", float,
            lambda v: v > 0, "must be positive", values, sources,
        )
        _env_number(
            "REPRO_SERVER_TICKET_TTL", "server_ticket_ttl_s", float,
            lambda v: v > 0, "must be positive", values, sources,
        )

        # Cross-field constraints stay tolerant here (this runs at import
        # time): a combination the constructor would reject falls back to
        # defaults with a warning instead of crashing ``import repro``.
        ttl = values.get("fleet_lease_ttl_s", 30.0)
        heartbeat = values.get("fleet_heartbeat_s")
        if heartbeat is not None and heartbeat >= ttl:
            warnings.warn(
                f"ignoring REPRO_FLEET_HEARTBEAT={heartbeat} (must be "
                f"shorter than the lease TTL of {ttl})",
                stacklevel=3,
            )
            del values["fleet_heartbeat_s"]
            sources["fleet_heartbeat_s"] = "default"
        min_workers = values.get("fleet_min_workers", 0)
        max_workers = values.get("fleet_max_workers", 4)
        if min_workers > max_workers:
            warnings.warn(
                f"ignoring REPRO_FLEET_MIN_WORKERS={min_workers} / "
                f"REPRO_FLEET_MAX_WORKERS={max_workers} (min exceeds max)",
                stacklevel=3,
            )
            values.pop("fleet_min_workers", None)
            values.pop("fleet_max_workers", None)
            sources["fleet_min_workers"] = "default"
            sources["fleet_max_workers"] = "default"

        return cls(**values), sources

    # -- utilities -----------------------------------------------------------
    def replace(self, **overrides) -> "ServiceConfig":
        """A copy with ``overrides`` applied (validation re-runs)."""
        return replace(self, **overrides)

    def as_dict(self) -> dict:
        """Field → value, in declaration order (for stats and the CLI)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}
