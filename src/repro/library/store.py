"""The sharded, indexed, GC-managed pulse store.

:class:`PulseLibrary` owns a directory of opaque payload files (pickled
GRAPE cache entries, in practice) laid out for paper-scale libraries and
multi-process sharing:

``<directory>/``
    ``library.json`` — layout descriptor (layout version, shard count,
    filename prefix length).  Written once at creation; the layout of an
    existing library is immutable.
``<directory>/<prefix>/``
    One shard per filename prefix (e.g. ``ab/``), so a million-entry
    library fans out across shards instead of stressing one directory.
    Each shard holds its data files plus a ``manifest.json`` index
    (:mod:`repro.library.manifest`) and a ``.lock`` file guarding
    manifest updates.

Filenames begin with the block unitary's hex fingerprint
(:func:`repro.core.cache.unitary_fingerprint`), so the shard *is* the
fingerprint prefix — SHA-256 uniformity gives balanced shards for free.

Consistency model
-----------------
Data files are the source of truth and are written atomically (unique temp
name + ``os.replace``), so readers never observe partial entries and
concurrent writers race benignly.  Manifests are an advisory index updated
under a cross-process :class:`~repro.library.locking.FileLock`; a crash
between data write and index update leaves an *orphan* that is still
served by :meth:`get` and adopted by the next :meth:`gc`.  Eviction is
LRU by the manifest's ``last_used`` stamp against a size budget
(``REPRO_CACHE_BUDGET_MB``), and only ever happens inside an explicit
:meth:`gc` call — normal puts never block on collection.

Legacy flat directories (the pre-library ``PersistentPulseCache`` layout:
``*.pulse`` files directly in the root) are migrated in place, once, on
first open: each file moves bit-identically into its shard and gains an
index entry.

With prefetch enabled (``REPRO_PREFETCH`` / ``prefetch=True``), the first
:meth:`get` touching a shard bulk-loads every entry its manifest lists
into an in-memory layer; later reads in that shard are served from memory
(``prefetches`` / ``prefetch_hits`` telemetry) while LRU stamps keep being
recorded, so a long-lived variational session streaming over a warm
library pays one sequential sweep per shard instead of one file open per
lookup.
"""

from __future__ import annotations

import math
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path

from repro.config import CACHE_SHARD_CHOICES
from repro.errors import ReproError
from repro.library.locking import FileLock
from repro.library.manifest import (
    MANIFEST_FILENAME,
    empty_manifest,
    entry_record,
    load_manifest,
    rebuild_entries,
    save_manifest,
)

#: On-disk layout version recorded in ``library.json``.
LIBRARY_LAYOUT_VERSION = 1

LIBRARY_DESCRIPTOR = "library.json"

#: Shard counts that map to whole hex-character prefixes of the fingerprint
#: (one source of truth: :data:`repro.config.CACHE_SHARD_CHOICES`).
VALID_SHARD_COUNTS = CACHE_SHARD_CHOICES

#: Temp files older than this are considered crash debris and collectable.
_STALE_TMP_SECONDS = 60.0

#: Ceiling on the in-memory prefetch buffer.  A library byte budget
#: (``REPRO_CACHE_BUDGET_MB``) lower than this wins; without one the
#: buffer still cannot grow past this cap — oldest-loaded payloads are
#: dropped first (they re-read from disk transparently).
_PREFETCH_BUDGET_MB = 256.0


@dataclass
class GCReport:
    """Outcome of one :meth:`PulseLibrary.gc` pass."""

    entries_before: int = 0
    entries_after: int = 0
    bytes_before: int = 0
    bytes_after: int = 0
    evicted: int = 0
    bytes_freed: int = 0
    orphans_adopted: int = 0
    ghosts_dropped: int = 0
    stale_tmp_removed: int = 0
    budget_bytes: int | None = None
    wall_time_s: float = 0.0
    evicted_names: list = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "entries_before": self.entries_before,
            "entries_after": self.entries_after,
            "bytes_before": self.bytes_before,
            "bytes_after": self.bytes_after,
            "evicted": self.evicted,
            "bytes_freed": self.bytes_freed,
            "orphans_adopted": self.orphans_adopted,
            "ghosts_dropped": self.ghosts_dropped,
            "stale_tmp_removed": self.stale_tmp_removed,
            "budget_bytes": self.budget_bytes,
            "wall_time_s": round(self.wall_time_s, 6),
        }


def _resolve_shards(shards: int | None) -> int:
    if shards is None:
        from repro.config import get_pipeline_config

        shards = get_pipeline_config().cache_shards
    if shards not in VALID_SHARD_COUNTS:
        raise ReproError(
            f"cache shard count must be one of {VALID_SHARD_COUNTS}, got {shards!r}"
        )
    return shards


class PulseLibrary:
    """A sharded on-disk store of fingerprint-named payload files."""

    suffix = ".pulse"

    def __init__(
        self,
        directory: str | os.PathLike,
        shards: int | None = None,
        budget_mb: float | None = None,
        prefetch: bool | None = None,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        from repro.config import get_pipeline_config

        if budget_mb is None:
            budget_mb = get_pipeline_config().cache_budget_mb
        if prefetch is None:
            prefetch = get_pipeline_config().prefetch
        self.budget_mb = budget_mb
        self._global_lock = FileLock(self.directory / ".lock")
        self.migrated_entries = 0
        self.puts = 0
        self.gets = 0
        self.get_hits = 0
        self.index_errors = 0
        # Manifest-aware shard prefetch: on first touch of a shard, every
        # entry its manifest lists is bulk-read into this in-memory layer,
        # so a variational run streaming over one warm library pays one
        # sequential sweep per shard instead of one file open per lookup.
        # The buffer is byte-bounded (oldest-loaded dropped first) and
        # guarded by two lock tiers: one short-held lock for the dict
        # itself, plus one lock per shard held across that shard's bulk
        # read, so a slow first-touch sweep never stalls other shards.
        self.prefetch_enabled = bool(prefetch)
        self.prefetches = 0
        self.prefetch_hits = 0
        self._prefetched: dict = {}  # name -> payload bytes, insertion order
        self._prefetched_bytes = 0
        self._prefetched_shards: set = set()
        self._prefetch_lock = threading.Lock()
        self._prefetch_shard_locks: dict = {}  # shard name -> Lock
        budget_cap = _PREFETCH_BUDGET_MB
        if budget_mb is not None:
            budget_cap = min(budget_cap, budget_mb)
        self._prefetch_budget_bytes = int(budget_cap * 1024 * 1024)
        descriptor = self._load_descriptor()
        if descriptor is not None:
            # An existing library's layout is immutable: the descriptor wins
            # over arguments/config so every process fans out identically.
            self.shards = int(descriptor["shards"])
            self.prefix_len = int(descriptor["prefix_len"])
        else:
            self.shards = _resolve_shards(shards)
            self.prefix_len = int(round(math.log(self.shards, 16)))
            self._write_descriptor()
        self._migrate_flat_layout()

    # -- layout ----------------------------------------------------------------
    def _load_descriptor(self) -> dict | None:
        path = self.directory / LIBRARY_DESCRIPTOR
        try:
            import json

            data = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if (
            isinstance(data, dict)
            and data.get("layout_version") == LIBRARY_LAYOUT_VERSION
            and data.get("shards") in VALID_SHARD_COUNTS
        ):
            return data
        return None

    def _write_descriptor(self) -> None:
        import json

        with self._global_lock:
            # A racing creator may have won the lock first; their layout
            # then governs this library.
            existing = self._load_descriptor()
            if existing is not None:
                self.shards = int(existing["shards"])
                self.prefix_len = int(existing["prefix_len"])
                return
            payload = {
                "layout_version": LIBRARY_LAYOUT_VERSION,
                "shards": self.shards,
                "prefix_len": self.prefix_len,
                "created": round(time.time(), 3),
            }
            tmp = self.directory / f".{LIBRARY_DESCRIPTOR}.{os.getpid()}.tmp"
            tmp.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
            os.replace(tmp, self.directory / LIBRARY_DESCRIPTOR)

    def shard_name(self, name: str) -> str:
        """The shard directory (fingerprint prefix) an entry lives in."""
        prefix = name[: self.prefix_len].lower()
        if len(prefix) == self.prefix_len and all(
            c in "0123456789abcdef" for c in prefix
        ):
            return prefix
        # Defensive: non-hex-named payloads are fanned out by name hash so
        # they still land in a valid shard instead of crashing the store.
        import hashlib

        return hashlib.sha256(name.encode()).hexdigest()[: self.prefix_len]

    def shard_dir(self, name: str) -> Path:
        return self.directory / self.shard_name(name)

    def path_for(self, name: str) -> Path:
        """Absolute path of entry ``name`` (whether or not it exists yet)."""
        return self.shard_dir(name) / name

    def _shard_lock(self, shard_dir: Path) -> FileLock:
        return FileLock(shard_dir / ".lock")

    def shard_dirs(self) -> list:
        """Existing shard directories, sorted by prefix."""
        return sorted(
            p
            for p in self.directory.iterdir()
            if p.is_dir() and len(p.name) == self.prefix_len
        )

    # -- migration -------------------------------------------------------------
    def _migrate_flat_layout(self) -> None:
        """Adopt a legacy flat directory (``*.pulse`` files in the root).

        Runs under the global lock so exactly one process performs each
        move; ``os.replace`` keeps every payload bit-identical.  Racing
        processes simply find nothing left to migrate.
        """
        flat = [p for p in self.directory.glob(f"*{self.suffix}") if p.is_file()]
        if not flat:
            return
        with self._global_lock:
            self._migrate_locked()

    def _migrate_locked(self) -> None:
        """Migration body; caller must hold the global lock.

        Moves are grouped by destination shard so each shard's manifest is
        loaded and rewritten once, not once per file — a paper-scale flat
        directory migrates in O(entries), not O(entries²/shards).
        """
        by_shard: dict = {}
        for path in sorted(self.directory.glob(f"*{self.suffix}")):
            if path.is_file():
                by_shard.setdefault(self.shard_name(path.name), []).append(path)
        for shard_name, paths in by_shard.items():
            shard = self.directory / shard_name
            shard.mkdir(exist_ok=True)
            manifest = load_manifest(shard)
            moved = 0
            for path in paths:
                try:
                    stat = path.stat()
                    os.replace(path, shard / path.name)
                except OSError:
                    # Another writer beat us or the file vanished; gc will
                    # reconcile whatever remains.
                    self.index_errors += 1
                    continue
                manifest["entries"][path.name] = entry_record(
                    stat.st_size, stat.st_mtime, stat.st_mtime
                )
                moved += 1
            if moved:
                save_manifest(shard, manifest)
                self.migrated_entries += moved

    # -- entry operations ------------------------------------------------------
    def put(
        self,
        name: str,
        payload: bytes,
        schema_version: int | None = None,
        meta: dict | None = None,
    ) -> None:
        """Store ``payload`` under ``name`` (overwrites) and index it.

        The data write is atomic and lock-free; only the manifest update
        takes the shard lock.  Index failures are counted, not raised —
        the entry itself is durable either way.  ``meta`` is stored under
        the record's ``"target"`` key (the approximate-match metadata of
        :mod:`repro.library.neighbors`); an overwrite without ``meta``
        keeps whatever metadata the previous record carried.
        """
        shard = self.shard_dir(name)
        shard.mkdir(exist_ok=True)
        path = shard / name
        tmp = path.with_name(f".{name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp")
        try:
            with open(tmp, "wb") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except OSError:
            # Don't leave partial temp files behind (e.g. ENOSPC mid-write)
            # on top of whatever condition caused the failure.
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            raise
        self.puts += 1
        if self.prefetch_enabled:
            shard_name = self.shard_name(name)
            # Keep an already-prefetched shard coherent with the write.
            # Check-and-insert runs under the shard's load lock, and only
            # while the data file still exists: a delete racing this put
            # (unlink, then pop under the same lock) then either removes
            # what we insert or makes the existence check fail — the
            # buffer can never outlive the file.
            with self._prefetch_shard_lock(shard_name):
                if shard_name in self._prefetched_shards and path.is_file():
                    self._buffer_insert(name, payload, overwrite=True)
        now = time.time()
        try:
            with self._shard_lock(shard):
                manifest = load_manifest(shard)
                previous = manifest["entries"].get(name)
                # A damaged record (non-dict junk, missing/null stamp from a
                # hand-edited or legacy manifest) must not crash the write.
                created = now
                target_meta = meta
                if isinstance(previous, dict):
                    stamp = previous.get("created")
                    if isinstance(stamp, (int, float)) and not isinstance(
                        stamp, bool
                    ):
                        created = stamp
                    if target_meta is None:
                        target_meta = previous.get("target")
                record = entry_record(len(payload), created, now, schema_version)
                if isinstance(target_meta, dict):
                    record["target"] = target_meta
                manifest["entries"][name] = record
                save_manifest(shard, manifest)
        except OSError:
            self.index_errors += 1

    def get(self, name: str) -> bytes | None:
        """Read entry ``name``, bumping its LRU stamp on a hit.

        A missing entry is ``None``; any other read failure (permissions,
        I/O error) propagates as :class:`OSError` so callers can tell a
        cold miss from a broken store.  With prefetch enabled
        (``REPRO_PREFETCH``), the first touch of a shard bulk-loads every
        entry its manifest lists, and later reads in that shard are served
        from memory (``prefetch_hits``); LRU stamps are still recorded so
        eviction decisions stay honest.
        """
        self.gets += 1
        if self.prefetch_enabled:
            self._ensure_prefetched(self.shard_name(name))
            with self._prefetch_lock:
                payload = self._prefetched.get(name)
            if payload is not None:
                self.get_hits += 1
                self.prefetch_hits += 1
                # LRU stamp without manifest I/O: bump the file mtime only
                # (cheap), and let gc's reconcile pass fold newer mtimes
                # into ``last_used`` — paying a lock + manifest rewrite per
                # memory-served get would cost more than the read it saved.
                now = time.time()
                try:
                    os.utime(self.path_for(name), (now, now))
                except OSError:
                    pass
                return payload
        path = self.path_for(name)
        try:
            payload = path.read_bytes()
        except FileNotFoundError:
            # A not-yet-migrated flat file (e.g. written concurrently by an
            # old-layout process sharing the directory) still serves.
            try:
                payload = (self.directory / name).read_bytes()
            except FileNotFoundError:
                return None
            path = self.directory / name
        self.get_hits += 1
        self._touch(name, path)
        # Orphans the manifest missed stay on the disk path (no buffer
        # insert here: adopting a just-read payload could race a concurrent
        # delete and resurrect it); the next gc indexes them for prefetch.
        return payload

    def _prefetch_shard_lock(self, shard_name: str) -> threading.Lock:
        with self._prefetch_lock:
            lock = self._prefetch_shard_locks.get(shard_name)
            if lock is None:
                lock = self._prefetch_shard_locks[shard_name] = threading.Lock()
        return lock

    def _buffer_insert(self, name: str, payload: bytes, overwrite: bool) -> None:
        """Insert into the buffer, enforcing the byte budget (FIFO drop)."""
        with self._prefetch_lock:
            existing = self._prefetched.get(name)
            if existing is not None:
                if not overwrite:
                    return
                self._prefetched_bytes -= len(self._prefetched.pop(name))
            self._prefetched[name] = payload
            self._prefetched_bytes += len(payload)
            while (
                self._prefetched_bytes > self._prefetch_budget_bytes
                and self._prefetched
            ):
                oldest = next(iter(self._prefetched))
                self._prefetched_bytes -= len(self._prefetched.pop(oldest))

    def _buffer_pop(self, name: str) -> None:
        with self._prefetch_lock:
            payload = self._prefetched.pop(name, None)
            if payload is not None:
                self._prefetched_bytes -= len(payload)

    def _ensure_prefetched(self, shard_name: str) -> None:
        """Bulk-load ``shard_name``'s manifest-listed entries, once.

        The read-and-insert runs under *this shard's* prefetch lock.  That
        keeps the layer coherent against concurrent ``delete``/``gc``: both
        unlink the data file before taking the same shard lock to pop the
        buffer entry, so a bulk load either observes the unlink (the read
        fails, nothing inserted) or completes first (the subsequent pop
        removes what it inserted).  Per-shard granularity means a slow
        first-touch sweep never blocks lookups in other shards.
        """
        if shard_name in self._prefetched_shards:
            return  # racy fast path; the lock below re-checks
        with self._prefetch_shard_lock(shard_name):
            if shard_name in self._prefetched_shards:
                return
            shard = self.directory / shard_name
            if shard.is_dir():
                for entry_name in load_manifest(shard)["entries"]:
                    try:
                        payload = (shard / entry_name).read_bytes()
                    except OSError:
                        continue  # ghost entry; the next gc reconciles
                    # Writes that raced the bulk read are newer: keep them.
                    self._buffer_insert(entry_name, payload, overwrite=False)
                self.prefetches += 1
            self._prefetched_shards.add(shard_name)

    def _touch(self, name: str, path: Path) -> None:
        """Record a use of ``name``: file mtime plus the manifest stamp."""
        now = time.time()
        try:
            os.utime(path, (now, now))
        except OSError:
            pass
        shard = path.parent
        if shard == self.directory:  # un-migrated flat entry; no manifest yet
            return
        try:
            with self._shard_lock(shard):
                manifest = load_manifest(shard)
                record = manifest["entries"].get(name)
                if record is None:
                    try:
                        size = path.stat().st_size
                    except OSError:
                        size = 0
                    record = entry_record(size, now, now)
                    manifest["entries"][name] = record
                record["last_used"] = round(now, 3)
                save_manifest(shard, manifest)
        except OSError:
            self.index_errors += 1

    def delete(self, name: str) -> bool:
        """Remove entry ``name``; returns whether a file was deleted."""
        path = self.path_for(name)
        shard = path.parent
        removed = False
        try:
            path.unlink()
            removed = True
        except OSError:
            pass
        if self.prefetch_enabled:
            # Pop strictly after the unlink, under the shard's load lock: a
            # racing bulk load then either saw the unlink (read failed) or
            # completed its inserts before this pop removes the entry.
            with self._prefetch_shard_lock(self.shard_name(name)):
                self._buffer_pop(name)
        if shard.is_dir():
            try:
                with self._shard_lock(shard):
                    manifest = load_manifest(shard)
                    if manifest["entries"].pop(name, None) is not None:
                        save_manifest(shard, manifest)
            except OSError:
                self.index_errors += 1
        return removed

    def __contains__(self, name: str) -> bool:
        return self.path_for(name).is_file()

    def names(self) -> list:
        """Every entry name currently on disk, sorted."""
        found = [p.name for p in self.directory.glob(f"*{self.suffix}")]
        for shard in self.shard_dirs():
            found.extend(p.name for p in shard.glob(f"*{self.suffix}"))
        return sorted(found)

    def count(self) -> int:
        """Number of entries on disk (data files are the source of truth)."""
        return len(self.names())

    def total_bytes(self) -> int:
        """Total payload bytes on disk across all shards."""
        total = 0
        for shard in [self.directory, *self.shard_dirs()]:
            for path in shard.glob(f"*{self.suffix}"):
                try:
                    total += path.stat().st_size
                except OSError:
                    pass
        return total

    # -- garbage collection ----------------------------------------------------
    def gc(self, budget_mb: float | None = None) -> GCReport:
        """Reconcile the index and evict LRU entries down to the budget.

        ``budget_mb`` falls back to the library's configured budget
        (``REPRO_CACHE_BUDGET_MB``); with no budget at all the pass only
        reconciles manifests and sweeps crash debris.  The whole pass runs
        under the global cross-process lock, so concurrent ``gc`` calls
        serialize; concurrent ``put``/``get`` traffic stays safe because
        data writes are atomic and manifest updates take shard locks.
        """
        start = time.perf_counter()
        if budget_mb is None:
            budget_mb = self.budget_mb
        report = GCReport(
            budget_bytes=None if budget_mb is None else int(budget_mb * 1024 * 1024)
        )
        with self._global_lock:
            self._migrate_locked()
            inventory: list = []  # (last_used, size, name, shard_dir)
            manifests: dict = {}
            for shard in self.shard_dirs():
                with self._shard_lock(shard):
                    manifest = load_manifest(shard)
                    before = set(manifest["entries"])
                    rebuild_entries(shard, manifest, self.suffix)
                    report.ghosts_dropped += len(before - set(manifest["entries"]))
                    report.orphans_adopted += len(set(manifest["entries"]) - before)
                    report.stale_tmp_removed += self._sweep_tmp(shard)
                    save_manifest(shard, manifest)
                manifests[shard] = manifest
                for name, record in manifest["entries"].items():
                    # Reconciliation heals stamps above, but belt-and-braces:
                    # a record damaged between passes (hand-edited manifest,
                    # legacy migration) must not abort eviction mid-gc.
                    last_used = record.get("last_used")
                    if not isinstance(last_used, (int, float)) or isinstance(
                        last_used, bool
                    ):
                        last_used = 0.0
                    size = record.get("size")
                    if not isinstance(size, (int, float)) or isinstance(size, bool):
                        size = 0
                    inventory.append((last_used, size, name, shard))
            report.stale_tmp_removed += self._sweep_tmp(self.directory)
            report.entries_before = len(inventory)
            report.bytes_before = sum(size for _, size, _, _ in inventory)
            total = report.bytes_before
            if report.budget_bytes is not None and total > report.budget_bytes:
                inventory.sort()  # oldest last_used first
                touched = set()
                for last_used, size, name, shard in inventory:
                    if total <= report.budget_bytes:
                        break
                    try:
                        (shard / name).unlink()
                    except OSError:
                        continue
                    manifest = manifests[shard]
                    manifest["entries"].pop(name, None)
                    manifest["evictions"] = manifest.get("evictions", 0) + 1
                    touched.add(shard)
                    total -= size
                    report.evicted += 1
                    report.bytes_freed += size
                    report.evicted_names.append(name)
                for shard in touched:
                    with self._shard_lock(shard):
                        # Re-merge against concurrent puts: keep entries that
                        # appeared since our snapshot, drop only what we evicted.
                        live = load_manifest(shard)
                        for name in report.evicted_names:
                            live["entries"].pop(name, None)
                        live["evictions"] = manifests[shard]["evictions"]
                        rebuild_entries(shard, live, self.suffix)
                        save_manifest(shard, live)
            report.entries_after = report.entries_before - report.evicted
            report.bytes_after = report.bytes_before - report.bytes_freed
        if self.prefetch_enabled and report.evicted_names:
            for name in report.evicted_names:
                with self._prefetch_shard_lock(self.shard_name(name)):
                    self._buffer_pop(name)
        report.wall_time_s = time.perf_counter() - start
        return report

    def _sweep_tmp(self, directory: Path) -> int:
        """Remove crash-debris temp files that are clearly not in flight."""
        removed = 0
        cutoff = time.time() - _STALE_TMP_SECONDS
        for tmp in directory.glob(".*.tmp"):
            try:
                if tmp.stat().st_mtime < cutoff:
                    tmp.unlink()
                    removed += 1
            except OSError:
                pass
        return removed

    # The prefetch buffer and its lock stay behind at pickle boundaries
    # (process-pool workers re-prefetch on demand against their own copy);
    # everything else — paths, layout, counters — travels.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_prefetch_lock"]
        state["_prefetched"] = {}
        state["_prefetched_bytes"] = 0
        state["_prefetched_shards"] = set()
        state["_prefetch_shard_locks"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._prefetch_lock = threading.Lock()

    # -- telemetry -------------------------------------------------------------
    def index_bytes(self) -> int:
        """Total size of the manifest files (the on-disk index)."""
        total = 0
        for shard in self.shard_dirs():
            try:
                total += (shard / MANIFEST_FILENAME).stat().st_size
            except OSError:
                pass
        return total

    @staticmethod
    def empty_stats(directory: str | os.PathLike) -> dict:
        """The :meth:`stats` shape for a library that was never created.

        Lets inspection surfaces (``cache-stats`` / ``library stats``)
        report a zeroed snapshot with the exact same schema as a live
        library, without creating the directory as instantiation would.
        """
        return {
            "directory": str(directory),
            "layout_version": LIBRARY_LAYOUT_VERSION,
            "shards": 0,
            "prefix_len": 0,
            "entries": 0,
            "indexed_entries": 0,
            "total_bytes": 0,
            "index_bytes": 0,
            "nonempty_shards": 0,
            "max_shard_entries": 0,
            "evictions": 0,
            "budget_mb": None,
            "migrated_entries": 0,
            "puts": 0,
            "gets": 0,
            "get_hits": 0,
            "index_errors": 0,
            "prefetch_enabled": False,
            "prefetches": 0,
            "prefetch_hits": 0,
            "prefetched_entries": 0,
            "prefetched_bytes": 0,
        }

    def stats(self) -> dict:
        """Layout, occupancy, and lifetime counters for this library."""
        occupancy = {}
        evictions = 0
        indexed = 0
        for shard in self.shard_dirs():
            manifest = load_manifest(shard)
            count = len(manifest["entries"])
            evictions += manifest.get("evictions", 0)
            indexed += count
            if count:
                occupancy[shard.name] = count
        entries = self.count()
        return {
            "directory": str(self.directory),
            "layout_version": LIBRARY_LAYOUT_VERSION,
            "shards": self.shards,
            "prefix_len": self.prefix_len,
            "entries": entries,
            "indexed_entries": indexed,
            "total_bytes": self.total_bytes(),
            "index_bytes": self.index_bytes(),
            "nonempty_shards": len(occupancy),
            "max_shard_entries": max(occupancy.values(), default=0),
            "evictions": evictions,
            "budget_mb": self.budget_mb,
            "migrated_entries": self.migrated_entries,
            "puts": self.puts,
            "gets": self.gets,
            "get_hits": self.get_hits,
            "index_errors": self.index_errors,
            "prefetch_enabled": self.prefetch_enabled,
            "prefetches": self.prefetches,
            "prefetch_hits": self.prefetch_hits,
            "prefetched_entries": len(self._prefetched),
            "prefetched_bytes": self._prefetched_bytes,
        }

    def __repr__(self) -> str:
        return (
            f"PulseLibrary({str(self.directory)!r}, shards={self.shards}, "
            f"entries={self.count()})"
        )
