"""The sharded, indexed, GC-managed pulse store.

:class:`PulseLibrary` owns a directory of opaque payload files (pickled
GRAPE cache entries, in practice) laid out for paper-scale libraries and
multi-process sharing:

``<directory>/``
    ``library.json`` — layout descriptor (layout version, shard count,
    filename prefix length).  Written once at creation; the layout of an
    existing library is immutable.
``<directory>/<prefix>/``
    One shard per filename prefix (e.g. ``ab/``), so a million-entry
    library fans out across shards instead of stressing one directory.
    Each shard holds its data files plus a ``manifest.json`` index
    (:mod:`repro.library.manifest`) and a ``.lock`` file guarding
    manifest updates.

Filenames begin with the block unitary's hex fingerprint
(:func:`repro.core.cache.unitary_fingerprint`), so the shard *is* the
fingerprint prefix — SHA-256 uniformity gives balanced shards for free.

Consistency model
-----------------
Data files are the source of truth and are written atomically (unique temp
name + ``os.replace``), so readers never observe partial entries and
concurrent writers race benignly.  Manifests are an advisory index updated
under a cross-process :class:`~repro.library.locking.FileLock`; a crash
between data write and index update leaves an *orphan* that is still
served by :meth:`get` and adopted by the next :meth:`gc`.  Eviction is
LRU by the manifest's ``last_used`` stamp against a size budget
(``REPRO_CACHE_BUDGET_MB``), and only ever happens inside an explicit
:meth:`gc` call — normal puts never block on collection.

Legacy flat directories (the pre-library ``PersistentPulseCache`` layout:
``*.pulse`` files directly in the root) are migrated in place, once, on
first open: each file moves bit-identically into its shard and gains an
index entry.
"""

from __future__ import annotations

import math
import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path

from repro.config import CACHE_SHARD_CHOICES
from repro.errors import ReproError
from repro.library.locking import FileLock
from repro.library.manifest import (
    MANIFEST_FILENAME,
    empty_manifest,
    entry_record,
    load_manifest,
    rebuild_entries,
    save_manifest,
)

#: On-disk layout version recorded in ``library.json``.
LIBRARY_LAYOUT_VERSION = 1

LIBRARY_DESCRIPTOR = "library.json"

#: Shard counts that map to whole hex-character prefixes of the fingerprint
#: (one source of truth: :data:`repro.config.CACHE_SHARD_CHOICES`).
VALID_SHARD_COUNTS = CACHE_SHARD_CHOICES

#: Temp files older than this are considered crash debris and collectable.
_STALE_TMP_SECONDS = 60.0


@dataclass
class GCReport:
    """Outcome of one :meth:`PulseLibrary.gc` pass."""

    entries_before: int = 0
    entries_after: int = 0
    bytes_before: int = 0
    bytes_after: int = 0
    evicted: int = 0
    bytes_freed: int = 0
    orphans_adopted: int = 0
    ghosts_dropped: int = 0
    stale_tmp_removed: int = 0
    budget_bytes: int | None = None
    wall_time_s: float = 0.0
    evicted_names: list = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "entries_before": self.entries_before,
            "entries_after": self.entries_after,
            "bytes_before": self.bytes_before,
            "bytes_after": self.bytes_after,
            "evicted": self.evicted,
            "bytes_freed": self.bytes_freed,
            "orphans_adopted": self.orphans_adopted,
            "ghosts_dropped": self.ghosts_dropped,
            "stale_tmp_removed": self.stale_tmp_removed,
            "budget_bytes": self.budget_bytes,
            "wall_time_s": round(self.wall_time_s, 6),
        }


def _resolve_shards(shards: int | None) -> int:
    if shards is None:
        from repro.config import get_pipeline_config

        shards = get_pipeline_config().cache_shards
    if shards not in VALID_SHARD_COUNTS:
        raise ReproError(
            f"cache shard count must be one of {VALID_SHARD_COUNTS}, got {shards!r}"
        )
    return shards


class PulseLibrary:
    """A sharded on-disk store of fingerprint-named payload files."""

    suffix = ".pulse"

    def __init__(
        self,
        directory: str | os.PathLike,
        shards: int | None = None,
        budget_mb: float | None = None,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        if budget_mb is None:
            from repro.config import get_pipeline_config

            budget_mb = get_pipeline_config().cache_budget_mb
        self.budget_mb = budget_mb
        self._global_lock = FileLock(self.directory / ".lock")
        self.migrated_entries = 0
        self.puts = 0
        self.gets = 0
        self.get_hits = 0
        self.index_errors = 0
        descriptor = self._load_descriptor()
        if descriptor is not None:
            # An existing library's layout is immutable: the descriptor wins
            # over arguments/config so every process fans out identically.
            self.shards = int(descriptor["shards"])
            self.prefix_len = int(descriptor["prefix_len"])
        else:
            self.shards = _resolve_shards(shards)
            self.prefix_len = int(round(math.log(self.shards, 16)))
            self._write_descriptor()
        self._migrate_flat_layout()

    # -- layout ----------------------------------------------------------------
    def _load_descriptor(self) -> dict | None:
        path = self.directory / LIBRARY_DESCRIPTOR
        try:
            import json

            data = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if (
            isinstance(data, dict)
            and data.get("layout_version") == LIBRARY_LAYOUT_VERSION
            and data.get("shards") in VALID_SHARD_COUNTS
        ):
            return data
        return None

    def _write_descriptor(self) -> None:
        import json

        with self._global_lock:
            # A racing creator may have won the lock first; their layout
            # then governs this library.
            existing = self._load_descriptor()
            if existing is not None:
                self.shards = int(existing["shards"])
                self.prefix_len = int(existing["prefix_len"])
                return
            payload = {
                "layout_version": LIBRARY_LAYOUT_VERSION,
                "shards": self.shards,
                "prefix_len": self.prefix_len,
                "created": round(time.time(), 3),
            }
            tmp = self.directory / f".{LIBRARY_DESCRIPTOR}.{os.getpid()}.tmp"
            tmp.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
            os.replace(tmp, self.directory / LIBRARY_DESCRIPTOR)

    def shard_name(self, name: str) -> str:
        """The shard directory (fingerprint prefix) an entry lives in."""
        prefix = name[: self.prefix_len].lower()
        if len(prefix) == self.prefix_len and all(
            c in "0123456789abcdef" for c in prefix
        ):
            return prefix
        # Defensive: non-hex-named payloads are fanned out by name hash so
        # they still land in a valid shard instead of crashing the store.
        import hashlib

        return hashlib.sha256(name.encode()).hexdigest()[: self.prefix_len]

    def shard_dir(self, name: str) -> Path:
        return self.directory / self.shard_name(name)

    def path_for(self, name: str) -> Path:
        """Absolute path of entry ``name`` (whether or not it exists yet)."""
        return self.shard_dir(name) / name

    def _shard_lock(self, shard_dir: Path) -> FileLock:
        return FileLock(shard_dir / ".lock")

    def shard_dirs(self) -> list:
        """Existing shard directories, sorted by prefix."""
        return sorted(
            p
            for p in self.directory.iterdir()
            if p.is_dir() and len(p.name) == self.prefix_len
        )

    # -- migration -------------------------------------------------------------
    def _migrate_flat_layout(self) -> None:
        """Adopt a legacy flat directory (``*.pulse`` files in the root).

        Runs under the global lock so exactly one process performs each
        move; ``os.replace`` keeps every payload bit-identical.  Racing
        processes simply find nothing left to migrate.
        """
        flat = [p for p in self.directory.glob(f"*{self.suffix}") if p.is_file()]
        if not flat:
            return
        with self._global_lock:
            self._migrate_locked()

    def _migrate_locked(self) -> None:
        """Migration body; caller must hold the global lock.

        Moves are grouped by destination shard so each shard's manifest is
        loaded and rewritten once, not once per file — a paper-scale flat
        directory migrates in O(entries), not O(entries²/shards).
        """
        by_shard: dict = {}
        for path in sorted(self.directory.glob(f"*{self.suffix}")):
            if path.is_file():
                by_shard.setdefault(self.shard_name(path.name), []).append(path)
        for shard_name, paths in by_shard.items():
            shard = self.directory / shard_name
            shard.mkdir(exist_ok=True)
            manifest = load_manifest(shard)
            moved = 0
            for path in paths:
                try:
                    stat = path.stat()
                    os.replace(path, shard / path.name)
                except OSError:
                    # Another writer beat us or the file vanished; gc will
                    # reconcile whatever remains.
                    self.index_errors += 1
                    continue
                manifest["entries"][path.name] = entry_record(
                    stat.st_size, stat.st_mtime, stat.st_mtime
                )
                moved += 1
            if moved:
                save_manifest(shard, manifest)
                self.migrated_entries += moved

    # -- entry operations ------------------------------------------------------
    def put(self, name: str, payload: bytes, schema_version: int | None = None) -> None:
        """Store ``payload`` under ``name`` (overwrites) and index it.

        The data write is atomic and lock-free; only the manifest update
        takes the shard lock.  Index failures are counted, not raised —
        the entry itself is durable either way.
        """
        shard = self.shard_dir(name)
        shard.mkdir(exist_ok=True)
        path = shard / name
        tmp = path.with_name(f".{name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp")
        try:
            with open(tmp, "wb") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except OSError:
            # Don't leave partial temp files behind (e.g. ENOSPC mid-write)
            # on top of whatever condition caused the failure.
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            raise
        self.puts += 1
        now = time.time()
        try:
            with self._shard_lock(shard):
                manifest = load_manifest(shard)
                previous = manifest["entries"].get(name)
                created = previous["created"] if previous else now
                manifest["entries"][name] = entry_record(
                    len(payload), created, now, schema_version
                )
                save_manifest(shard, manifest)
        except OSError:
            self.index_errors += 1

    def get(self, name: str) -> bytes | None:
        """Read entry ``name``, bumping its LRU stamp on a hit.

        A missing entry is ``None``; any other read failure (permissions,
        I/O error) propagates as :class:`OSError` so callers can tell a
        cold miss from a broken store.
        """
        self.gets += 1
        path = self.path_for(name)
        try:
            payload = path.read_bytes()
        except FileNotFoundError:
            # A not-yet-migrated flat file (e.g. written concurrently by an
            # old-layout process sharing the directory) still serves.
            try:
                payload = (self.directory / name).read_bytes()
            except FileNotFoundError:
                return None
            path = self.directory / name
        self.get_hits += 1
        self._touch(name, path)
        return payload

    def _touch(self, name: str, path: Path) -> None:
        """Record a use of ``name``: file mtime plus the manifest stamp."""
        now = time.time()
        try:
            os.utime(path, (now, now))
        except OSError:
            pass
        shard = path.parent
        if shard == self.directory:  # un-migrated flat entry; no manifest yet
            return
        try:
            with self._shard_lock(shard):
                manifest = load_manifest(shard)
                record = manifest["entries"].get(name)
                if record is None:
                    try:
                        size = path.stat().st_size
                    except OSError:
                        size = 0
                    record = entry_record(size, now, now)
                    manifest["entries"][name] = record
                record["last_used"] = round(now, 3)
                save_manifest(shard, manifest)
        except OSError:
            self.index_errors += 1

    def delete(self, name: str) -> bool:
        """Remove entry ``name``; returns whether a file was deleted."""
        path = self.path_for(name)
        shard = path.parent
        removed = False
        try:
            path.unlink()
            removed = True
        except OSError:
            pass
        if shard.is_dir():
            try:
                with self._shard_lock(shard):
                    manifest = load_manifest(shard)
                    if manifest["entries"].pop(name, None) is not None:
                        save_manifest(shard, manifest)
            except OSError:
                self.index_errors += 1
        return removed

    def __contains__(self, name: str) -> bool:
        return self.path_for(name).is_file()

    def names(self) -> list:
        """Every entry name currently on disk, sorted."""
        found = [p.name for p in self.directory.glob(f"*{self.suffix}")]
        for shard in self.shard_dirs():
            found.extend(p.name for p in shard.glob(f"*{self.suffix}"))
        return sorted(found)

    def count(self) -> int:
        """Number of entries on disk (data files are the source of truth)."""
        return len(self.names())

    def total_bytes(self) -> int:
        """Total payload bytes on disk across all shards."""
        total = 0
        for shard in [self.directory, *self.shard_dirs()]:
            for path in shard.glob(f"*{self.suffix}"):
                try:
                    total += path.stat().st_size
                except OSError:
                    pass
        return total

    # -- garbage collection ----------------------------------------------------
    def gc(self, budget_mb: float | None = None) -> GCReport:
        """Reconcile the index and evict LRU entries down to the budget.

        ``budget_mb`` falls back to the library's configured budget
        (``REPRO_CACHE_BUDGET_MB``); with no budget at all the pass only
        reconciles manifests and sweeps crash debris.  The whole pass runs
        under the global cross-process lock, so concurrent ``gc`` calls
        serialize; concurrent ``put``/``get`` traffic stays safe because
        data writes are atomic and manifest updates take shard locks.
        """
        start = time.perf_counter()
        if budget_mb is None:
            budget_mb = self.budget_mb
        report = GCReport(
            budget_bytes=None if budget_mb is None else int(budget_mb * 1024 * 1024)
        )
        with self._global_lock:
            self._migrate_locked()
            inventory: list = []  # (last_used, size, name, shard_dir)
            manifests: dict = {}
            for shard in self.shard_dirs():
                with self._shard_lock(shard):
                    manifest = load_manifest(shard)
                    before = set(manifest["entries"])
                    rebuild_entries(shard, manifest, self.suffix)
                    report.ghosts_dropped += len(before - set(manifest["entries"]))
                    report.orphans_adopted += len(set(manifest["entries"]) - before)
                    report.stale_tmp_removed += self._sweep_tmp(shard)
                    save_manifest(shard, manifest)
                manifests[shard] = manifest
                for name, record in manifest["entries"].items():
                    inventory.append(
                        (record["last_used"], record["size"], name, shard)
                    )
            report.stale_tmp_removed += self._sweep_tmp(self.directory)
            report.entries_before = len(inventory)
            report.bytes_before = sum(size for _, size, _, _ in inventory)
            total = report.bytes_before
            if report.budget_bytes is not None and total > report.budget_bytes:
                inventory.sort()  # oldest last_used first
                touched = set()
                for last_used, size, name, shard in inventory:
                    if total <= report.budget_bytes:
                        break
                    try:
                        (shard / name).unlink()
                    except OSError:
                        continue
                    manifest = manifests[shard]
                    manifest["entries"].pop(name, None)
                    manifest["evictions"] = manifest.get("evictions", 0) + 1
                    touched.add(shard)
                    total -= size
                    report.evicted += 1
                    report.bytes_freed += size
                    report.evicted_names.append(name)
                for shard in touched:
                    with self._shard_lock(shard):
                        # Re-merge against concurrent puts: keep entries that
                        # appeared since our snapshot, drop only what we evicted.
                        live = load_manifest(shard)
                        for name in report.evicted_names:
                            live["entries"].pop(name, None)
                        live["evictions"] = manifests[shard]["evictions"]
                        rebuild_entries(shard, live, self.suffix)
                        save_manifest(shard, live)
            report.entries_after = report.entries_before - report.evicted
            report.bytes_after = report.bytes_before - report.bytes_freed
        report.wall_time_s = time.perf_counter() - start
        return report

    def _sweep_tmp(self, directory: Path) -> int:
        """Remove crash-debris temp files that are clearly not in flight."""
        removed = 0
        cutoff = time.time() - _STALE_TMP_SECONDS
        for tmp in directory.glob(".*.tmp"):
            try:
                if tmp.stat().st_mtime < cutoff:
                    tmp.unlink()
                    removed += 1
            except OSError:
                pass
        return removed

    # -- telemetry -------------------------------------------------------------
    def index_bytes(self) -> int:
        """Total size of the manifest files (the on-disk index)."""
        total = 0
        for shard in self.shard_dirs():
            try:
                total += (shard / MANIFEST_FILENAME).stat().st_size
            except OSError:
                pass
        return total

    def stats(self) -> dict:
        """Layout, occupancy, and lifetime counters for this library."""
        occupancy = {}
        evictions = 0
        indexed = 0
        for shard in self.shard_dirs():
            manifest = load_manifest(shard)
            count = len(manifest["entries"])
            evictions += manifest.get("evictions", 0)
            indexed += count
            if count:
                occupancy[shard.name] = count
        entries = self.count()
        return {
            "directory": str(self.directory),
            "layout_version": LIBRARY_LAYOUT_VERSION,
            "shards": self.shards,
            "prefix_len": self.prefix_len,
            "entries": entries,
            "indexed_entries": indexed,
            "total_bytes": self.total_bytes(),
            "index_bytes": self.index_bytes(),
            "nonempty_shards": len(occupancy),
            "max_shard_entries": max(occupancy.values(), default=0),
            "evictions": evictions,
            "budget_mb": self.budget_mb,
            "migrated_entries": self.migrated_entries,
            "puts": self.puts,
            "gets": self.gets,
            "get_hits": self.get_hits,
            "index_errors": self.index_errors,
        }

    def __repr__(self) -> str:
        return (
            f"PulseLibrary({str(self.directory)!r}, shards={self.shards}, "
            f"entries={self.count()})"
        )
