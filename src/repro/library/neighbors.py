"""Approximate-match retrieval over the pulse library.

The sharded :class:`~repro.library.store.PulseLibrary` is an *exact*
fingerprint store: a block whose unitary differs in the tenth decimal from
a cached one misses and pays the full GRAPE bill.  This module turns the
same manifests into an approximate-match index so near-miss blocks can
*seed* GRAPE from the closest cached pulse instead of starting cold.

Per-entry target metadata
-------------------------
Writers attach a ``"target"`` record to each manifest entry at ``put``
time (see :func:`target_metadata`):

.. code-block:: json

    "abcdef…-0123….pulse": {
      "size": 18432, "created": …, "last_used": …,
      "target": {"dim": 4, "ctx": "9f…16 hex…", "sig": "<base64 float32>"}
    }

``dim`` is the target unitary's dimension, ``ctx`` the 16-hex digest of
the physical-context tuple (identical to the context half of the cache
filename, so entries compiled under a different time step / fidelity
target / channel layout can never be confused), and ``sig`` the
phase-canonicalized unitary itself, serialized as interleaved
little-endian float32 — compact enough to live in the JSON index, precise
enough (~1e-7) for distance ranking.

Legacy entries written before this metadata existed are *healed lazily*:
the target unitary cannot be recovered from a fingerprint hash, so healing
happens at cache-hit time, when the caller holds the target anyway
(:meth:`NeighborIndex.annotate`).

Distance
--------
:func:`signature_distance` is the phase-invariant trace distance

    ``d(U, V) = sqrt(max(0, 1 - |tr(U† V)| / dim))  ∈ [0, 1]``

— 0 for unitaries equal up to global phase, 1 for trace-orthogonal ones.
It is monotone in the GRAPE overlap infidelity, so "nearest cached pulse"
means "pulse whose replay comes closest to the new target".

Search is bucketed by ``(dim, ctx)`` and threshold-gated
(``REPRO_WARM_START_MAX_DIST``): a match farther than the threshold is
worse than no seed at all.  The parsed index is cached in memory and
rebuilt when the owning library's ``puts`` counter moves; entries another
process adds become visible at the next rebuild (or an explicit
:meth:`NeighborIndex.refresh`) — staleness only costs a missed seed, never
a wrong pulse, because seeds are re-optimized and best-of guarded.
"""

from __future__ import annotations

import base64
import hashlib
import threading
from dataclasses import dataclass

import numpy as np

from repro.library.manifest import load_manifest, save_manifest

__all__ = [
    "NeighborHit",
    "NeighborIndex",
    "context_token",
    "decode_signature",
    "encode_signature",
    "signature_distance",
    "target_metadata",
]


def context_token(context: tuple) -> str:
    """16-hex digest of a physical-context tuple.

    Matches the context half of the persistent cache's filenames
    (:func:`repro.core.cache._key_filename`), so one token identifies the
    same compilation context in both the exact store and this index.
    """
    return hashlib.sha256(repr(context).encode()).hexdigest()[:16]


def _canonical_phase(u: np.ndarray) -> np.ndarray:
    """Rotate ``u`` so its largest-magnitude entry is real-positive.

    The same canonicalization as :func:`repro.core.cache.unitary_fingerprint`
    — signatures of phase-equivalent unitaries serialize identically.
    """
    u = np.asarray(u, dtype=complex)
    flat = u.ravel()
    pivot = flat[np.argmax(np.abs(flat))]
    if np.abs(pivot) > 1e-12:
        u = u * (np.abs(pivot) / pivot)
    return u


def encode_signature(unitary: np.ndarray) -> str:
    """Serialize a unitary as base64 interleaved little-endian float32."""
    u = _canonical_phase(unitary)
    interleaved = np.empty(u.size * 2, dtype="<f4")
    interleaved[0::2] = u.real.ravel()
    interleaved[1::2] = u.imag.ravel()
    return base64.b64encode(interleaved.tobytes()).decode("ascii")


def decode_signature(text: str) -> np.ndarray | None:
    """Inverse of :func:`encode_signature`; ``None`` for damaged payloads."""
    try:
        raw = np.frombuffer(base64.b64decode(text.encode("ascii")), dtype="<f4")
    except (ValueError, AttributeError):
        return None
    if raw.size % 2:
        return None
    dim = round(np.sqrt(raw.size / 2))
    if dim < 1 or 2 * dim * dim != raw.size:
        return None
    u = raw[0::2].astype(float) + 1j * raw[1::2].astype(float)
    return u.reshape(dim, dim)


def signature_distance(u: np.ndarray, v: np.ndarray) -> float:
    """Phase-invariant trace distance ``sqrt(max(0, 1 - |tr(U†V)|/dim))``."""
    u = np.asarray(u, dtype=complex)
    v = np.asarray(v, dtype=complex)
    dim = u.shape[0]
    overlap = abs(np.vdot(u, v)) / dim  # vdot(U, V) = tr(U† V)
    return float(np.sqrt(max(0.0, 1.0 - overlap)))


def target_metadata(target: np.ndarray, context: tuple) -> dict:
    """The per-entry ``"target"`` manifest record for one cached pulse."""
    target = np.asarray(target, dtype=complex)
    return {
        "dim": int(target.shape[0]),
        "ctx": context_token(context),
        "sig": encode_signature(target),
    }


@dataclass(frozen=True)
class NeighborHit:
    """The nearest cached pulse found for a target, with its distance."""

    name: str
    distance: float


def _valid_meta(meta) -> bool:
    return (
        isinstance(meta, dict)
        and isinstance(meta.get("dim"), int)
        and isinstance(meta.get("ctx"), str)
        and isinstance(meta.get("sig"), str)
    )


class NeighborIndex:
    """In-memory ``(dim, ctx)``-bucketed view of a library's target metadata.

    Thread-safe; one index per :class:`PulseLibrary`.  The scan walks every
    shard manifest once and is re-run whenever the library's ``puts``
    counter has moved since the last build, so a long-lived process sees
    its own writes without polling the filesystem per lookup.
    """

    def __init__(self, library):
        self.library = library
        self._lock = threading.Lock()
        self._buckets: dict = {}  # (dim, ctx) -> {name: sig string}
        self._decoded: dict = {}  # name -> np.ndarray (lazily decoded)
        self._built_at_puts: int | None = None
        # While frozen, search sees only the names captured at freeze
        # time (depth-counted; see PulseCache.freeze_neighbors for why).
        self._frozen_depth = 0
        self._frozen_names: set | None = None
        self.lookups = 0
        self.hits = 0
        self.annotated = 0

    # The lock stays behind at pickle boundaries (the process-pool block
    # executor ships compilers, cache and index included); workers rebuild
    # their own scan lazily.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        state["_buckets"] = {}
        state["_decoded"] = {}
        state["_built_at_puts"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- build -----------------------------------------------------------------
    def refresh(self) -> int:
        """Rescan every shard manifest; returns the indexed entry count."""
        buckets: dict = {}
        for shard in self.library.shard_dirs():
            for name, record in load_manifest(shard)["entries"].items():
                meta = record.get("target") if isinstance(record, dict) else None
                if _valid_meta(meta):
                    buckets.setdefault((meta["dim"], meta["ctx"]), {})[name] = (
                        meta["sig"]
                    )
        with self._lock:
            self._buckets = buckets
            # Drop decoded arrays for entries that vanished (gc/eviction).
            live = {n for bucket in buckets.values() for n in bucket}
            self._decoded = {
                n: sig for n, sig in self._decoded.items() if n in live
            }
            self._built_at_puts = self.library.puts
            return sum(len(b) for b in buckets.values())

    def _ensure_fresh(self) -> None:
        with self._lock:
            stale = self._built_at_puts != self.library.puts
        if stale:
            self.refresh()

    # -- freeze ----------------------------------------------------------------
    def freeze(self) -> None:
        """Pin search to the entries annotated right now.

        The frozen-name snapshot — not the bucket dicts — is what pickles
        across to process-pool workers, so a worker that rebuilds its own
        scan mid-pass still resolves exactly the pre-pass candidate set.
        """
        self._ensure_fresh()
        with self._lock:
            self._frozen_depth += 1
            if self._frozen_names is None:
                self._frozen_names = {
                    name
                    for bucket in self._buckets.values()
                    for name in bucket
                }

    def thaw(self) -> None:
        """Undo one :meth:`freeze` (outermost thaw unpins)."""
        with self._lock:
            self._frozen_depth = max(0, self._frozen_depth - 1)
            if self._frozen_depth == 0:
                self._frozen_names = None

    # -- search ----------------------------------------------------------------
    def find_nearest(
        self,
        target: np.ndarray,
        context: tuple,
        max_dist: float,
        exclude: str | None = None,
    ) -> NeighborHit | None:
        """The cached pulse nearest ``target`` within its ``(dim, ctx)`` bucket.

        ``exclude`` names the entry an exact lookup already missed (the
        would-be filename of this very key), so an entry can never seed
        itself.  Returns ``None`` when the bucket is empty or the best
        distance exceeds ``max_dist``.
        """
        self._ensure_fresh()
        target = np.asarray(target, dtype=complex)
        bucket_key = (int(target.shape[0]), context_token(context))
        with self._lock:
            self.lookups += 1
            bucket = dict(self._buckets.get(bucket_key, ()))
            frozen = self._frozen_names
        best_name = None
        best_dist = np.inf
        for name, sig_text in bucket.items():
            if name == exclude:
                continue
            if frozen is not None and name not in frozen:
                continue
            with self._lock:
                sig = self._decoded.get(name)
            if sig is None:
                sig = decode_signature(sig_text)
                if sig is None or sig.shape[0] != target.shape[0]:
                    continue
                with self._lock:
                    self._decoded[name] = sig
            dist = signature_distance(target, sig)
            if dist < best_dist:
                best_name, best_dist = name, dist
        if best_name is None or best_dist > max_dist:
            return None
        with self._lock:
            self.hits += 1
        return NeighborHit(name=best_name, distance=best_dist)

    # -- lazy healing ----------------------------------------------------------
    def annotate(self, name: str, target: np.ndarray, context: tuple) -> bool:
        """Heal a legacy entry's missing target metadata in its manifest.

        Called at cache-hit time, when the caller holds the target unitary
        that hashing threw away.  A no-op (``False``) when the entry is
        already annotated or has no manifest record; on success the
        in-memory index is updated in place — no rescan needed.
        """
        meta = target_metadata(target, context)
        shard = self.library.shard_dir(name)
        if not shard.is_dir():
            return False
        try:
            with self.library._shard_lock(shard):
                manifest = load_manifest(shard)
                record = manifest["entries"].get(name)
                if not isinstance(record, dict) or _valid_meta(
                    record.get("target")
                ):
                    return False
                record["target"] = meta
                save_manifest(shard, manifest)
        except OSError:
            return False
        with self._lock:
            self.annotated += 1
            if self._built_at_puts is not None:
                self._buckets.setdefault((meta["dim"], meta["ctx"]), {})[
                    name
                ] = meta["sig"]
                self._decoded.pop(name, None)
        return True

    # -- telemetry -------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            return {
                "buckets": len(self._buckets),
                "indexed_entries": sum(
                    len(b) for b in self._buckets.values()
                ),
                "lookups": self.lookups,
                "hits": self.hits,
                "annotated": self.annotated,
            }
