"""Per-shard JSON manifests: the pulse library's index.

Each shard directory carries one ``manifest.json`` describing its entries:

.. code-block:: json

    {
      "manifest_version": 1,
      "evictions": 3,
      "entries": {
        "abcdef…-0123….pulse": {
          "size": 18432,
          "created": 1721800000.12,
          "last_used": 1721800411.02,
          "schema_version": 2,
          "target": {"dim": 4, "ctx": "9f…", "sig": "<base64 float32>"}
        }
      }
    }

The optional ``"target"`` key is the approximate-match metadata of
:mod:`repro.library.neighbors` (target dimension, physical-context token,
compact unitary signature), written at ``put`` time and healed lazily for
legacy entries.  Reconciliation updates records *in place*, so extra keys
like it survive every ``gc``.

The manifest is an *index*, not the source of truth — the data files are.
Readers that find a file with no manifest entry still serve it, and
:meth:`repro.library.store.PulseLibrary.gc` reconciles every manifest
against the shard's actual contents (stat sizes, drops ghosts, adopts
orphans) before making eviction decisions.  This keeps the library robust
against crashes between a data write and its index update.

All manifest writes are atomic (temp + ``os.replace``) and happen under the
shard's :class:`~repro.library.locking.FileLock`, so concurrent processes
never interleave read-modify-write cycles.
"""

from __future__ import annotations

import json
import os
import uuid
from pathlib import Path

#: Format version embedded in every manifest file.  A manifest with any
#: other version is rebuilt from the shard's data files instead of trusted.
MANIFEST_VERSION = 1

MANIFEST_FILENAME = "manifest.json"


def empty_manifest() -> dict:
    """A fresh manifest structure for a shard with no entries."""
    return {"manifest_version": MANIFEST_VERSION, "evictions": 0, "entries": {}}


def load_manifest(shard_dir: Path) -> dict:
    """Read a shard's manifest, tolerating absence and corruption.

    A missing, unreadable, or wrong-version manifest yields an empty one —
    the data files remain authoritative and ``gc`` rebuilds the index.
    """
    path = shard_dir / MANIFEST_FILENAME
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return empty_manifest()
    if (
        not isinstance(data, dict)
        or data.get("manifest_version") != MANIFEST_VERSION
        or not isinstance(data.get("entries"), dict)
    ):
        return empty_manifest()
    data.setdefault("evictions", 0)
    return data


def save_manifest(shard_dir: Path, manifest: dict) -> None:
    """Atomically write ``manifest`` into ``shard_dir``."""
    path = shard_dir / MANIFEST_FILENAME
    tmp = path.with_name(f".{MANIFEST_FILENAME}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp")
    tmp.write_text(json.dumps(manifest, indent=1, sort_keys=True) + "\n")
    os.replace(tmp, path)


def entry_record(size: int, created: float, last_used: float, schema_version=None) -> dict:
    """One manifest entry value (see module docstring for the format)."""
    record = {
        "size": int(size),
        "created": round(float(created), 3),
        "last_used": round(float(last_used), 3),
    }
    if schema_version is not None:
        record["schema_version"] = int(schema_version)
    return record


def rebuild_entries(shard_dir: Path, manifest: dict, suffix: str) -> dict:
    """Reconcile ``manifest['entries']`` with the files actually in the shard.

    Ghost entries (indexed but deleted on disk) are dropped; orphan files
    (on disk but unindexed — e.g. written by a crashed process or a foreign
    writer) are adopted with stamps taken from ``stat``.  Sizes are
    refreshed from disk, and damaged records — a legacy-migrated or
    hand-edited entry whose ``created``/``last_used`` stamp is missing or
    not a number — are healed from the file mtime so LRU decisions (and the
    gc inventory sort) never trip over them.  A file mtime *newer* than the
    recorded ``last_used`` also wins: readers that stamp uses cheaply via
    ``os.utime`` alone (the prefetch hit path) stay LRU-honest because
    every gc reconciles before evicting.  Returns the reconciled entries
    dict (the manifest is modified in place).
    """
    entries: dict = manifest["entries"]
    on_disk = {}
    for path in shard_dir.glob(f"*{suffix}"):
        try:
            stat = path.stat()
        except OSError:
            continue
        on_disk[path.name] = stat
    for name in list(entries):
        if name not in on_disk:
            del entries[name]
    for name, stat in on_disk.items():
        record = entries.get(name)
        if not isinstance(record, dict):
            entries[name] = entry_record(
                stat.st_size, stat.st_mtime, stat.st_mtime
            )
        else:
            record["size"] = int(stat.st_size)
            for stamp in ("created", "last_used"):
                if not isinstance(record.get(stamp), (int, float)) or isinstance(
                    record.get(stamp), bool
                ):
                    record[stamp] = round(float(stat.st_mtime), 3)
            mtime = round(float(stat.st_mtime), 3)
            if mtime > record["last_used"]:
                record["last_used"] = mtime
    return entries
