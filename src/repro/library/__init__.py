"""The pulse library: a sharded, indexed, GC-managed pulse store.

Partial compilation's central economy is reusing GRAPE-compiled pulses for
repeated circuit blocks, so the pulse store is the system's scaling
surface.  This package provides that store as a first-class subsystem:

* :mod:`repro.library.store` — :class:`PulseLibrary`, the sharded
  directory layout (fan-out by fingerprint prefix), per-shard JSON
  manifests, LRU/size-budget :meth:`~PulseLibrary.gc`, and transparent
  one-time migration of legacy flat cache directories.
* :mod:`repro.library.manifest` — the per-shard index format and its
  reconcile-from-disk rebuild.
* :mod:`repro.library.neighbors` — approximate-match retrieval: per-entry
  target metadata in the manifests plus a ``(dim, context)``-bucketed
  nearest-unitary search, so near-miss blocks can seed GRAPE from the
  closest cached pulse instead of starting cold.
* :mod:`repro.library.locking` — advisory cross-process file locks so
  several processes (or hosts on a network filesystem) can share one
  library safely.

:class:`repro.core.cache.PersistentPulseCache` is a thin adapter that
stores its pickled cache entries through a :class:`PulseLibrary`.
"""

from repro.library.locking import FileLock
from repro.library.manifest import (
    MANIFEST_VERSION,
    empty_manifest,
    load_manifest,
    save_manifest,
)
from repro.library.neighbors import (
    NeighborHit,
    NeighborIndex,
    signature_distance,
    target_metadata,
)
from repro.library.store import (
    LIBRARY_LAYOUT_VERSION,
    VALID_SHARD_COUNTS,
    GCReport,
    PulseLibrary,
)

__all__ = [
    "FileLock",
    "GCReport",
    "LIBRARY_LAYOUT_VERSION",
    "MANIFEST_VERSION",
    "NeighborHit",
    "NeighborIndex",
    "PulseLibrary",
    "VALID_SHARD_COUNTS",
    "empty_manifest",
    "load_manifest",
    "save_manifest",
    "signature_distance",
    "target_metadata",
]
