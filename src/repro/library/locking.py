"""Cross-process file locking for the pulse library.

The pulse library is designed to be shared by several processes — and, over
a network filesystem, several hosts — compiling against one directory.  Data
files are written atomically (temp + ``os.replace``) and need no locking,
but the JSON manifests are read-modify-write, so every manifest update and
every garbage-collection pass runs under an advisory ``flock`` on a
dedicated lock file.

:class:`FileLock` stores only the lock file *path*; the file descriptor is
opened per acquisition, which keeps the object picklable (block compilers —
library included — travel into process-pool workers).  The lock is
re-entrant within a thread-free scope but not across threads, so callers
additionally hold their own in-process mutex where needed.

On platforms without :mod:`fcntl` the lock degrades to a no-op: atomic data
writes keep single-host usage safe, and the manifests self-heal from the
data files during :meth:`PulseLibrary.gc`.
"""

from __future__ import annotations

import os
from pathlib import Path

try:  # POSIX; absent on Windows builds of CPython.
    import fcntl
except ImportError:  # pragma: no cover - platform-dependent
    fcntl = None


class FileLock:
    """An advisory, cross-process exclusive lock on ``path``.

    Usage::

        with FileLock(directory / ".lock"):
            ...  # read-modify-write a manifest

    The lock file itself is never deleted (deleting a locked file is racy
    on NFS); it is a zero-byte marker living next to the data it guards.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self._fd: int | None = None

    @property
    def locked(self) -> bool:
        """Whether *this object* currently holds the lock."""
        return self._fd is not None

    def acquire(self) -> None:
        """Block until the lock is held (no-op where flock is unavailable)."""
        if self._fd is not None:
            raise RuntimeError(f"lock {self.path} is already held by this object")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        if fcntl is not None:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX)
            except OSError:
                os.close(fd)
                raise
        self._fd = fd

    def release(self) -> None:
        """Drop the lock (closing the descriptor releases the flock)."""
        fd, self._fd = self._fd, None
        if fd is not None:
            if fcntl is not None:
                try:
                    fcntl.flock(fd, fcntl.LOCK_UN)
                except OSError:  # pragma: no cover - close below still frees it
                    pass
            os.close(fd)

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    # The open descriptor cannot cross a pickle boundary; a worker that
    # receives a (necessarily unlocked) copy re-opens the file on demand.
    def __getstate__(self) -> dict:
        return {"path": self.path}

    def __setstate__(self, state: dict) -> None:
        self.path = state["path"]
        self._fd = None

    def __repr__(self) -> str:
        state = "held" if self.locked else "free"
        return f"FileLock({str(self.path)!r}, {state})"
