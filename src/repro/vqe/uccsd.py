"""UCCSD ansatz construction.

Exponentiates anti-Hermitian excitation generators ``T_k - T_k†`` with one
variational parameter each, sequentially in parameter order — which is
precisely why UCCSD circuits satisfy parameter monotonicity (paper §7.1).

Excitations are generated in a deterministic tier order (spin-conserving
singles, spin-conserving doubles, then progressively generalized forms) and
trimmed to the requested parameter count, so the benchmark circuits match
the paper's Table 2 widths and parameter counts exactly without PySCF
integrals (see DESIGN.md substitution 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameters import Parameter
from repro.errors import VQEError
from repro.vqe.fermion import FermionOperator
from repro.vqe.jordan_wigner import jordan_wigner
from repro.vqe.pauli_evolution import pauli_sum_evolution
from repro.sim.pauli import PauliString, PauliSum


@dataclass(frozen=True)
class Excitation:
    """One excitation generator.

    ``kind``: ``"single"`` (modes = (occ, virt)), ``"double"``
    (modes = (i, j, a, b)), or ``"mode"`` (modes = (p,), the one-mode
    rotation used only to pad the smallest instances).
    ``tier`` records which generation tier produced it (1 = standard
    spin-conserving singles … 7 = mode rotations).
    """

    kind: str
    modes: tuple
    tier: int

    def operator(self) -> FermionOperator:
        if self.kind == "single":
            occ, virt = self.modes
            return FermionOperator.single_excitation(occ, virt).anti_hermitian_part()
        if self.kind == "double":
            i, j, a, b = self.modes
            return FermionOperator.double_excitation((i, j), (a, b)).anti_hermitian_part()
        if self.kind == "mode":
            return FermionOperator.mode_rotation(self.modes[0])
        raise VQEError(f"unknown excitation kind {self.kind!r}")


def _spin(mode: int) -> int:
    """Interleaved spin convention: even modes spin-up, odd spin-down."""
    return mode % 2


def generate_excitations(num_qubits: int, num_electrons: int, count: int) -> list:
    """The first ``count`` excitations in deterministic tier order.

    Tiers (each skips operators already produced by earlier tiers):

    1. spin-conserving singles, occupied → virtual
    2. spin-conserving doubles, occupied pairs → virtual pairs
    3. generalized spin-conserving singles (any p < q, same spin)
    4. generalized spin-conserving doubles (any disjoint pairs, same spin
       multiset)
    5. spin-broken singles
    6. spin-broken doubles
    7. one-mode rotations (padding for 2-mode instances such as H2)
    """
    if num_electrons < 0 or num_electrons > num_qubits:
        raise VQEError(
            f"invalid electron count {num_electrons} for {num_qubits} modes"
        )
    occ = list(range(num_electrons))
    virt = list(range(num_electrons, num_qubits))
    out: list[Excitation] = []
    seen: set = set()

    def emit(kind: str, modes: tuple, tier: int) -> None:
        if kind == "double":
            i, j, a, b = modes
            pair1, pair2 = tuple(sorted((i, j))), tuple(sorted((a, b)))
            key = ("d", *sorted([pair1, pair2]))
            modes = (*pair1, *pair2)
        elif kind == "single":
            key = ("s", *sorted(modes))
            modes = tuple(sorted(modes))
        else:
            key = ("m", *modes)
        if key in seen or len(out) >= count:
            return
        seen.add(key)
        out.append(Excitation(kind, modes, tier))

    # Tier 1: standard singles.
    for i in occ:
        for a in virt:
            if _spin(i) == _spin(a):
                emit("single", (i, a), 1)
    # Tier 2: standard doubles.
    for i, j in combinations(occ, 2):
        for a, b in combinations(virt, 2):
            if sorted((_spin(i), _spin(j))) == sorted((_spin(a), _spin(b))):
                emit("double", (i, j, a, b), 2)
    # Tier 3: generalized singles.
    for p, q in combinations(range(num_qubits), 2):
        if _spin(p) == _spin(q):
            emit("single", (p, q), 3)
    # Tier 4: generalized doubles.
    for p, q in combinations(range(num_qubits), 2):
        for r, s in combinations(range(num_qubits), 2):
            if {p, q} & {r, s} or (r, s) <= (p, q):
                continue
            if sorted((_spin(p), _spin(q))) == sorted((_spin(r), _spin(s))):
                emit("double", (p, q, r, s), 4)
    # Tier 5: spin-broken singles.
    for p, q in combinations(range(num_qubits), 2):
        emit("single", (p, q), 5)
    # Tier 6: spin-broken doubles.
    for p, q in combinations(range(num_qubits), 2):
        for r, s in combinations(range(num_qubits), 2):
            if {p, q} & {r, s} or (r, s) <= (p, q):
                continue
            emit("double", (p, q, r, s), 6)
    # Tier 7: one-mode rotations.
    for p in range(num_qubits):
        emit("mode", (p,), 7)

    if len(out) < count:
        raise VQEError(
            f"only {len(out)} distinct excitations exist for "
            f"{num_qubits} modes; requested {count}"
        )
    return out


def uccsd_ansatz(
    num_qubits: int,
    num_electrons: int,
    num_parameters: int,
    parameter_prefix: str = "theta",
    include_reference_state: bool = True,
    name: str = "uccsd",
) -> QuantumCircuit:
    """Build the UCCSD ansatz circuit.

    One :class:`~repro.circuits.parameters.Parameter` per excitation,
    applied in index order (⇒ parameter monotonicity).  With
    ``include_reference_state`` the Hartree-Fock occupation (X gates on the
    occupied modes) precedes the excitations.
    """
    excitations = generate_excitations(num_qubits, num_electrons, num_parameters)
    circuit = QuantumCircuit(num_qubits, name=name)
    if include_reference_state:
        for mode in range(num_electrons):
            circuit.x(mode)
    for k, excitation in enumerate(excitations):
        theta = Parameter(f"{parameter_prefix}_{k}", index=k)
        generator = jordan_wigner(excitation.operator(), num_qubits)
        # T - T† is anti-Hermitian: its JW image is i·H with H real.
        real_terms = []
        for term in generator.terms:
            if abs(term.coefficient.real) > 1e-9:
                raise VQEError(
                    f"excitation generator not anti-Hermitian: {term!r}"
                )
            real_terms.append(PauliString(term.label, term.coefficient.imag))
        hermitian = PauliSum(real_terms)
        # exp(θ (T - T†)) = exp(i θ H) = exp(-i (-θ) H).
        pauli_sum_evolution(hermitian, -1.0 * theta, circuit)
    return circuit
