"""VQE substrate: fermionic operators, Jordan-Wigner, UCCSD, molecules.

The paper's VQE benchmarks (Table 2) use the UCCSD ansatz generated via
Qiskit + PySCF.  Neither is available offline, so this package implements a
minimal fermionic-operator algebra, the Jordan-Wigner transform, Pauli-
evolution circuit synthesis, and a deterministic excitation generator whose
circuits match the paper's widths and parameter counts exactly (see
``DESIGN.md``, substitution 2).
"""

from repro.vqe.fermion import FermionOperator, FermionTerm
from repro.vqe.jordan_wigner import jordan_wigner, jordan_wigner_ladder
from repro.vqe.pauli_evolution import pauli_evolution_circuit, pauli_sum_evolution
from repro.vqe.uccsd import Excitation, generate_excitations, uccsd_ansatz
from repro.vqe.molecules import MoleculeSpec, get_molecule, list_molecules
from repro.vqe.hamiltonians import h2_hamiltonian, synthetic_molecular_hamiltonian
from repro.vqe.driver import VQEDriver, VQEResult

__all__ = [
    "Excitation",
    "FermionOperator",
    "FermionTerm",
    "MoleculeSpec",
    "VQEDriver",
    "VQEResult",
    "generate_excitations",
    "get_molecule",
    "h2_hamiltonian",
    "jordan_wigner",
    "jordan_wigner_ladder",
    "list_molecules",
    "pauli_evolution_circuit",
    "pauli_sum_evolution",
    "synthetic_molecular_hamiltonian",
    "uccsd_ansatz",
]
