"""A minimal fermionic-operator algebra.

Supports exactly what UCCSD construction needs: products of creation/
annihilation operators with complex coefficients, sums thereof, scalar
multiplication, and Hermitian conjugation.  No normal-ordering machinery —
operators go straight to Pauli form via Jordan-Wigner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import VQEError


@dataclass(frozen=True)
class FermionTerm:
    """``coefficient · Π_k op_k`` with ``op_k = (mode, is_creation)``.

    Operators apply right-to-left (physics convention): the last tuple in
    ``ladder`` acts first on the state.
    """

    ladder: tuple  # tuple[(mode, bool), ...]
    coefficient: complex = 1.0

    def __post_init__(self):
        for mode, creation in self.ladder:
            if mode < 0:
                raise VQEError(f"negative mode index {mode}")
            if not isinstance(creation, bool):
                raise VQEError("ladder entries must be (mode, bool)")

    def dagger(self) -> "FermionTerm":
        """Hermitian conjugate: reverse order, flip daggers, conjugate."""
        flipped = tuple((m, not c) for m, c in reversed(self.ladder))
        return FermionTerm(flipped, self.coefficient.conjugate())

    def max_mode(self) -> int:
        return max((m for m, _ in self.ladder), default=-1)

    def __repr__(self) -> str:
        ops = " ".join(f"a{'†' if c else ''}_{m}" for m, c in self.ladder)
        return f"({self.coefficient:g}) {ops}" if ops else f"({self.coefficient:g})"


class FermionOperator:
    """A sum of :class:`FermionTerm`."""

    def __init__(self, terms: Iterable[FermionTerm] = ()):
        self.terms = tuple(terms)

    @classmethod
    def single_excitation(cls, occupied: int, virtual: int) -> "FermionOperator":
        """``a†_virtual a_occupied`` (one-body excitation)."""
        if occupied == virtual:
            raise VQEError("single excitation needs distinct modes")
        return cls([FermionTerm(((virtual, True), (occupied, False)))])

    @classmethod
    def double_excitation(
        cls, occ_pair: tuple, virt_pair: tuple
    ) -> "FermionOperator":
        """``a†_r a†_s a_j a_i`` (two-body excitation)."""
        i, j = occ_pair
        r, s = virt_pair
        if len({i, j, r, s}) != 4:
            raise VQEError("double excitation needs four distinct modes")
        return cls(
            [FermionTerm(((r, True), (s, True), (j, False), (i, False)))]
        )

    @classmethod
    def mode_rotation(cls, mode: int) -> "FermionOperator":
        """``a†_mode - a_mode`` — the anti-Hermitian one-mode generator used
        to pad tiny ansatz instances (see molecules registry notes)."""
        return cls(
            [
                FermionTerm(((mode, True),), 1.0),
                FermionTerm(((mode, False),), -1.0),
            ]
        )

    def dagger(self) -> "FermionOperator":
        return FermionOperator([t.dagger() for t in self.terms])

    def anti_hermitian_part(self) -> "FermionOperator":
        """``T - T†`` — the generator UCCSD exponentiates."""
        return self - self.dagger()

    def max_mode(self) -> int:
        return max((t.max_mode() for t in self.terms), default=-1)

    # -- algebra -----------------------------------------------------------
    def __add__(self, other: "FermionOperator") -> "FermionOperator":
        if not isinstance(other, FermionOperator):
            return NotImplemented
        return FermionOperator(self.terms + other.terms)

    def __sub__(self, other: "FermionOperator") -> "FermionOperator":
        return self + (other * -1.0)

    def __mul__(self, scalar) -> "FermionOperator":
        if isinstance(scalar, FermionOperator):
            # Operator product: concatenate ladder sequences.
            products = []
            for a in self.terms:
                for b in scalar.terms:
                    products.append(
                        FermionTerm(a.ladder + b.ladder, a.coefficient * b.coefficient)
                    )
            return FermionOperator(products)
        return FermionOperator(
            [FermionTerm(t.ladder, t.coefficient * complex(scalar)) for t in self.terms]
        )

    __rmul__ = __mul__

    def __len__(self) -> int:
        return len(self.terms)

    def __repr__(self) -> str:
        if not self.terms:
            return "FermionOperator(0)"
        return " + ".join(repr(t) for t in self.terms)
