"""The benchmark molecule registry (paper Table 2).

Widths and parameter counts are taken from the paper verbatim.  Electron
counts select the active-space occupation used by the excitation generator;
PySCF integrals are unavailable offline, so excitations are chosen by the
deterministic tier order of :func:`repro.vqe.uccsd.generate_excitations`
(DESIGN.md substitution 2) — the circuit *structure* (width, parameter
count, Rz(θ) density, monotonicity) is what the compilation study depends
on, and it matches the paper exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.circuit import QuantumCircuit
from repro.errors import VQEError
from repro.vqe.uccsd import uccsd_ansatz


@dataclass(frozen=True)
class MoleculeSpec:
    """One VQE benchmark instance.

    ``paper_gate_runtime_ns`` is Table 2's Gate-Based Runtime, kept for the
    paper-vs-measured comparison in EXPERIMENTS.md.
    """

    name: str
    num_qubits: int
    num_parameters: int
    num_electrons: int
    paper_gate_runtime_ns: float
    description: str = ""

    def ansatz(self, include_reference_state: bool = True) -> QuantumCircuit:
        """The UCCSD ansatz circuit for this molecule."""
        circuit = uccsd_ansatz(
            self.num_qubits,
            self.num_electrons,
            self.num_parameters,
            include_reference_state=include_reference_state,
            name=f"uccsd_{self.name.lower()}",
        )
        return circuit


#: Table 2 of the paper: width, #params, gate-based runtime.
MOLECULES = {
    "H2": MoleculeSpec(
        name="H2",
        num_qubits=2,
        num_parameters=3,
        num_electrons=1,
        paper_gate_runtime_ns=35.0,
        description="hydrogen molecule, tapered 2-qubit representation",
    ),
    "LiH": MoleculeSpec(
        name="LiH",
        num_qubits=4,
        num_parameters=8,
        num_electrons=2,
        paper_gate_runtime_ns=872.0,
        description="lithium hydride, frozen-core active space",
    ),
    "BeH2": MoleculeSpec(
        name="BeH2",
        num_qubits=6,
        num_parameters=26,
        num_electrons=4,
        paper_gate_runtime_ns=5308.0,
        description="beryllium hydride",
    ),
    "NaH": MoleculeSpec(
        name="NaH",
        num_qubits=8,
        num_parameters=24,
        num_electrons=4,
        paper_gate_runtime_ns=5490.0,
        description="sodium hydride",
    ),
    "H2O": MoleculeSpec(
        name="H2O",
        num_qubits=10,
        num_parameters=92,
        num_electrons=4,
        paper_gate_runtime_ns=33842.0,
        description="water — the largest molecule addressed by VQE to date (2019)",
    ),
}


def list_molecules() -> tuple:
    """Benchmark molecule names, smallest first."""
    return tuple(sorted(MOLECULES, key=lambda m: MOLECULES[m].num_qubits))


def get_molecule(name: str) -> MoleculeSpec:
    """Look up a benchmark molecule by (case-insensitive) name."""
    for key, spec in MOLECULES.items():
        if key.lower() == name.lower():
            return spec
    raise VQEError(f"unknown molecule {name!r}; available: {list_molecules()}")
