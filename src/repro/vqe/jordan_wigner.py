"""Jordan-Wigner transform: fermionic modes → qubits.

``a_p  → (X_p + iY_p)/2 · Z_0 … Z_{p-1}``
``a†_p → (X_p - iY_p)/2 · Z_0 … Z_{p-1}``

The Z string keeps fermionic anticommutation; products of ladder operators
become products of the resulting two-term Pauli sums.
"""

from __future__ import annotations

from repro.errors import VQEError
from repro.sim.pauli import PauliString, PauliSum
from repro.vqe.fermion import FermionOperator


def jordan_wigner_ladder(mode: int, creation: bool, num_qubits: int) -> PauliSum:
    """The Pauli form of one ladder operator on ``num_qubits`` qubits."""
    if mode >= num_qubits:
        raise VQEError(f"mode {mode} exceeds register of {num_qubits} qubits")
    prefix = {q: "Z" for q in range(mode)}
    x_part = PauliString.from_sparse(num_qubits, {**prefix, mode: "X"}, 0.5)
    sign = -0.5j if creation else 0.5j
    y_part = PauliString.from_sparse(num_qubits, {**prefix, mode: "Y"}, sign)
    return PauliSum([x_part, y_part])


def jordan_wigner(operator: FermionOperator, num_qubits: int) -> PauliSum:
    """Transform a :class:`FermionOperator` into a :class:`PauliSum`."""
    if operator.max_mode() >= num_qubits:
        raise VQEError(
            f"operator touches mode {operator.max_mode()} but register has "
            f"{num_qubits} qubits"
        )
    identity = PauliString("I" * num_qubits)
    total: PauliSum | None = None
    for term in operator.terms:
        product = PauliSum([PauliString("I" * num_qubits, term.coefficient)])
        # Ladder ops act right-to-left on states; as matrices the term is
        # op_0 · op_1 · … so multiply in listed order.
        for mode, creation in term.ladder:
            product = product * jordan_wigner_ladder(mode, creation, num_qubits)
        total = product if total is None else total + product
    if total is None:
        return PauliSum([identity * 0.0]) if num_qubits else PauliSum()
    return total
