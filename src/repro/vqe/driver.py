"""The hybrid quantum-classical VQE loop (paper Figure 1).

The quantum side is simulated exactly (statevector); the classical side is
Nelder-Mead — the noise-robust optimizer the paper cites — or SPSA.  An
optional compiler hook compiles the circuit at every iteration, which is how
the aggregate-latency numbers of paper section 8.4 are reproduced: strict
partial compilation pays ~0 per iteration where full GRAPE pays minutes.

The supported compiler hook is a
:class:`repro.service.CompilationService` — ``VQEDriver(compiler=service)``
routes every iteration's compilation through the service's
``compile_parametrized`` hook, so the whole optimizer loop shares one
executor, one pulse cache, and one block-dedup scheduler state (iteration
N+1 dispatches GRAPE only for blocks the whole run has never seen).  Any
object exposing ``compile_parametrized(circuit, values)`` (the legacy
strategy compilers, a :class:`repro.pipeline.session.VariationalSession`)
still works.  When the hook exposes ``stats()`` (services and sessions
do), its end-of-run snapshot lands in :attr:`VQEResult.compile_stats`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np
from scipy import optimize as scipy_optimize

from repro.circuits.circuit import QuantumCircuit
from repro.errors import VQEError
from repro.sim.pauli import PauliSum
from repro.sim.statevector import simulate


@dataclass
class VQEResult:
    """Outcome of a VQE run."""

    optimal_parameters: np.ndarray
    optimal_energy: float
    exact_energy: float | None
    iterations: int
    energy_history: list = field(default_factory=list)
    wall_time_s: float = 0.0
    compile_latency_s: float = 0.0
    compile_pulse_ns: list = field(default_factory=list)
    #: End-of-run telemetry from the compiler hook's ``stats()`` (e.g. a
    #: ``VariationalSession``'s reuse counters); ``None`` otherwise.
    compile_stats: dict | None = None

    @property
    def error_to_exact(self) -> float | None:
        if self.exact_energy is None:
            return None
        return abs(self.optimal_energy - self.exact_energy)


class VQEDriver:
    """Variational quantum eigensolver over a Pauli-sum Hamiltonian."""

    def __init__(
        self,
        hamiltonian: PauliSum,
        ansatz: QuantumCircuit,
        optimizer: str = "nelder-mead",
        max_iterations: int = 200,
        seed: int = 0,
        compiler=None,
        shots: int | None = None,
    ):
        if hamiltonian.num_qubits != ansatz.num_qubits:
            raise VQEError(
                f"Hamiltonian width {hamiltonian.num_qubits} != ansatz width "
                f"{ansatz.num_qubits}"
            )
        if optimizer not in ("nelder-mead", "spsa"):
            raise VQEError(f"unknown optimizer {optimizer!r}")
        self.hamiltonian = hamiltonian
        self.ansatz = ansatz
        self.optimizer = optimizer
        self.max_iterations = max_iterations
        self.seed = seed
        self.compiler = compiler
        self.shots = shots
        self._rng = np.random.default_rng(seed)

    # -- energy evaluation -------------------------------------------------
    def energy(self, values: Sequence[float]) -> float:
        """⟨ψ(θ)|H|ψ(θ)⟩, optionally with sampling noise of ``shots``."""
        bound = self.ansatz.bind_parameters(list(values))
        state = simulate(bound)
        exact = self.hamiltonian.expectation(state)
        if self.shots is None:
            return exact
        # Model shot noise as Gaussian with the standard 1/sqrt(shots) width.
        spread = np.sqrt(max(1e-12, self._variance(state))) / np.sqrt(self.shots)
        return float(exact + self._rng.normal(scale=spread))

    def _variance(self, state) -> float:
        h2 = self.hamiltonian * self.hamiltonian
        mean = self.hamiltonian.expectation(state)
        return max(0.0, h2.expectation(state) - mean**2)

    # -- the loop -------------------------------------------------------------
    def run(
        self,
        initial_parameters: Sequence[float] | None = None,
        callback: Callable[[int, np.ndarray, float], None] | None = None,
    ) -> VQEResult:
        num_params = len(self.ansatz.parameters)
        if initial_parameters is None:
            initial = self._rng.uniform(-0.1, 0.1, size=num_params)
        else:
            initial = np.asarray(list(initial_parameters), dtype=float)
            if initial.size != num_params:
                raise VQEError(
                    f"expected {num_params} initial parameters, got {initial.size}"
                )

        history: list[float] = []
        compile_seconds = 0.0
        pulse_durations: list[float] = []
        start = time.perf_counter()

        def objective(values: np.ndarray) -> float:
            nonlocal compile_seconds
            if self.compiler is not None:
                compiled = _compile_iteration(self.compiler, self.ansatz, values)
                compile_seconds += compiled.runtime_latency_s
                pulse_durations.append(compiled.pulse_duration_ns)
            value = self.energy(values)
            history.append(value)
            if callback is not None:
                callback(len(history), np.asarray(values), value)
            return value

        if self.optimizer == "nelder-mead":
            result = scipy_optimize.minimize(
                objective,
                initial,
                method="Nelder-Mead",
                options={"maxfev": self.max_iterations, "xatol": 1e-4, "fatol": 1e-7},
            )
            best_params, best_energy = result.x, float(result.fun)
        else:
            best_params, best_energy = self._spsa(objective, initial)

        exact = None
        if self.hamiltonian.num_qubits <= 12:
            exact = self.hamiltonian.ground_state_energy()
        compile_stats = None
        if self.compiler is not None and hasattr(self.compiler, "stats"):
            compile_stats = self.compiler.stats()
        return VQEResult(
            optimal_parameters=np.asarray(best_params),
            optimal_energy=best_energy,
            exact_energy=exact,
            iterations=len(history),
            energy_history=history,
            wall_time_s=time.perf_counter() - start,
            compile_latency_s=compile_seconds,
            compile_pulse_ns=pulse_durations,
            compile_stats=compile_stats,
        )

    def _spsa(self, objective, initial: np.ndarray) -> tuple:
        """Simultaneous Perturbation Stochastic Approximation."""
        params = initial.copy()
        best_params, best_value = params.copy(), float("inf")
        a, c, alpha, gamma = 0.2, 0.15, 0.602, 0.101
        budget = max(1, self.max_iterations // 2)
        for k in range(budget):
            ak = a / (k + 1) ** alpha
            ck = c / (k + 1) ** gamma
            delta = self._rng.choice([-1.0, 1.0], size=params.size)
            plus = objective(params + ck * delta)
            minus = objective(params - ck * delta)
            gradient = (plus - minus) / (2 * ck) * delta
            params = params - ak * gradient
            value = min(plus, minus)
            if value < best_value:
                best_value, best_params = value, params.copy()
        final = objective(best_params)
        if final < best_value:
            best_value = final
        return best_params, float(best_value)


def _compile_iteration(compiler, ansatz: QuantumCircuit, values: np.ndarray):
    """Dispatch one iteration's compilation across the compiler interfaces."""
    if hasattr(compiler, "compile_parametrized"):
        return compiler.compile_parametrized(ansatz, list(values))
    return compiler.compile(list(values))
