"""Pauli-evolution circuit synthesis.

``exp(-i θ/2 · P)`` for a Pauli string ``P`` compiles to the standard
basis-change + CX-ladder + ``Rz(θ)`` + unladder + unchange template.  This
is where every UCCSD parameter enters the circuit as a *single* ``Rz(θ)``
gate — the structural fact strict partial compilation exploits (paper
section 6: "Rz(θᵢ) gates comprise only 5-8 % of the total number of gates").
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.errors import VQEError
from repro.sim.pauli import PauliString, PauliSum

_HALF_PI = math.pi / 2


def pauli_evolution_circuit(
    pauli: PauliString, angle, circuit: QuantumCircuit | None = None
) -> QuantumCircuit:
    """Append ``exp(-i (angle/2) · P)`` to ``circuit`` (ignoring |coeff|).

    ``pauli``'s label determines the basis changes; its *coefficient must be
    folded into ``angle`` by the caller* (this function treats the string as
    unit-coefficient).  ``angle`` may be symbolic.
    """
    if circuit is None:
        circuit = QuantumCircuit(pauli.num_qubits)
    if circuit.num_qubits != pauli.num_qubits:
        raise VQEError(
            f"circuit width {circuit.num_qubits} != operator width {pauli.num_qubits}"
        )
    support = pauli.support
    if not support:
        return circuit  # identity: a global phase, unobservable

    # Basis changes: X -> H; Y -> Rx(π/2)  (both satisfy W P W† = Z).
    for q in support:
        ch = pauli.label[q]
        if ch == "X":
            circuit.h(q)
        elif ch == "Y":
            circuit.rx(_HALF_PI, q)

    for a, b in zip(support, support[1:]):
        circuit.cx(a, b)
    circuit.rz(angle, support[-1])
    for a, b in reversed(list(zip(support, support[1:]))):
        circuit.cx(a, b)

    for q in support:
        ch = pauli.label[q]
        if ch == "X":
            circuit.h(q)
        elif ch == "Y":
            circuit.rx(-_HALF_PI, q)
    return circuit


def pauli_sum_evolution(
    hamiltonian: PauliSum, angle, circuit: QuantumCircuit | None = None
) -> QuantumCircuit:
    """Append ``exp(-i · angle · H)`` for a real Pauli sum ``H`` (one Trotter
    step; exact when the terms commute, as they do for single fermionic
    excitations under Jordan-Wigner)."""
    if circuit is None:
        circuit = QuantumCircuit(hamiltonian.num_qubits)
    for term in hamiltonian.terms:
        coeff = term.coefficient
        if abs(coeff.imag) > 1e-9:
            raise VQEError(f"evolution requires a real Pauli sum, got {term!r}")
        if term.is_identity():
            continue
        # exp(-i·angle·c·P) = exp(-i (2·angle·c)/2 · P).
        pauli_evolution_circuit(term, 2.0 * coeff.real * angle, circuit)
    return circuit
