"""Molecular qubit Hamiltonians for energy evaluation.

For H2 the published 2-qubit STO-3G Hamiltonian coefficients (bond length
0.735 Å, after parity reduction; O'Malley et al. 2016 / widely reproduced)
are embedded, so the VQE example converges to the true ground-state energy.
For the larger molecules — whose integrals require PySCF — a *synthetic*
particle-conserving Hamiltonian stands in (DESIGN.md substitution 2): it
exercises identical code paths (Pauli-sum expectation, optimizer loop) and
has a known exact ground energy by dense diagonalization.
"""

from __future__ import annotations

import numpy as np

from repro.errors import VQEError
from repro.sim.pauli import PauliString, PauliSum

#: 2-qubit H2 Hamiltonian at 0.735 Å (Hartree units).
_H2_COEFFS = {
    "II": -1.052373245772859,
    "ZI": 0.39793742484318045,
    "IZ": -0.39793742484318045,
    "ZZ": -0.01128010425623538,
    "XX": 0.18093119978423156,
}


def h2_hamiltonian() -> PauliSum:
    """The reduced 2-qubit H2 Hamiltonian (ground energy ≈ -1.857 Ha)."""
    return PauliSum([PauliString(label, coeff) for label, coeff in _H2_COEFFS.items()])


def synthetic_molecular_hamiltonian(
    num_qubits: int, seed: int = 0, interaction_strength: float = 0.25
) -> PauliSum:
    """A seeded molecular-Hamiltonian stand-in.

    Structure mirrors a second-quantized electronic Hamiltonian after
    Jordan-Wigner: single-qubit Z terms (orbital energies), ZZ couplings
    (Coulomb/exchange), and weaker XX+YY hopping terms.  Hermitian by
    construction; exact ground energy available by diagonalization for the
    benchmark sizes (≤ 10 qubits).
    """
    if num_qubits < 1:
        raise VQEError("need at least one qubit")
    rng = np.random.default_rng(seed)
    terms = [PauliString("I" * num_qubits, -float(num_qubits) / 2.0)]
    for q in range(num_qubits):
        energy = -1.0 + 0.2 * q + 0.05 * rng.normal()
        terms.append(PauliString.from_sparse(num_qubits, {q: "Z"}, energy / 2.0))
    for a in range(num_qubits):
        for b in range(a + 1, num_qubits):
            coulomb = interaction_strength / (1.0 + (b - a)) * (1 + 0.1 * rng.normal())
            terms.append(
                PauliString.from_sparse(num_qubits, {a: "Z", b: "Z"}, coulomb / 4.0)
            )
    for a in range(num_qubits - 1):
        hop = interaction_strength * 0.5 * (1 + 0.1 * rng.normal())
        terms.append(
            PauliString.from_sparse(num_qubits, {a: "X", a + 1: "X"}, hop / 2.0)
        )
        terms.append(
            PauliString.from_sparse(num_qubits, {a: "Y", a + 1: "Y"}, hop / 2.0)
        )
    return PauliSum(terms)
