#!/usr/bin/env python
"""QAOA MAXCUT on the paper's benchmark graph families.

Solves MAXCUT with QAOA at p = 1..3 on a 6-node 3-regular graph and a
6-node Erdős–Rényi graph (the paper's Table 3 families), reporting the
approximation ratio against the brute-force optimum, and shows the
gate-based pulse runtime growing linearly with p while the structure that
partial compilation exploits (parameter monotonicity, Rz(θ) density) holds
at every p.

Run:  python examples/qaoa_maxcut.py
"""

from repro.analysis import format_table
from repro.circuits import critical_path_ns
from repro.core import is_parameter_monotonic, parametrized_gate_fraction
from repro.qaoa import QAOADriver, maxcut_problem, qaoa_circuit
from repro.transpile import transpile


def main():
    rows = []
    for kind in ("3regular", "erdosrenyi"):
        problem = maxcut_problem(kind, 6, seed=0)
        print(f"{problem.name}: {len(problem.edges)} edges, "
              f"optimal cut = {problem.optimal_cut}")
        for p in (1, 2, 3):
            circuit = transpile(qaoa_circuit(problem, p))
            assert is_parameter_monotonic(circuit)
            driver = QAOADriver(problem, p=p, max_iterations=150 * p,
                                seed=0, restarts=2)
            result = driver.run()
            rows.append([
                f"{kind} p={p}",
                result.expected_cut,
                problem.optimal_cut,
                result.approximation_ratio,
                result.best_sampled_cut,
                critical_path_ns(circuit),
                parametrized_gate_fraction(circuit),
            ])
    print()
    print(format_table(
        ["benchmark", "E[cut]", "opt", "ratio", "best sample",
         "gate runtime (ns)", "param gate frac"],
        rows,
        title="QAOA MAXCUT across p (paper Table 3 families, N=6)",
        precision=3,
    ))
    print("\nGate-based runtime grows linearly in p — exactly the regime "
          "where GRAPE's asymptoting pulse length wins (paper Figure 2).")


if __name__ == "__main__":
    main()
