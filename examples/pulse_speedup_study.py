#!/usr/bin/env python
"""Why pulse speedups matter: GRAPE basis-gate pulses and decoherence.

Recomputes the paper's Table 1 from first principles — running the
minimum-time GRAPE search for each basis gate on the gmon device model —
and translates the resulting speedups into success-probability gains under
exponential decoherence ("the effect of a pulse time speedup enters the
power of an exponential term", paper section 5).

Run:  python examples/pulse_speedup_study.py
"""

import numpy as np

from repro.analysis import decoherence_advantage, format_table
from repro.circuits import QuantumCircuit
from repro.config import GATE_DURATIONS_NS
from repro.pulse.device import GmonDevice
from repro.pulse.grape import GrapeHyperparameters, GrapeSettings, minimum_time_pulse
from repro.pulse.hamiltonian import build_control_set
from repro.sim import circuit_unitary
from repro.transpile import line_topology


def gate_unitaries():
    h = QuantumCircuit(1).h(0)
    rz = QuantumCircuit(1).rz(np.pi, 0)
    rx = QuantumCircuit(1).rx(np.pi, 0)
    cx = QuantumCircuit(2).cx(0, 1)
    swap = QuantumCircuit(2).swap(0, 1)
    return {
        "rz": (circuit_unitary(rz), 1),
        "rx": (circuit_unitary(rx), 1),
        "h": (circuit_unitary(h), 1),
        "cx": (circuit_unitary(cx), 2),
        "swap": (circuit_unitary(swap), 2),
    }


def main():
    device = GmonDevice(line_topology(2))
    settings = GrapeSettings(dt_ns=0.1, target_fidelity=0.999)
    hyper = GrapeHyperparameters(learning_rate=0.05, decay_rate=0.002,
                                 max_iterations=400)

    rows = []
    for name, (target, width) in gate_unitaries().items():
        control_set = build_control_set(device, list(range(width)))
        paper_ns = GATE_DURATIONS_NS[name]
        result = minimum_time_pulse(
            control_set, target, upper_bound_ns=2.5 * paper_ns,
            hyperparameters=hyper, settings=settings, precision_ns=0.2,
        )
        rows.append([name, paper_ns, result.duration_ns, result.fidelity,
                     result.total_iterations])
        print(f"  {name}: GRAPE found {result.duration_ns:.2f} ns "
              f"(paper Table 1: {paper_ns} ns)")
    print()
    print(format_table(
        ["gate", "paper (ns)", "GRAPE min (ns)", "fidelity", "iterations"],
        rows,
        title="Table 1 recomputed on the gmon model",
        precision=2,
    ))

    # A concrete decoherence story: a 1000 ns circuit sped up 2x.
    baseline, sped_up = 1000.0, 500.0
    gain = decoherence_advantage(baseline, sped_up)
    print(f"\nA 2x pulse speedup on a 1 µs circuit multiplies the "
          f"success probability by {gain:.3f} (T_coh = 20 µs); the gain is "
          f"exponential in the time saved, so speedups compound for deeper "
          f"circuits.")


if __name__ == "__main__":
    main()
