#!/usr/bin/env python
"""The mechanism behind flexible partial compilation (paper §7.2, Figure 4).

Flexible partial compilation works because of one empirical fact: for a
single-angle parametrized subcircuit, the high-performing GRAPE
hyperparameters are *robust to the angle's value* — tune once offline,
reuse at every variational iteration.  This study demonstrates that fact
and compares four ways of finding the hyperparameters:

1. a learning-rate sweep at several angles (the Figure 4 robustness plot),
2. exhaustive grid search (the default tuner),
3. successive halving (bandit racing — far fewer GRAPE iterations),
4. a radial-basis-function surrogate (the method the paper cites).

Run:  python examples/hyperparameter_study.py
"""

import numpy as np

from repro.analysis import format_table
from repro.circuits import QuantumCircuit
from repro.circuits.parameters import Parameter
from repro.core.hyperopt import (
    learning_rate_sweep,
    sample_targets,
    tune_hyperparameters,
)
from repro.core.search import rbf_search, successive_halving
from repro.pulse.device import GmonDevice
from repro.pulse.grape import GrapeSettings
from repro.pulse.hamiltonian import build_control_set
from repro.transpile import line_topology

SETTINGS = GrapeSettings(dt_ns=0.5, target_fidelity=0.95)
NUM_STEPS = 12
LEARNING_RATES = (0.003, 0.01, 0.03, 0.1, 0.3)


def single_theta_subcircuit() -> QuantumCircuit:
    """A representative single-angle block: entangler + Rz(θ) + entangler."""
    theta = Parameter("theta")
    circuit = QuantumCircuit(2)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.rz(theta, 1)
    circuit.cx(0, 1)
    circuit.h(0)
    return circuit


def robustness_study(control_set, subcircuit) -> None:
    """Figure 4's claim: the best learning rate is the same at every θ."""
    targets = sample_targets(subcircuit, 4, seed=1)
    errors = learning_rate_sweep(
        control_set, targets, NUM_STEPS, LEARNING_RATES, iterations=60,
        settings=SETTINGS,
    )
    rows = []
    argmins = []
    for i, row in enumerate(errors):
        argmins.append(int(np.argmin(row)))
        rows.append(
            (f"θ sample {i}",)
            + tuple(f"{err:.3f}" for err in row)
            + (f"{LEARNING_RATES[argmins[-1]]:g}",)
        )
    print(
        format_table(
            ("angle", *(f"lr={lr:g}" for lr in LEARNING_RATES), "best lr"),
            rows,
            title="GRAPE error after 60 iterations vs ADAM learning rate (Fig. 4)",
        )
    )
    spread = max(argmins) - min(argmins)
    print(
        f"\nBest-learning-rate column varies by {spread} grid step(s) across "
        f"angles — the robustness flexible partial compilation relies on.\n"
    )


def tuner_comparison(control_set, subcircuit) -> None:
    """Same block, three tuners: quality vs GRAPE-iteration cost."""
    targets = sample_targets(subcircuit, 2, seed=2)
    grid = tune_hyperparameters(
        control_set, targets, NUM_STEPS, settings=SETTINGS, iteration_budget=120,
    )
    halving = successive_halving(
        control_set, targets, NUM_STEPS, settings=SETTINGS,
        num_configs=9, iteration_budget=120, seed=0,
    )
    rbf = rbf_search(
        control_set, targets, NUM_STEPS, settings=SETTINGS,
        num_initial=4, num_iterations=4, iteration_budget=120, seed=0,
    )
    rows = []
    for name, result in (("grid", grid), ("halving", halving), ("rbf", rbf)):
        best = result.best_trial
        rows.append(
            (
                name,
                len(result.trials),
                f"{result.total_iterations}",
                f"{best.learning_rate:g}",
                f"{best.decay_rate:g}",
                f"{best.mean_iterations:.0f}",
                "yes" if best.all_converged else "no",
            )
        )
    print(
        format_table(
            (
                "tuner", "trials", "GRAPE iters spent", "best lr",
                "best decay", "iters-to-converge", "converged",
            ),
            rows,
            title="Hyperparameter tuners on one single-θ block",
        )
    )


def main() -> None:
    subcircuit = single_theta_subcircuit()
    device = GmonDevice(line_topology(2))
    control_set = build_control_set(device, [0, 1])
    robustness_study(control_set, subcircuit)
    tuner_comparison(control_set, subcircuit)


if __name__ == "__main__":
    main()
