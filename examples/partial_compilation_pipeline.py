#!/usr/bin/env python
"""Anatomy of partial compilation: slicing, blocking, hyperparameters.

Walks the paper's Figure 3 pipeline step by step on a LiH UCCSD ansatz:

1. transpile to the Table-1 basis with every parametrized gate an Rz(θ);
2. strict slicing — the alternating [Fixed, Rz(θ)] structure;
3. flexible slicing — deep single-θ slices via parameter monotonicity;
4. blocking into GRAPE-sized subcircuits;
5. hyperparameter robustness — the Figure 4 observation that the best
   ADAM learning rate for a single-θ block does not depend on θ.

Run:  python examples/partial_compilation_pipeline.py
"""

import numpy as np

from repro.analysis import format_table
from repro.blocking import aggregate_blocks
from repro.core import (
    flexible_slices,
    learning_rate_sweep,
    parametrized_gate_fraction,
    sample_targets,
    strict_slices,
)
from repro.pulse.device import GmonDevice
from repro.pulse.grape import GrapeSettings
from repro.pulse.hamiltonian import build_control_set
from repro.transpile import line_topology, transpile
from repro.vqe import get_molecule


def main():
    # Step 1: the workload.
    molecule = get_molecule("LiH")
    circuit = transpile(molecule.ansatz())
    print(f"{molecule.name} UCCSD: {circuit.num_qubits} qubits, "
          f"{len(circuit)} gates, {len(circuit.parameters)} parameters, "
          f"{parametrized_gate_fraction(circuit):.1%} parametrized gates "
          f"(paper: 5-8% for VQE)\n")

    # Step 2: strict slicing.
    strict = strict_slices(circuit)
    fixed = [s for s in strict if s.kind == "fixed"]
    print(f"Strict slicing: {len(strict)} slices "
          f"({len(fixed)} Fixed, {len(strict) - len(fixed)} Rz(θ))")
    print(f"  Fixed-slice depth: mean {np.mean([s.num_gates for s in fixed]):.1f} "
          f"gates, max {max(s.num_gates for s in fixed)}")

    # Step 3: flexible slicing.
    flexible = flexible_slices(circuit)
    print(f"Flexible slicing: {len(flexible)} single-θ slices "
          f"(one per parameter), depth: mean "
          f"{np.mean([s.num_gates for s in flexible]):.1f} gates — "
          f"much deeper, as Figure 3c promises\n")

    # Step 4: blocking one flexible slice.
    piece = flexible[0]
    blocked = aggregate_blocks(piece.circuit, max_width=3)
    rows = [
        [b.index, str(sorted(b.qubits)), len(b.instruction_indices),
         "yes" if any(circuit[i].parameters for i in b.instruction_indices) else "no"]
        for b in blocked.blocks
    ]
    print(format_table(
        ["block", "qubits", "gates", "contains θ?"],
        rows,
        title=f"Blocking of slice θ={piece.parameter.name} (≤3-qubit GRAPE blocks)",
    ))

    # Step 5: hyperparameter robustness (Figure 4's observation).
    theta_block = QuantumBlockForDemo(circuit, blocked)
    sub, device_qubits = theta_block.first_parametrized_block()
    device = GmonDevice(line_topology(molecule.num_qubits))
    control_set = build_control_set(device, device_qubits)
    targets = sample_targets(sub, 3, seed=5)
    lrs = (0.003, 0.01, 0.03, 0.1)
    errors = learning_rate_sweep(
        control_set, targets, num_steps=16, learning_rates=lrs, iterations=60,
        settings=GrapeSettings(dt_ns=0.25, target_fidelity=0.99),
    )
    rows = [[f"θ sample {i}"] + [f"{e:.3f}" for e in row]
            for i, row in enumerate(errors)]
    print()
    print(format_table(
        ["angle"] + [f"lr={lr}" for lr in lrs],
        rows,
        title="GRAPE error after 60 iterations vs learning rate (Figure 4)",
    ))
    best = [int(np.argmin(row)) for row in errors]
    print(f"\nBest learning-rate column per θ sample: {best} — identical "
          f"across angles, which is why the tuned hyperparameters can be "
          f"precomputed once and reused every iteration.")


class QuantumBlockForDemo:
    """Helper to pull the first θ-dependent block out of a blocked slice."""

    def __init__(self, circuit, blocked):
        self.circuit = circuit
        self.blocked = blocked

    def first_parametrized_block(self):
        for block in self.blocked.blocks:
            sub, device_qubits = self.blocked.local_circuit(block)
            if sub.is_parameterized():
                return sub, device_qubits
        raise RuntimeError("no parametrized block found")


if __name__ == "__main__":
    main()
