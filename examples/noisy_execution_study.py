#!/usr/bin/env python
"""Decoherence study: what the pulse speedups buy in success probability.

Simulates a QAOA circuit through a density-matrix noise model (amplitude
damping + dephasing scaled by each gate's pulse duration) at several pulse
speedup factors.  The fidelity gain is exponential in the time saved —
"our pulse speedups are not merely about wall time ... but moreso about
making computations possible in the first place, before the qubits
decohere" (paper section 9).

Run:  python examples/noisy_execution_study.py
"""

from repro.analysis import format_table
from repro.qaoa import maxcut_problem, qaoa_circuit
from repro.sim import NoiseModel, success_probability_with_speedup
from repro.transpile import transpile


def main():
    problem = maxcut_problem("3regular", 6, seed=0)
    circuit = transpile(qaoa_circuit(problem, p=3)).bind_parameters(
        [0.4, 0.9, 0.5, 0.8, 0.6, 0.7]
    )
    print(f"Workload: {circuit.name}, {len(circuit)} gates\n")

    # Short coherence times exaggerate the effect so it is visible on a
    # small circuit; the mechanism is identical at realistic T1/T2.
    noise = NoiseModel(t1_ns=3000.0, t2_ns=2500.0)

    rows = []
    base = success_probability_with_speedup(circuit, 1.0, noise)
    for speedup in (1.0, 1.5, 2.0, 3.0, 5.0):
        prob = success_probability_with_speedup(circuit, speedup, noise)
        rows.append([f"{speedup:.1f}x", prob, prob / base])
    print(format_table(
        ["pulse speedup", "success probability", "gain over gate-based"],
        rows,
        title="Success probability vs pulse speedup (T1=3µs, T2=2.5µs)",
        precision=4,
    ))
    print("\nThe 1.5-3x speedups partial compilation delivers (Figure 5/6) "
          "convert into multiplicative fidelity gains that compound with "
          "circuit depth.")


if __name__ == "__main__":
    main()
