#!/usr/bin/env python
"""KAK decomposition and the 3-CX bound (paper §5.4), hands on.

The paper quotes the classic circuit-complexity result that "3 CX gates,
sandwiched by single-qubit rotations, is sufficient to implement any two
qubit operation", and measures how much further GRAPE's continuous control
can go.  This example shows the gate-level side of that argument:

1. the Weyl-chamber coordinates and minimal CX count of the named
   two-qubit gates,
2. resynthesis of random two-qubit unitaries at their provable CX minimum,
3. the KAK resynthesis pass collapsing a deep two-qubit gate run — and how
   its best possible result still falls short of the GRAPE pulse for the
   same block, which is the gap only pulse-level control closes.

Run:  python examples/two_qubit_resynthesis.py
"""

import numpy as np

from repro.analysis import format_table
from repro.circuits import QuantumCircuit
from repro.circuits.gates import CXGate, CZGate, ISwapGate, SwapGate
from repro.linalg import global_phase_aligned, haar_random_unitary
from repro.pulse.device import GmonDevice
from repro.pulse.grape import GrapeHyperparameters, GrapeSettings, minimum_time_pulse
from repro.pulse.hamiltonian import build_control_set
from repro.sim import circuit_unitary
from repro.transpile import (
    kak_decompose,
    line_topology,
    resynthesize_two_qubit_runs,
    two_qubit_circuit,
)
from repro.transpile.basis import decompose_to_basis
from repro.transpile.optimize import optimize_circuit
from repro.transpile.schedule import asap_schedule


def named_gate_classes() -> None:
    print("1. Weyl-chamber coordinates of the named two-qubit gates:\n")
    rows = []
    for gate in (CXGate(), CZGate(), ISwapGate(), SwapGate()):
        d = kak_decompose(gate.matrix())
        circuit = two_qubit_circuit(gate.matrix())
        rows.append(
            (
                gate.name,
                f"({d.x:.3f}, {d.y:.3f}, {d.z:.3f})",
                circuit.count_ops().get("cx", 0),
            )
        )
    print(format_table(("gate", "(x, y, z)", "min CX"), rows))
    print(
        "\nCX and CZ share a Weyl point (locally equivalent); SWAP sits at "
        "the chamber corner (π/4, π/4, π/4) and needs all 3 CX.\n"
    )


def random_unitary_synthesis() -> None:
    print("2. Random SU(4) synthesis at the 3-CX bound:\n")
    rows = []
    for seed in range(4):
        u = haar_random_unitary(4, seed=seed)
        circuit = two_qubit_circuit(u)
        synthesized = global_phase_aligned(u, circuit_unitary(circuit))
        err = np.abs(synthesized - u).max()
        rows.append((f"haar seed {seed}", circuit.count_ops().get("cx", 0), f"{err:.2e}"))
    print(format_table(("unitary", "CX count", "max |Δ| (up to phase)"), rows))
    print()


def pass_vs_grape() -> None:
    print("3. Resynthesis pass vs GRAPE on one deep two-qubit run:\n")
    rng = np.random.default_rng(3)
    block = QuantumCircuit(2)
    for _ in range(5):
        block.rz(rng.uniform(-3, 3), 0)
        block.rx(rng.uniform(-3, 3), 1)
        block.cx(0, 1)
    block.rz(rng.uniform(-3, 3), 1)

    resynth = optimize_circuit(decompose_to_basis(resynthesize_two_qubit_runs(block)))
    base_ns = asap_schedule(decompose_to_basis(block)).duration_ns
    resynth_ns = asap_schedule(resynth).duration_ns

    device = GmonDevice(line_topology(2))
    control_set = build_control_set(device, [0, 1])
    pulse = minimum_time_pulse(
        control_set,
        circuit_unitary(block),
        upper_bound_ns=base_ns,
        hyperparameters=GrapeHyperparameters(0.05, 0.002, max_iterations=200),
        settings=GrapeSettings(dt_ns=0.5, target_fidelity=0.95),
    )
    rows = [
        ("original run", block.count_ops().get("cx", 0), f"{base_ns:.1f}"),
        ("KAK resynthesis (≤3 CX)", resynth.count_ops().get("cx", 0), f"{resynth_ns:.1f}"),
        ("GRAPE pulse", "—", f"{pulse.duration_ns:.1f}"),
    ]
    print(format_table(("implementation", "CX count", "duration (ns)"), rows))
    print(
        "\nThe resynthesis pass reaches the gate model's provable floor; the "
        "remaining distance to the GRAPE pulse is the part of the speedup "
        "that genuinely requires pulse-level control (ISA alignment, "
        "fractional gates, the 15x Z/X drive asymmetry)."
    )


def main() -> None:
    named_gate_classes()
    random_unitary_synthesis()
    pass_vs_grape()


if __name__ == "__main__":
    main()
