#!/usr/bin/env python
"""Quickstart: one CompilationService, one circuit, every strategy.

Builds a QAOA MAXCUT circuit on the 4-node clique (the paper's Figure 2
workload), then compiles one parametrization through each registered
strategy of the ``repro.service`` facade and prints the paper's two
headline metrics side by side: pulse duration and runtime compilation
latency.  One service instance serves every request, so the strategies
share one block executor, one pulse cache, and one block-dedup scheduler
state.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis import format_table, success_probability
from repro.pulse.device import GmonDevice
from repro.pulse.grape import GrapeHyperparameters, GrapeSettings
from repro.qaoa import maxcut_problem, qaoa_circuit
from repro.service import CompilationService, CompileRequest
from repro.transpile import line_topology, transpile


def main():
    # 1. A variational workload: QAOA MAXCUT on the 4-node clique, p=1.
    problem = maxcut_problem("clique", 4, seed=0)
    circuit = transpile(qaoa_circuit(problem, p=1))
    print(f"Workload: {circuit.name} — {circuit.num_qubits} qubits, "
          f"{len(circuit)} gates, {len(circuit.parameters)} parameters\n")

    # 2. One service: a gmon chip (paper Appendix A), fast GRAPE settings,
    #    and all the shared machinery behind one front door.
    service = CompilationService(
        device=GmonDevice(line_topology(4)),
        settings=GrapeSettings(dt_ns=0.25, target_fidelity=0.99),
        hyperparameters=GrapeHyperparameters(learning_rate=0.05,
                                             decay_rate=0.002,
                                             max_iterations=200),
    )

    # One iteration's angles, as the classical optimizer would supply them.
    theta = list(np.random.default_rng(1).uniform(0.2, 1.2, size=2))

    # 3. Compile with each strategy.  The uncached full-GRAPE request pays
    #    the paper's honest out-of-the-box latency; flexible partial
    #    compilation takes its tuning knobs through request options.
    strategies = [
        ("gate-based", CompileRequest(circuit, theta, strategy="gate")),
        ("step-function", CompileRequest(circuit, theta,
                                         strategy="step-function")),
        ("strict partial", CompileRequest(circuit, theta,
                                          strategy="strict-partial",
                                          max_block_width=3)),
        ("flexible partial", CompileRequest(
            circuit, theta, strategy="flexible-partial", max_block_width=3,
            options={"tuning_samples": 2, "learning_rates": (0.03, 0.1),
                     "decay_rates": (0.0, 0.01)})),
        ("full GRAPE", CompileRequest(circuit, theta, strategy="full-grape",
                                      max_block_width=3, use_cache=False)),
    ]
    results = {}
    with service:
        for label, request in strategies:
            results[label] = service.compile(request)

    # 4. Report against the gate-based baseline.
    gate_ns = results["gate-based"].pulse_duration_ns
    rows = []
    for label, result in results.items():
        precompute = (result.precompile_report.wall_time_s
                      if result.precompile_report is not None else 0.0)
        rows.append([
            label,
            result.pulse_duration_ns,
            gate_ns / result.pulse_duration_ns,
            result.runtime_latency_s * 1e3,
            precompute,
            success_probability(result.pulse_duration_ns) /
            success_probability(gate_ns),
        ])
    print(format_table(
        ["strategy", "pulse (ns)", "speedup", "runtime latency (ms)",
         "precompute (s)", "success gain"],
        rows,
        title="QAOA MAXCUT K4, p=1 — one variational iteration",
        precision=2,
    ))
    print("\nThe pattern the paper reports: GRAPE-quality pulse durations "
          "need either full GRAPE's runtime latency (untenable in the loop) "
          "or partial compilation's precompute + tiny runtime cost.")


if __name__ == "__main__":
    main()
