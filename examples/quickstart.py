#!/usr/bin/env python
"""Quickstart: compile one variational circuit four ways.

Builds a QAOA MAXCUT circuit on the 4-node clique (the paper's Figure 2
workload), then compiles one parametrization with each strategy and prints
the paper's two headline metrics side by side: pulse duration and runtime
compilation latency.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis import format_table, success_probability
from repro.core import (
    FlexiblePartialCompiler,
    FullGrapeCompiler,
    GateBasedCompiler,
    StrictPartialCompiler,
)
from repro.pulse.device import GmonDevice
from repro.pulse.grape import GrapeHyperparameters, GrapeSettings
from repro.qaoa import maxcut_problem, qaoa_circuit
from repro.transpile import line_topology, transpile


def main():
    # 1. A variational workload: QAOA MAXCUT on the 4-node clique, p=1.
    problem = maxcut_problem("clique", 4, seed=0)
    circuit = transpile(qaoa_circuit(problem, p=1))
    print(f"Workload: {circuit.name} — {circuit.num_qubits} qubits, "
          f"{len(circuit)} gates, {len(circuit.parameters)} parameters\n")

    # 2. The device: a gmon chip (paper Appendix A) and fast GRAPE settings.
    device = GmonDevice(line_topology(4))
    settings = GrapeSettings(dt_ns=0.25, target_fidelity=0.99)
    hyper = GrapeHyperparameters(learning_rate=0.05, decay_rate=0.002,
                                 max_iterations=200)

    # One iteration's angles, as the classical optimizer would supply them.
    theta = list(np.random.default_rng(1).uniform(0.2, 1.2, size=2))

    # 3. Compile with each strategy.
    gate = GateBasedCompiler().compile_parametrized(circuit, theta)

    grape = FullGrapeCompiler(
        device=device, settings=settings, hyperparameters=hyper,
        max_block_width=3,
    ).compile_parametrized(circuit, theta)

    strict = StrictPartialCompiler.precompile(
        circuit, device=device, settings=settings, hyperparameters=hyper,
        max_block_width=3,
    )
    strict_result = strict.compile(theta)

    flexible = FlexiblePartialCompiler.precompile(
        circuit, device=device, settings=settings, hyperparameters=hyper,
        max_block_width=3, tuning_samples=2,
        learning_rates=(0.03, 0.1), decay_rates=(0.0, 0.01),
    )
    flexible_result = flexible.compile(theta)

    # 4. Report.
    rows = []
    for label, result, precompute in (
        ("gate-based", gate, 0.0),
        ("strict partial", strict_result, strict.report.wall_time_s),
        ("flexible partial", flexible_result, flexible.report.wall_time_s),
        ("full GRAPE", grape, 0.0),
    ):
        rows.append([
            label,
            result.pulse_duration_ns,
            gate.pulse_duration_ns / result.pulse_duration_ns,
            result.runtime_latency_s * 1e3,
            precompute,
            success_probability(result.pulse_duration_ns) /
            success_probability(gate.pulse_duration_ns),
        ])
    print(format_table(
        ["strategy", "pulse (ns)", "speedup", "runtime latency (ms)",
         "precompute (s)", "success gain"],
        rows,
        title="QAOA MAXCUT K4, p=1 — one variational iteration",
        precision=2,
    ))
    print("\nThe pattern the paper reports: GRAPE-quality pulse durations "
          "need either full GRAPE's runtime latency (untenable in the loop) "
          "or partial compilation's precompute + tiny runtime cost.")


if __name__ == "__main__":
    main()
