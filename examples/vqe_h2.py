#!/usr/bin/env python
"""VQE on H2 with partial compilation in the loop (paper section 8.4).

Runs the full hybrid loop of Figure 1 — UCCSD ansatz, exact-statevector
energy, Nelder-Mead — while compiling the circuit to pulses at *every*
iteration with strict partial compilation.  The point of the exercise:
the per-iteration compilation latency is essentially zero, where full
GRAPE would cost minutes per iteration ("over 2 years of runtime
compilation latency" for the paper's 3500-iteration BeH2 run).

Run:  python examples/vqe_h2.py
"""

from repro.analysis import format_table
from repro.core import StrictPartialCompiler
from repro.pulse.device import GmonDevice
from repro.pulse.grape import GrapeHyperparameters, GrapeSettings
from repro.transpile import line_topology, transpile
from repro.vqe import VQEDriver, get_molecule, h2_hamiltonian


def main():
    molecule = get_molecule("H2")
    hamiltonian = h2_hamiltonian()
    ansatz = transpile(molecule.ansatz())
    print(f"Molecule: {molecule.name} — {molecule.num_qubits} qubits, "
          f"{molecule.num_parameters} UCCSD parameters, "
          f"{len(ansatz)} gates after transpilation")
    print(f"Exact ground-state energy: {hamiltonian.ground_state_energy():+.6f} Ha\n")

    # Pre-compute GRAPE pulses for the Fixed blocks, once.
    settings = GrapeSettings(dt_ns=0.25, target_fidelity=0.99)
    hyper = GrapeHyperparameters(learning_rate=0.05, decay_rate=0.002,
                                 max_iterations=200)
    compiler = StrictPartialCompiler.precompile(
        ansatz,
        device=GmonDevice(line_topology(molecule.num_qubits)),
        settings=settings,
        hyperparameters=hyper,
        max_block_width=2,
    )
    print(f"Strict precompile: {compiler.report.blocks_precompiled} Fixed "
          f"blocks in {compiler.report.wall_time_s:.1f} s "
          f"({compiler.report.grape_iterations} GRAPE iterations, "
          f"{compiler.report.cache_hits} cache hits)\n")

    # The hybrid loop, compiling at every iteration.
    driver = VQEDriver(hamiltonian, ansatz, max_iterations=300, seed=2,
                       compiler=compiler)
    result = driver.run()

    print(format_table(
        ["quantity", "value"],
        [
            ["VQE energy (Ha)", f"{result.optimal_energy:+.6f}"],
            ["exact energy (Ha)", f"{result.exact_energy:+.6f}"],
            ["absolute error (Ha)", f"{result.error_to_exact:.2e}"],
            ["optimizer iterations", result.iterations],
            ["total in-loop compile latency (s)", f"{result.compile_latency_s:.4f}"],
            ["pulse duration per iteration (ns)", f"{result.compile_pulse_ns[-1]:.1f}"],
        ],
        title="VQE-H2 with strict partial compilation in the loop",
    ))
    print("\nEvery one of those iterations was compiled to pulses at "
          "lookup-table speed — that is the strict-partial-compilation "
          "contribution.")


if __name__ == "__main__":
    main()
