#!/usr/bin/env python
"""VQE on H2 with the compilation service in the loop (paper section 8.4).

Runs the full hybrid loop of Figure 1 — UCCSD ansatz, exact-statevector
energy, Nelder-Mead — with one long-lived ``CompilationService`` as the
driver's compiler hook: every iteration recompiles the ansatz with strict
partial compilation, and the service's cross-call scheduler state makes
the GRAPE work for the θ-independent Fixed blocks happen exactly once for
the whole run.  The point of the exercise: the per-iteration compilation
latency is essentially zero, where full GRAPE would cost minutes per
iteration ("over 2 years of runtime compilation latency" for the paper's
3500-iteration BeH2 run).

Run:  python examples/vqe_h2.py
"""

from repro.analysis import format_table
from repro.pulse.device import GmonDevice
from repro.pulse.grape import GrapeHyperparameters, GrapeSettings
from repro.service import CompilationService, CompileRequest
from repro.transpile import line_topology, transpile
from repro.vqe import VQEDriver, get_molecule, h2_hamiltonian


def main():
    molecule = get_molecule("H2")
    hamiltonian = h2_hamiltonian()
    ansatz = transpile(molecule.ansatz())
    print(f"Molecule: {molecule.name} — {molecule.num_qubits} qubits, "
          f"{molecule.num_parameters} UCCSD parameters, "
          f"{len(ansatz)} gates after transpilation")
    print(f"Exact ground-state energy: {hamiltonian.ground_state_energy():+.6f} Ha\n")

    # One service for the whole run: strict partial compilation by default,
    # one executor, one pulse cache, one block-dedup scheduler state.
    service = CompilationService(
        device=GmonDevice(line_topology(molecule.num_qubits)),
        settings=GrapeSettings(dt_ns=0.25, target_fidelity=0.99),
        hyperparameters=GrapeHyperparameters(learning_rate=0.05,
                                             decay_rate=0.002,
                                             max_iterations=200),
        default_strategy="strict-partial",
        max_block_width=2,
    )

    with service:
        # Warm the service once so the precompute cost is visible up front
        # (values=None on a partial strategy means "precompile only").
        warmup = service.compile(
            CompileRequest(ansatz, strategy="strict-partial", max_block_width=2)
        )
        report = warmup.precompile_report
        print(f"Strict precompile: {report.blocks_precompiled} Fixed "
              f"blocks in {report.wall_time_s:.1f} s "
              f"({report.grape_iterations} GRAPE iterations, "
              f"{report.cache_hits} cache hits)\n")

        # The hybrid loop: the driver calls service.compile_parametrized at
        # every iteration; Fixed blocks are served from the scheduler state.
        driver = VQEDriver(hamiltonian, ansatz, max_iterations=300, seed=2,
                           compiler=service)
        result = driver.run()

    reused = result.compile_stats["scheduler"]["cross_call_hits"]
    print(format_table(
        ["quantity", "value"],
        [
            ["VQE energy (Ha)", f"{result.optimal_energy:+.6f}"],
            ["exact energy (Ha)", f"{result.exact_energy:+.6f}"],
            ["absolute error (Ha)", f"{result.error_to_exact:.2e}"],
            ["optimizer iterations", result.iterations],
            ["total in-loop compile latency (s)", f"{result.compile_latency_s:.4f}"],
            ["pulse duration per iteration (ns)", f"{result.compile_pulse_ns[-1]:.1f}"],
            ["blocks served from scheduler state", reused],
        ],
        title="VQE-H2 with the compilation service in the loop",
    ))
    print("\nEvery one of those iterations was compiled to pulses at "
          "lookup-table speed — the strict-partial-compilation contribution, "
          "served through one long-lived CompilationService.")


if __name__ == "__main__":
    main()
