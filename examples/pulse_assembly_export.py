#!/usr/bin/env python
"""Exporting a strict-partial-compilation plan as pulse assembly (§6).

The paper proposes storing the precompiled Fixed-block pulses "as
microinstructions in a low-level assembly such as eQASM".  This example
walks the full path a control computer would take:

1. strict-partial-compile a small UCCSD-style circuit (GRAPE runs once,
   offline),
2. export the plan as a pulse assembly: a deduplicated microinstruction
   table plus a program of ``pulse``/``rz`` ops,
3. serialize it to JSON and load it back (the artifact one would ship to
   the fridge-side control stack),
4. link it at three different variational parametrizations — the
   zero-GRAPE runtime step — and confirm the pulse duration never changes
   with the angles.

Run:  python examples/pulse_assembly_export.py
"""

import numpy as np

from repro.analysis import format_table
from repro.circuits import QuantumCircuit
from repro.circuits.parameters import Parameter
from repro.pulse import PulseAssembly, assembly_from_strict_plan
from repro.pulse.grape import GrapeHyperparameters, GrapeSettings
from repro.service import CompilationService, CompileRequest

SETTINGS = GrapeSettings(dt_ns=0.5, target_fidelity=0.95)
HYPER = GrapeHyperparameters(learning_rate=0.05, decay_rate=0.002, max_iterations=150)


def ansatz_like_circuit() -> QuantumCircuit:
    """A miniature UCCSD-flavored block: CX ladders around Rz(θᵢ)."""
    t0, t1 = Parameter("t0"), Parameter("t1")
    circuit = QuantumCircuit(2)
    circuit.h(0)
    circuit.h(1)
    circuit.cx(0, 1)
    circuit.rz(t0, 1)
    circuit.cx(0, 1)
    circuit.rx(np.pi / 2, 0)
    circuit.cx(0, 1)
    circuit.rz(t1 * 0.5, 1)
    circuit.cx(0, 1)
    circuit.h(0)
    return circuit


def main() -> None:
    circuit = ansatz_like_circuit()
    print("1. Precompiling Fixed blocks with GRAPE (offline, once)...")
    # values=None on a partial strategy means "precompile only": the result
    # carries the reusable plan compiler instead of a pulse program.
    with CompilationService(settings=SETTINGS, hyperparameters=HYPER) as service:
        result = service.compile(
            CompileRequest(circuit, strategy="strict-partial", max_block_width=2)
        )
    compiler = result.compiler
    report = result.precompile_report
    print(
        f"   {report.blocks_precompiled} Fixed blocks precompiled in "
        f"{report.wall_time_s:.1f}s ({report.grape_iterations} GRAPE iterations)\n"
    )

    print("2. Exporting the plan as eQASM-style pulse assembly:\n")
    assembly = assembly_from_strict_plan(compiler)
    print(assembly.format())

    print("\n3. JSON round-trip (the artifact the control stack loads):")
    payload = assembly.to_json()
    loaded = PulseAssembly.from_json(payload)
    print(f"   {len(payload)} bytes, {len(loaded.table)} unique microinstructions\n")

    print("4. Linking at three parametrizations (zero GRAPE at runtime):")
    rows = []
    for values in ([0.1, -0.4], [1.2, 2.2], [-3.0, 0.05]):
        program = loaded.link({"t0": values[0], "t1": values[1]})
        rows.append(
            (f"θ = {values}", len(program), f"{program.duration_ns:.1f}")
        )
    print(format_table(("parametrization", "blocks", "pulse duration (ns)"), rows))
    durations = {row[2] for row in rows}
    assert len(durations) == 1, "lookup Rz durations must be angle-independent"
    print(
        "\nThe duration is identical for every parametrization: runtime "
        "compilation is pure table lookup, exactly the paper's strict "
        "partial compilation property."
    )


if __name__ == "__main__":
    main()
