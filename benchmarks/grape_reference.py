"""The frozen pre-rewrite GRAPE kernel and its fixed-seed fixtures.

This module is the single copy of the seed's ``cost_and_gradient``
implementation, kept verbatim after the vectorized-kernel rewrite.  Two
consumers depend on it staying identical:

* ``tests/pulse/test_grape_kernel_regression.py`` pins the live kernel to
  this oracle (≤1e-10);
* ``benchmarks/run_benchmarks.py`` times the live kernel against it and
  records the speedup in ``BENCH_grape_kernel.json``.

Do not "improve" this code — its whole value is that it does not move.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.expm import _divided_differences
from repro.linalg.random import haar_random_unitary
from repro.pulse.device import GmonDevice
from repro.pulse.grape.cost import GrapeCost
from repro.pulse.hamiltonian import build_control_set
from repro.transpile.topology import line_topology


def reference_cost_and_gradient(cost: GrapeCost, controls: np.ndarray) -> tuple:
    """The seed (pre-rewrite) kernel, evaluated on a live ``GrapeCost``."""
    ops = cost.control_set.operators
    n_controls, n_steps = controls.shape
    dt = cost.dt_ns
    dim = cost.control_set.dim
    drift = cost.control_set.drift

    hams = drift[None, :, :] + np.einsum("ck,cij->kij", controls, ops, optimize=True)
    eigvals, eigvecs = np.linalg.eigh(hams)
    phases = np.exp(-1j * dt * eigvals)
    props = np.einsum(
        "kij,kj,klj->kil", eigvecs, phases, eigvecs.conj(), optimize=True
    )
    forward = np.empty((n_steps + 1, dim, dim), dtype=complex)
    forward[0] = np.eye(dim)
    for k in range(n_steps):
        forward[k + 1] = props[k] @ forward[k]
    backward = np.empty((n_steps, dim, dim), dtype=complex)
    backward[n_steps - 1] = np.eye(dim)
    for k in range(n_steps - 2, -1, -1):
        backward[k] = backward[k + 1] @ props[k + 1]
    total = forward[n_steps]
    e_dag = cost._target_embedded.conj().T
    overlap = np.trace(e_dag @ total) / cost._dim_comp
    fidelity = float(np.abs(overlap) ** 2)
    g_mats = np.einsum(
        "kij,jl,klm->kim", forward[:-1], e_dag, backward, optimize=True
    )
    gammas = np.empty((n_steps, dim, dim), dtype=complex)
    for k in range(n_steps):
        gammas[k] = _divided_differences(eigvals[k], phases[k], dt)
    g_eig = np.einsum(
        "kji,kjl,klm->kim", eigvecs.conj(), g_mats, eigvecs, optimize=True
    )
    ops_eig = np.einsum(
        "kji,cjl,klm->ckim", eigvecs.conj(), ops, eigvecs, optimize=True
    )
    mask = np.transpose(g_eig, (0, 2, 1)) * gammas
    overlap_grad = (
        np.einsum("kij,ckij->ck", mask, ops_eig, optimize=True) / cost._dim_comp
    )
    grad_fidelity = 2.0 * np.real(np.conj(overlap) * overlap_grad)
    reg_cost, reg_grad = cost._regularization_terms(controls)
    return 1.0 - fidelity + reg_cost, -grad_fidelity + reg_grad, fidelity


def kernel_fixture(
    n_qubits: int,
    levels: int,
    n_steps: int,
    seed: int = 42,
    regularization=None,
) -> tuple:
    """A fixed-seed ``(GrapeCost, controls)`` pair for oracle comparisons.

    Seeds 7 (target) and 42 (controls) are pinned: the regression test's
    golden numbers were recorded against exactly this construction.
    """
    device = GmonDevice(line_topology(n_qubits), levels=levels)
    control_set = build_control_set(device, tuple(range(n_qubits)))
    target = haar_random_unitary(2**n_qubits, seed=7)
    cost = GrapeCost(control_set, target, dt_ns=0.2, regularization=regularization)
    rng = np.random.default_rng(seed)
    controls = (
        rng.normal(scale=0.3, size=(control_set.num_controls, n_steps))
        * control_set.max_amplitudes[:, None]
    )
    return cost, controls
