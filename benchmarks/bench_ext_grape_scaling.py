"""Extension: GRAPE convergence cost vs block width (paper §5.2).

The paper's blocking design rests on a scaling claim: "the total
convergence time for GRAPE's gradient descent scales exponentially in the
size of the target quantum circuit", which is why circuits are cut into
≤4-qubit blocks before GRAPE sees them.  This bench makes the claim
measurable on the gmon model: minimum-time GRAPE on a GHZ-preparation
block of width 1, 2, 3 (and 4 in full mode), reporting gradient
iterations, wall time, and whether convergence was reached within the
budget.
"""

import numpy as np
import pytest

import common
from repro.analysis import format_table
from repro.circuits import QuantumCircuit
from repro.pulse.device import GmonDevice
from repro.pulse.grape import GrapeHyperparameters, GrapeSettings, minimum_time_pulse
from repro.pulse.hamiltonian import build_control_set
from repro.sim import circuit_unitary
from repro.transpile import line_topology
from repro.transpile.schedule import asap_schedule
from repro.transpile.basis import decompose_to_basis

WIDTHS = (1, 2, 3, 4) if common.FULL_MODE else (1, 2, 3)
SETTINGS = GrapeSettings(dt_ns=0.5, target_fidelity=0.95)
HYPER = GrapeHyperparameters(learning_rate=0.05, decay_rate=0.002, max_iterations=300)


def _ghz_block(width: int) -> QuantumCircuit:
    circuit = QuantumCircuit(width)
    circuit.h(0)
    for q in range(width - 1):
        circuit.cx(q, q + 1)
    return circuit


@pytest.mark.benchmark(group="ext-grape-scaling")
def test_grape_cost_vs_block_width(benchmark):
    def run():
        rows = []
        for width in WIDTHS:
            block = _ghz_block(width)
            device = GmonDevice(line_topology(width))
            control_set = build_control_set(device, list(range(width)))
            target = circuit_unitary(block)
            gate_ns = asap_schedule(decompose_to_basis(block)).duration_ns
            result = minimum_time_pulse(
                control_set,
                target,
                upper_bound_ns=max(gate_ns, SETTINGS.resolved_dt()),
                hyperparameters=HYPER,
                settings=SETTINGS,
            )
            rows.append(
                (
                    width,
                    result.total_iterations,
                    result.wall_time_s,
                    result.duration_ns,
                    gate_ns,
                    result.converged,
                )
            )
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    table = [
        (
            w,
            iters,
            f"{wall:.2f}",
            f"{pulse_ns:.1f}",
            f"{gate_ns:.1f}",
            "yes" if converged else "no",
        )
        for w, iters, wall, pulse_ns, gate_ns, converged in rows
    ]
    # Shape assertions for the paper's scaling claim.  Wall time is noisy
    # under CPU contention, so the monotonicity check uses a deterministic
    # cost proxy: GRAPE iterations weighted by the O(8^w) per-iteration
    # propagation cost of a width-w block.
    costs = [iters * 8**w for w, iters, *_ in rows]
    assert costs == sorted(costs), f"cost not monotone in width: {costs}"
    assert costs[-1] > 10 * costs[0], "widest block should dominate the cost"
    # The narrow blocks must stay cheap enough to precompile in bulk — the
    # regime strict partial compilation lives in.
    walls = [wall for _, _, wall, *_ in rows]
    assert walls[0] < 10.0
    text = format_table(
        ("block width", "GRAPE iterations", "wall (s)", "pulse (ns)", "gate (ns)", "converged"),
        table,
        title="Extension: GRAPE convergence cost vs block width (GHZ blocks)",
    )
    print(text)
    common.report("ext_grape_scaling", text)
