"""Figure 7 — compilation-latency reduction of flexible vs full GRAPE.

"The ratios indicate the average compilation latency using flexible partial
compilation divided by latency using full GRAPE compilation" — 10-100x in
the paper, from hours to minutes.  Measured here as both wall time and
GRAPE gradient-iteration counts (the hardware-independent proxy).  Strict
partial compilation appears as a reference: its runtime latency is zero.
"""

import pytest

import common
from repro.analysis import format_table
from repro.core.results import LatencyComparison

PAPER_REDUCTIONS = {
    "BeH2": 56.3,   # 17163 s / 305 s
    "NaH": 11.7,    # 12387 / 1057
    "H2O": 15.1,    # 19065 / 1261
    "qaoa_3regular_n6_p1": 80.3,    # 12786 / 159
    "qaoa_3regular_n8_p1": 81.9,    # 23718 / 289
    "qaoa_erdosrenyi_n6_p1": 44.3,  # 11645 / 263
    "qaoa_erdosrenyi_n8_p1": 15.4,  # 19356 / 1258
}


def _benchmarks():
    tags = []
    for name in common.VQE_MOLECULES:
        tags.append((name, common.vqe_circuit(name)))
    for kind in common.QAOA_KINDS:
        for n in common.QAOA_SIZES:
            tags.append(
                (f"qaoa_{kind}_n{n}_p1", common.qaoa_bench_circuit(kind, n, 1))
            )
    return tags


def _collect():
    rows = []
    for tag, circuit in _benchmarks():
        record = common.durations_for(tag, circuit)
        comparison = LatencyComparison(
            benchmark=tag,
            full_grape_seconds=record["grape_latency_s"],
            flexible_seconds=record["flexible_latency_s"],
            full_grape_iterations=record["grape_iterations"],
            flexible_iterations=max(1, record["flexible_iterations"]),
        )
        rows.append([
            tag,
            record["grape_latency_s"],
            record["flexible_latency_s"],
            comparison.wall_time_reduction,
            comparison.iteration_reduction,
            PAPER_REDUCTIONS.get(tag),
        ])
    return rows


def test_fig7_latency_reduction(benchmark, capsys):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    text = format_table(
        ["benchmark", "grape (s)", "flexible (s)", "wall reduction",
         "iteration reduction", "paper reduction"],
        rows,
        title="Figure 7: runtime compilation-latency reduction, flexible vs full GRAPE",
        precision=2,
    )
    common.report("fig7_latency_reduction", text, capsys)
    for row in rows:
        tag, _, _, wall_reduction, iter_reduction, _ = row
        # The paper's claim: order-of-magnitude-scale reductions.  The
        # iteration proxy is the stable metric; wall time tracks it.
        assert iter_reduction > 2.0, (tag, iter_reduction)
        assert wall_reduction > 1.5, (tag, wall_reduction)
