"""Extension: QAOA cut quality vs classical baselines (paper §4.2 claims).

The paper motivates QAOA with two classical reference points: the p = 1
guarantee of ≥ 69% of the optimal cut (Farhi et al.), and Crooks'
simulation finding of mean parity with Goemans-Williamson at p = 5.  This
bench makes both claims measurable on the benchmark graph families: for
each graph, QAOA's best sampled cut and approximation ratio at increasing
p, against Goemans-Williamson, greedy 1-flip local search, and the random
baseline.
"""

import numpy as np
import pytest

import common
from repro.analysis import format_table
from repro.qaoa import (
    goemans_williamson,
    greedy_local_search,
    maxcut_problem,
    random_cut,
)
from repro.qaoa.driver import QAOADriver

P_VALUES = (1, 2, 3) if not common.FULL_MODE else (1, 2, 3, 4, 5)
GRAPHS = [
    ("3regular", 6, 0),
    ("erdosrenyi", 6, 0),
] + ([("3regular", 8, 0), ("erdosrenyi", 8, 0)] if common.FULL_MODE else [])


def _qaoa_ratio(problem, p: int) -> float:
    driver = QAOADriver(problem, p, max_iterations=200, seed=7, restarts=2)
    result = driver.run()
    return result.best_sampled_cut / problem.optimal_cut


@pytest.mark.benchmark(group="ext-qaoa-vs-classical")
def test_qaoa_vs_classical_baselines(benchmark):
    """Approximation ratios: QAOA at p=1..P vs GW / greedy / random."""

    def run():
        rows = []
        for kind, n, seed in GRAPHS:
            problem = maxcut_problem(kind, n, seed=seed)
            gw = goemans_williamson(problem.graph, num_rounds=64, seed=seed)
            greedy = greedy_local_search(problem.graph, seed=seed)
            rand = random_cut(problem.graph, num_samples=64, seed=seed)
            qaoa_ratios = [_qaoa_ratio(problem, p) for p in P_VALUES]
            rows.append(
                (
                    problem,
                    qaoa_ratios,
                    gw.cut / problem.optimal_cut,
                    greedy.cut / problem.optimal_cut,
                    rand.expected_cut / problem.optimal_cut,
                )
            )
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    table = []
    for problem, qaoa_ratios, gw_ratio, greedy_ratio, random_ratio in rows:
        # Paper-shape assertions:
        # 1. QAOA at p=1 clears the 69% MAXCUT guarantee.
        assert qaoa_ratios[0] >= 0.69, f"{problem.name}: p=1 ratio {qaoa_ratios[0]:.3f}"
        # 2. Deeper QAOA never hurts (within optimizer noise).
        assert max(qaoa_ratios) >= qaoa_ratios[0] - 0.02
        # 3. GW clears its 0.878 guarantee; random sits near 1/2 · |E| / opt.
        assert gw_ratio >= 0.878 - 1e-9
        table.append(
            (
                problem.name,
                " ".join(f"{r:.3f}" for r in qaoa_ratios),
                f"{gw_ratio:.3f}",
                f"{greedy_ratio:.3f}",
                f"{random_ratio:.3f}",
            )
        )
    text = format_table(
        ("graph", f"QAOA ratio @ p={list(P_VALUES)}", "GW", "greedy", "random E[cut]"),
        table,
        title="Extension: QAOA vs classical MAXCUT baselines",
    )
    print(text)
    common.report("ext_qaoa_vs_classical", text)
