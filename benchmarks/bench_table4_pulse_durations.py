"""Table 4 — pulse durations across all four compilation strategies.

The paper's headline table: for every VQE molecule and QAOA benchmark,
pulse durations under gate-based, strict partial, flexible partial, and
full GRAPE compilation.  The reproduction targets the *shape*:

    gate ≥ strict ≥ flexible, GRAPE ≤ strict,

with strict recovering most of the VQE speedup (deep Fixed blocks) and
flexible ≈ GRAPE on QAOA.

Default scope: H2 + LiH and the N=6 QAOA p ∈ {1, 5} benchmarks.
``REPRO_BENCH_FULL=1`` runs the paper's full set.
"""

import pytest

import common
from repro.analysis import SpeedupRow, format_table


def _collect():
    results = {}
    for name in common.VQE_MOLECULES:
        # H2O strict/flexible precompiles are hours of GRAPE; keep the two
        # largest molecules gate+strict-only unless in full mode.
        methods = ("gate", "strict", "flexible", "grape")
        results[name] = common.durations_for(name, common.vqe_circuit(name), methods)
    for kind in common.QAOA_KINDS:
        for n in common.QAOA_SIZES:
            for p in common.QAOA_P_VALUES:
                tag = f"qaoa_{kind}_n{n}_p{p}"
                circuit = common.qaoa_bench_circuit(kind, n, p)
                results[tag] = common.durations_for(tag, circuit)
    return results


def test_table4_pulse_durations(benchmark, capsys):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)
    rows = []
    for tag, record in results.items():
        paper = common.PAPER_TABLE4_NS.get(tag, {})
        rows.append([
            tag,
            record.get("gate"), paper.get("gate"),
            record.get("strict"), paper.get("strict"),
            record.get("flexible"), paper.get("flexible"),
            record.get("grape"), paper.get("grape"),
        ])
    text = format_table(
        ["benchmark", "gate", "paper", "strict", "paper", "flex", "paper",
         "grape", "paper"],
        rows,
        title="Table 4: pulse durations (ns), measured vs paper",
        precision=1,
    )
    common.report("table4_pulse_durations", text, capsys)

    for tag, record in results.items():
        row = SpeedupRow(
            tag,
            record["gate"],
            record.get("strict"),
            record.get("flexible"),
            record.get("grape"),
        )
        assert row.ordering_holds(tolerance_ns=1.5), (tag, record)
        # GRAPE delivers a real speedup on every benchmark.
        assert record["grape"] < record["gate"], tag
