"""Table 5 — GRAPE speedups under realistic pulse constraints.

The paper re-ran the H2 VQE benchmark and the N=3 Erdős–Rényi QAOA
benchmark with three realism upgrades: 1 GSa/s sampling (1 pulse point per
ns instead of 20), qutrit leakage modelling, and aggressive pulse
regularization (Gaussian envelope + smooth derivatives).  Speedups drop
(11.4x → 8.8x for H2; 4.5x → 3.0x for QAOA) but remain significant.

Here "standard" = the harness defaults; "realistic" = dt 1.0 ns, 3-level
qutrits, envelope + derivative regularization.
"""

import pytest

import common
from repro.analysis import format_table
from repro.circuits.dag import critical_path_ns
from repro.core import FullGrapeCompiler
from repro.pulse.device import GmonDevice
from repro.pulse.grape import GrapeHyperparameters, GrapeSettings
from repro.pulse.grape.cost import RegularizationSettings
from repro.qaoa import maxcut_problem, qaoa_circuit
from repro.transpile import transpile
from repro.transpile.topology import nearly_square_grid

PAPER = {
    # benchmark -> (standard speedup, realistic speedup)
    "H2": (11.4, 8.8),
    "qaoa_er_n3": (4.5, 3.0),
}

STANDARD = GrapeSettings(dt_ns=0.25, target_fidelity=0.99)
REALISTIC = GrapeSettings(
    dt_ns=1.0,  # 1 GSa/s
    target_fidelity=0.99,
    regularization=RegularizationSettings.realistic(),
)
HYPER = GrapeHyperparameters(
    learning_rate=0.05, decay_rate=0.002,
    max_iterations=600 if common.FULL_MODE else 300,
)


def _workloads():
    h2 = common.vqe_circuit("H2")
    problem = maxcut_problem("erdosrenyi", 3, seed=0)
    qaoa = transpile(qaoa_circuit(problem, 1),
                     topology=nearly_square_grid(3))
    qaoa.bench_topology = nearly_square_grid(3)
    return {"H2": h2, "qaoa_er_n3": qaoa}


def _speedup(circuit, settings, levels):
    topology = getattr(circuit, "bench_topology", None) or nearly_square_grid(
        circuit.num_qubits
    )
    device = GmonDevice(topology, levels=levels)
    compiler = FullGrapeCompiler(
        device=device,
        settings=settings,
        hyperparameters=HYPER,
        max_block_width=2 if levels == 3 else common.MAX_BLOCK_WIDTH,
    )
    theta = common.random_parameters(circuit)
    bound = circuit.bind_parameters(theta)
    result = compiler.compile(bound)
    gate_ns = critical_path_ns(bound)
    return gate_ns / result.pulse_duration_ns, result.pulse_duration_ns, gate_ns


def _collect():
    rows = []
    for tag, circuit in _workloads().items():
        std_x, std_ns, gate_ns = _speedup(circuit, STANDARD, levels=2)
        real_x, real_ns, _ = _speedup(circuit, REALISTIC, levels=3)
        paper_std, paper_real = PAPER[tag]
        rows.append([
            tag, gate_ns, std_ns, std_x, paper_std, real_ns, real_x, paper_real,
        ])
    return rows


def test_table5_realistic_settings(benchmark, capsys):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    text = format_table(
        ["benchmark", "gate (ns)", "std GRAPE (ns)", "std x", "paper",
         "realistic (ns)", "realistic x", "paper"],
        rows,
        title="Table 5: GRAPE speedups, standard vs realistic settings",
        precision=2,
    )
    common.report("table5_realistic", text, capsys)
    for row in rows:
        tag, _, _, std_x, _, _, real_x, _ = row
        # Both settings must beat gate-based...
        assert std_x > 1.2, tag
        assert real_x > 1.0, tag
        # ...and realism costs some — but not all — of the speedup.
        assert real_x <= std_x * 1.2, tag
