"""Table 2 — VQE-UCCSD benchmark circuits.

Width, parameter count, and gate-based runtime for the five molecules.
Widths and parameter counts must match the paper exactly (they define the
benchmark); gate-based runtimes are same-order (synthetic excitation
selection, DESIGN.md substitution 2).
"""

import pytest

import common
from repro.analysis import format_table
from repro.circuits.dag import critical_path_ns
from repro.core import parametrized_gate_fraction
from repro.vqe import get_molecule, list_molecules

PAPER = {
    "H2": (2, 3, 35.0),
    "LiH": (4, 8, 872.0),
    "BeH2": (6, 26, 5308.0),
    "NaH": (8, 24, 5490.0),
    "H2O": (10, 92, 33842.0),
}


def _build_rows():
    rows = []
    for name in list_molecules():
        spec = get_molecule(name)
        circuit = common.vqe_circuit(name)
        runtime = critical_path_ns(circuit)
        width_p, params_p, runtime_p = PAPER[name]
        rows.append([
            name,
            spec.num_qubits, width_p,
            len(circuit.parameters), params_p,
            runtime, runtime_p,
            len(circuit),
            parametrized_gate_fraction(circuit),
        ])
    return rows


def test_table2_vqe_circuits(benchmark, capsys):
    rows = benchmark.pedantic(_build_rows, rounds=1, iterations=1)
    text = format_table(
        ["molecule", "width", "paper", "#params", "paper", "runtime (ns)",
         "paper (ns)", "gates", "Rz(θ) frac"],
        rows,
        title="Table 2: VQE-UCCSD benchmark circuits",
        precision=2,
    )
    common.report("table2_vqe_circuits", text, capsys)
    for row in rows:
        name, width, width_p, params, params_p, runtime, runtime_p = row[:7]
        assert width == width_p, name
        assert params == params_p, name
        # Same order of magnitude as the paper's runtimes.
        assert 0.1 * runtime_p <= runtime <= 10 * runtime_p, name
        # Paper: Rz(θ) gates are 5-8% of VQE circuits; allow a wide band.
        assert row[8] < 0.2, name
    # Runtime must grow from the smallest to the largest molecule (Table 2's
    # defining trend; BeH2/NaH are within a few percent of each other in the
    # paper too, so only the endpoints are ordered strictly).
    runtimes = [row[5] for row in rows]
    assert runtimes[0] < runtimes[1]  # H2 < LiH
    assert max(runtimes) == runtimes[-1]  # H2O largest
