"""Figure 5 — VQE pulse speedup factors, normalized to gate-based.

The paper: full GRAPE gives 1.5-2x on the larger molecules; strict recovers
~95% of that and flexible ~99%.  On the small molecules (H2, LiH) the
flexible/GRAPE advantage is far larger (7-50x) because the whole circuit
fits within few blocks.  Shares its measurements with Table 4's cache.
"""

import pytest

import common
from repro.analysis import format_table


def _collect():
    rows = []
    for name in common.VQE_MOLECULES:
        record = common.durations_for(name, common.vqe_circuit(name))
        gate = record["gate"]
        paper = common.PAPER_TABLE4_NS[name]
        rows.append([
            name,
            gate / record["strict"],
            paper["gate"] / paper["strict"],
            gate / record["flexible"],
            paper["gate"] / paper["flexible"],
            gate / record["grape"],
            paper["gate"] / paper["grape"],
        ])
    return rows


def test_fig5_vqe_speedup_factors(benchmark, capsys):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    text = format_table(
        ["molecule", "strict x", "paper", "flexible x", "paper",
         "grape x", "paper"],
        rows,
        title="Figure 5: VQE pulse speedups over gate-based, measured vs paper",
        precision=2,
    )
    common.report("fig5_vqe_speedups", text, capsys)
    for row in rows:
        name, strict_x, _, flexible_x, _, grape_x, _ = row
        # Strict must deliver a real speedup on VQE (deep Fixed blocks).
        assert strict_x > 1.2, name
        # Flexible and GRAPE at least match strict.
        assert flexible_x >= strict_x - 0.05, name
        assert grape_x >= flexible_x - 0.05, name
