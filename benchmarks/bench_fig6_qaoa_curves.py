"""Figure 6 — QAOA pulse-duration curves vs p, four strategies.

For each graph family the paper plots pulse duration against the number of
QAOA rounds p: gate-based is linear, strict is a modest improvement, and
flexible essentially matches GRAPE.  Default scope: N=6 families at
p ∈ {1, 3, 5} with gate/strict on every point and flexible/GRAPE at p=1
(the expensive points); full mode sweeps p = 1..8 with all four.
"""

import numpy as np
import pytest

import common
from repro.analysis import format_table, render_chart

P_CURVE = tuple(range(1, 9)) if common.FULL_MODE else (1, 3, 5)
EXPENSIVE_P = tuple(range(1, 9)) if common.FULL_MODE else (1,)


def _collect():
    curves = {}
    for kind in common.QAOA_KINDS:
        for n in common.QAOA_SIZES:
            for p in P_CURVE:
                tag = f"qaoa_{kind}_n{n}_p{p}"
                circuit = common.qaoa_bench_circuit(kind, n, p)
                methods = ["gate", "strict"]
                if p in EXPENSIVE_P:
                    methods += ["flexible", "grape"]
                curves[(kind, n, p)] = common.durations_for(
                    tag, circuit, methods=tuple(methods)
                )
    return curves


def test_fig6_qaoa_duration_curves(benchmark, capsys):
    curves = benchmark.pedantic(_collect, rounds=1, iterations=1)
    rows = []
    for (kind, n, p), record in sorted(curves.items()):
        rows.append([
            f"{kind} N={n} p={p}",
            record.get("gate"),
            record.get("strict"),
            record.get("flexible"),
            record.get("grape"),
        ])
    text = format_table(
        ["benchmark", "gate (ns)", "strict (ns)", "flexible (ns)", "grape (ns)"],
        rows,
        title="Figure 6: QAOA pulse durations vs p",
        precision=1,
    )
    charts = []
    for kind in common.QAOA_KINDS:
        for n in common.QAOA_SIZES:
            series = {}
            for method in ("gate", "strict", "flexible", "grape"):
                points = [
                    (p, record[method])
                    for (k, size, p), record in sorted(curves.items())
                    if k == kind and size == n and record.get(method) is not None
                ]
                if points:
                    series[method] = points
            charts.append(
                render_chart(
                    series,
                    x_label="p",
                    y_label="pulse (ns)",
                    title=f"Figure 6 (ASCII): {kind} N={n}",
                )
            )
    common.report("fig6_qaoa_curves", text + "\n\n" + "\n\n".join(charts), capsys)

    for kind in common.QAOA_KINDS:
        for n in common.QAOA_SIZES:
            gate_curve = [curves[(kind, n, p)]["gate"] for p in P_CURVE]
            strict_curve = [curves[(kind, n, p)]["strict"] for p in P_CURVE]
            # Gate-based increases linearly in p.
            assert all(b > a for a, b in zip(gate_curve, gate_curve[1:]))
            # Strict never exceeds gate-based at any p.
            for g, s in zip(gate_curve, strict_curve):
                assert s <= g + 1e-6
            # At the expensive points, flexible ≤ strict and grape ≤ strict.
            for p in EXPENSIVE_P:
                record = curves[(kind, n, p)]
                assert record["flexible"] <= record["strict"] + 1.5
                assert record["grape"] <= record["strict"] + 1.5
