"""Ablation benches for the design choices DESIGN.md calls out.

Three mechanisms make the reproduction (and the paper's system) tractable;
each is ablated here on a small fixed workload:

1. **Warm-starting the minimum-time binary search** — each probe reuses the
   best feasible pulse resampled to the new step count.
2. **The pulse cache** — variational circuits repeat blocks heavily, so
   keying GRAPE results by (phase-canonical unitary, physical context)
   removes most GRAPE calls from strict precompilation.
3. **Tuned hyperparameters** (the flexible-partial-compilation mechanism
   itself) — tuned (lr, decay) vs the defaults, on the same block.
"""

import numpy as np
import pytest

import common
from repro.analysis import format_table
from repro.core import PulseCache, StrictPartialCompiler
from repro.core.hyperopt import sample_targets, tune_hyperparameters
from repro.pulse.grape import (
    GrapeHyperparameters,
    GrapeSettings,
    minimum_time_pulse,
    optimize_pulse,
)
from repro.pulse.hamiltonian import build_control_set
from repro.pulse.device import GmonDevice
from repro.sim import circuit_unitary
from repro.transpile import line_topology

SETTINGS = GrapeSettings(dt_ns=0.25, target_fidelity=0.99)
HYPER = GrapeHyperparameters(learning_rate=0.05, decay_rate=0.002, max_iterations=250)


def _cx_target():
    from repro.circuits import QuantumCircuit

    return circuit_unitary(QuantumCircuit(2).cx(0, 1))


def _warm_start_ablation():
    """Minimum-time search iterations with and without warm starts."""
    device = GmonDevice(line_topology(2))
    control_set = build_control_set(device, [0, 1])
    target = _cx_target()
    warm = minimum_time_pulse(
        control_set, target, upper_bound_ns=8.0,
        hyperparameters=HYPER, settings=SETTINGS, precision_ns=0.3,
    )
    # "Cold" variant: run each probe duration from scratch.
    cold_iterations = 0
    cold_best_duration = float("inf")
    for duration, _, _ in warm.probes:
        steps = max(1, int(round(duration / SETTINGS.resolved_dt())))
        result = optimize_pulse(control_set, target, steps, HYPER, SETTINGS)
        cold_iterations += result.iterations
        if result.converged:
            cold_best_duration = min(cold_best_duration, steps * SETTINGS.resolved_dt())
    return (
        warm.total_iterations,
        cold_iterations,
        warm.duration_ns,
        cold_best_duration,
    )


def _cache_ablation():
    """Strict LiH precompile with and without the pulse cache."""
    circuit = common.vqe_circuit("LiH")
    device = common.device_for(circuit)
    cached = StrictPartialCompiler.precompile(
        circuit, device=device, settings=SETTINGS, hyperparameters=HYPER,
        max_block_width=2, cache=PulseCache(),
    )
    # The report already counts cache hits; the ablated cost is estimated
    # exactly: every cache hit would have cost its block's GRAPE iterations.
    hits = cached.report.cache_hits
    total_blocks = cached.report.blocks_precompiled
    return cached.report.grape_iterations, hits, total_blocks


def _hyperparameter_ablation():
    """Iterations-to-converge: tuned (lr, decay) vs defaults, on one block."""
    from repro.circuits import QuantumCircuit
    from repro.circuits.parameters import Parameter

    theta = Parameter("theta_0")
    sub = QuantumCircuit(2)
    sub.h(0).cx(0, 1).rz(theta, 1).cx(0, 1).h(0)
    device = GmonDevice(line_topology(2))
    control_set = build_control_set(device, [0, 1])
    targets = sample_targets(sub, 2, seed=3)
    tuning = tune_hyperparameters(
        control_set, targets, num_steps=24, settings=SETTINGS,
        learning_rates=(0.01, 0.03, 0.1), decay_rates=(0.0, 0.01),
        iteration_budget=250,
    )
    default_iters = []
    tuned_iters = []
    default_hyper = GrapeHyperparameters(0.005, 0.0, max_iterations=250)
    for target in targets:
        default_iters.append(
            optimize_pulse(control_set, target, 24, default_hyper, SETTINGS).iterations
        )
        tuned_iters.append(
            optimize_pulse(control_set, target, 24, tuning.best, SETTINGS).iterations
        )
    return float(np.mean(tuned_iters)), float(np.mean(default_iters)), tuning.best


def test_ablation_design_choices(benchmark, capsys):
    def run_all():
        return _warm_start_ablation(), _cache_ablation(), _hyperparameter_ablation()

    (warm, cold, duration, cold_duration), (iters, hits, blocks), (tuned, default, best) = (
        benchmark.pedantic(run_all, rounds=1, iterations=1)
    )
    text = format_table(
        ["design choice", "with", "without", "factor"],
        [
            ["warm-started time search (iters)", warm, cold, cold / max(1, warm)],
            ["pulse cache (LiH blocks GRAPE'd)", blocks - hits, blocks,
             blocks / max(1, blocks - hits)],
            ["tuned hyperparameters (iters)", tuned, default, default / max(1, tuned)],
        ],
        title="Ablations: warm starts, pulse cache, hyperparameter tuning",
        precision=1,
    )
    common.report("ablation_design_choices", text, capsys)
    # Each mechanism must pay for itself on this workload.  Warm starting
    # buys *solution quality*: the warm-started search must find a pulse at
    # least as short as the best any cold probe converged to, at a
    # comparable (not necessarily smaller) iteration cost — resampled
    # warm starts occasionally descend longer than a lucky random init.
    # (within one binary-search precision step, 0.3 ns)
    assert duration <= cold_duration + 0.3 + 1e-9
    assert warm <= cold * 1.5
    assert hits > 0
    assert tuned <= default * 1.05
