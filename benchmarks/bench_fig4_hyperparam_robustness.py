"""Figure 4 — hyperparameter robustness across angle values.

The paper plots GRAPE error against ADAM learning rate for single-angle
LiH subcircuits (the 0th, with two angle-dependent gates, and the 7th, with
eight) and observes that "for each permutation of the argument of the angle
dependent gates in the subcircuits, the same range of learning rate values
achieves the lowest error."  That robustness is what lets flexible partial
compilation precompute hyperparameters.
"""

import numpy as np
import pytest

import common
from repro.analysis import format_table
from repro.blocking import aggregate_blocks
from repro.core import flexible_slices, learning_rate_sweep, sample_targets
from repro.pulse.hamiltonian import build_control_set

LEARNING_RATES = (0.003, 0.01, 0.03, 0.1)
NUM_ANGLE_SAMPLES = 4 if common.FULL_MODE else 3
SWEEP_ITERATIONS = 150 if common.FULL_MODE else 60


def _first_parametrized_block(circuit, slice_index):
    slices = [s for s in flexible_slices(circuit)]
    piece = slices[slice_index]
    blocked = aggregate_blocks(piece.circuit, common.MAX_BLOCK_WIDTH)
    for block in blocked.blocks:
        sub, device_qubits = blocked.local_circuit(block)
        if sub.is_parameterized():
            return sub, device_qubits
    raise AssertionError("slice has no parametrized block")


def _collect():
    circuit = common.vqe_circuit("LiH")
    device = common.device_for(circuit)
    results = {}
    for label, slice_index in (("subcircuit 0", 0), ("subcircuit 7", 7)):
        sub, device_qubits = _first_parametrized_block(circuit, slice_index)
        control_set = build_control_set(device, device_qubits)
        targets = sample_targets(sub, NUM_ANGLE_SAMPLES, seed=13)
        errors = learning_rate_sweep(
            control_set,
            targets,
            num_steps=16,
            learning_rates=LEARNING_RATES,
            iterations=SWEEP_ITERATIONS,
            settings=common.SETTINGS,
        )
        results[label] = errors
    return results


def test_fig4_learning_rate_robustness(benchmark, capsys):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)
    lines = []
    for label, errors in results.items():
        rows = [
            [f"θ sample {i}"] + list(row) for i, row in enumerate(errors)
        ]
        lines.append(format_table(
            ["angle"] + [f"lr={lr}" for lr in LEARNING_RATES],
            rows,
            title=f"Figure 4 ({label}, LiH): GRAPE error vs ADAM learning rate",
            precision=4,
        ))
    text = "\n\n".join(lines)
    common.report("fig4_hyperparam_robustness", text, capsys)

    for label, errors in results.items():
        # The low-error learning-rate band is shared across angle values:
        # every θ sample's best lr is within one grid step of the others.
        argmins = [int(np.argmin(row)) for row in errors]
        assert max(argmins) - min(argmins) <= 1, (label, argmins)
        # And the band genuinely matters: the worst lr is measurably worse.
        for row in errors:
            assert row.max() > row.min() + 1e-4, label
