"""Ablation: hyperparameter tuner strategies for flexible precompilation.

Figure 7's latency reductions rest on the precompute phase being cheap
("about an hour of pre-compute time to determine the best learning rate -
decay rate pair for each subcircuit").  The default tuner is an exhaustive
grid; the paper's section 7.2 cites derivative-free alternatives.  This
ablation compares grid, random, successive-halving, and RBF-surrogate
tuners on the same single-θ block: quality of the found configuration
(iterations-to-converge with it) vs GRAPE iterations spent finding it.
"""

import pytest

import common
from repro.analysis import format_table
from repro.circuits import QuantumCircuit
from repro.circuits.parameters import Parameter
from repro.core.hyperopt import sample_targets, tune_hyperparameters
from repro.core.search import random_search, rbf_search, successive_halving
from repro.pulse.device import GmonDevice
from repro.pulse.grape import GrapeSettings
from repro.pulse.hamiltonian import build_control_set
from repro.transpile import line_topology

SETTINGS = GrapeSettings(dt_ns=0.5 if not common.FULL_MODE else 0.25,
                         target_fidelity=0.95 if not common.FULL_MODE else 0.99)
BUDGET = 120 if not common.FULL_MODE else 400


def _problem():
    theta = Parameter("theta")
    circuit = QuantumCircuit(2)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.rz(theta, 1)
    circuit.cx(0, 1)
    circuit.h(0)
    control_set = build_control_set(GmonDevice(line_topology(2)), [0, 1])
    targets = sample_targets(circuit, 2, seed=5)
    return control_set, targets


@pytest.mark.benchmark(group="ablation-hyperopt")
def test_tuner_strategy_comparison(benchmark):
    control_set, targets = _problem()
    num_steps = 12

    def run():
        grid = tune_hyperparameters(
            control_set, targets, num_steps, settings=SETTINGS,
            iteration_budget=BUDGET,
        )
        rand = random_search(
            control_set, targets, num_steps, settings=SETTINGS,
            num_trials=12, iteration_budget=BUDGET, seed=0,
        )
        halving = successive_halving(
            control_set, targets, num_steps, settings=SETTINGS,
            num_configs=12, iteration_budget=BUDGET, seed=0,
        )
        rbf = rbf_search(
            control_set, targets, num_steps, settings=SETTINGS,
            num_initial=4, num_iterations=5, iteration_budget=BUDGET, seed=0,
        )
        return {"grid": grid, "random": rand, "halving": halving, "rbf": rbf}

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    table = []
    for name, result in results.items():
        best = result.best_trial
        table.append(
            (
                name,
                len(result.trials),
                result.total_iterations,
                f"{best.learning_rate:.4g}",
                f"{best.decay_rate:.4g}",
                f"{best.mean_iterations:.0f}",
                "yes" if best.all_converged else "no",
            )
        )
        # Every tuner must find a converging configuration on this block.
        assert best.all_converged, f"{name} failed to find a converging config"
    # The racing tuner must be cheaper than the exhaustive grid.
    assert (
        results["halving"].total_iterations < results["grid"].total_iterations
    ), "successive halving did not beat grid search cost"
    text = format_table(
        (
            "tuner", "trials", "GRAPE iters spent", "best lr", "best decay",
            "iters-to-converge", "converged",
        ),
        table,
        title="Ablation: hyperparameter tuner strategies (single-θ block)",
    )
    print(text)
    common.report("ablation_hyperopt", text)
