"""Extension: step-function lookup vs flat lookup vs partial compilation.

The paper's related-work section (§3) notes that experimental gate-based
systems already use angle-dependent pulse decompositions — Barends et
al.'s five-range ``U(ϕ)`` table, McKay et al.'s virtual-Z gates — rather
than one fixed pulse per gate.  This bench positions that practice between
the paper's two poles: the step-function table keeps gate-based
compilation's zero latency and shaves duration on rotation-heavy
parametrizations, but still leaves most of the GRAPE gap that strict
partial compilation closes.
"""

import numpy as np
import pytest

import common
from repro.analysis import format_table
from repro.core import GateBasedCompiler, StepFunctionGateCompiler


def _workloads():
    rows = []
    for molecule in common.VQE_MOLECULES:
        rows.append((f"VQE {molecule}", common.vqe_circuit(molecule)))
    for kind in common.QAOA_KINDS:
        rows.append(
            (f"QAOA {kind} N=6 p=1", common.qaoa_bench_circuit(kind, 6, 1))
        )
    return rows


@pytest.mark.benchmark(group="ext-stepfunction")
def test_stepfunction_vs_flat_lookup(benchmark):
    """Durations under flat vs step-function lookup at two angle regimes."""
    flat = GateBasedCompiler()
    step = StepFunctionGateCompiler()
    workloads = _workloads()

    def run():
        rows = []
        for name, circuit in workloads:
            n = len(circuit.parameters)
            rng = np.random.default_rng(0)
            small = list(rng.uniform(-0.2, 0.2, size=n))
            generic = list(rng.uniform(-np.pi, np.pi, size=n))
            rows.append(
                (
                    name,
                    flat.compile_parametrized(circuit, generic).pulse_duration_ns,
                    step.compile_parametrized(circuit, generic).pulse_duration_ns,
                    step.compile_parametrized(circuit, small).pulse_duration_ns,
                )
            )
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    table = []
    for name, flat_ns, step_ns, step_small_ns in rows:
        # The step table never loses to the flat table (ranges ≤ Table 1),
        # and near-zero parametrizations (early variational iterations
        # often start there) benefit the most.
        assert step_ns <= flat_ns + 1e-9
        assert step_small_ns <= step_ns + 1e-9
        table.append(
            (
                name,
                f"{flat_ns:.1f}",
                f"{step_ns:.1f}",
                f"{step_small_ns:.1f}",
                f"{flat_ns / step_small_ns if step_small_ns else float('inf'):.2f}x",
            )
        )
    text = format_table(
        (
            "benchmark", "flat lookup (ns)", "step fn (ns)",
            "step fn, small θ (ns)", "best-case gain",
        ),
        table,
        title="Extension: angle-dependent (step-function) lookup compilation",
    )
    print(text)
    common.report("ext_stepfunction", text)
