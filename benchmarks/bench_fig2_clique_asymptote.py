"""Figure 2 — gate-based grows linearly in p; GRAPE asymptotes (K4 MAXCUT).

The paper compiles QAOA MAXCUT on the 4-node clique as a *single* 4-qubit
GRAPE problem: gate-based pulse length grows linearly with the number of
rounds p, while the GRAPE pulse length saturates below the time needed to
implement an arbitrary 4-qubit unitary (ratio 2.0x at p=1 → 12.0x at p=6).

A 4-qubit whole-circuit GRAPE search is the most expensive item in the
default suite, so p runs over {1, 2, 3} by default ({1..6} in full mode) —
enough to expose the sub-linear growth.
"""

import numpy as np
import pytest

import common
from repro.analysis import format_table, render_chart
from repro.circuits.dag import critical_path_ns
from repro.pulse.grape import GrapeHyperparameters, GrapeSettings, minimum_time_pulse
from repro.pulse.hamiltonian import build_control_set
from repro.pulse.device import GmonDevice
from repro.qaoa import maxcut_problem, qaoa_circuit
from repro.sim import circuit_unitary
from repro.transpile import full_topology, transpile

P_VALUES = (1, 2, 3, 4, 5, 6) if common.FULL_MODE else (1, 2, 3, 4)
# Whole-circuit 4-qubit GRAPE: coarser slices (the interesting quantity is
# the total duration, not the waveform resolution) and a patient optimizer.
SETTINGS = GrapeSettings(
    dt_ns=0.25 if common.FULL_MODE else 0.5,
    target_fidelity=0.999 if common.FULL_MODE else 0.99,
    plateau_patience=200,
)
HYPER = GrapeHyperparameters(
    learning_rate=0.03, decay_rate=0.001,
    max_iterations=1500 if common.FULL_MODE else 800,
)

PAPER_RATIOS = {1: 2.0, 6: 12.0}


def _collect():
    problem = maxcut_problem("clique", 4, seed=0)
    # K4 is fully connected: compile on an all-to-all 4-qubit gmon block so
    # the whole circuit is one GRAPE problem, as in the paper's figure.
    device = GmonDevice(full_topology(4))
    control_set = build_control_set(device, [0, 1, 2, 3])
    rng = np.random.default_rng(0)
    rows = []
    previous_schedule = None
    for p in P_VALUES:
        circuit = transpile(qaoa_circuit(problem, p))
        theta = list(rng.uniform(0.2, 1.2, size=2 * p))
        bound = circuit.bind_parameters(theta)
        gate_ns = critical_path_ns(bound)
        target = circuit_unitary(bound)
        result = minimum_time_pulse(
            control_set,
            target,
            upper_bound_ns=gate_ns,
            hyperparameters=HYPER,
            settings=SETTINGS,
            precision_ns=0.5,
        )
        rows.append([p, gate_ns, result.duration_ns, gate_ns / result.duration_ns])
        previous_schedule = result.schedule
    return rows


def test_fig2_clique_gate_vs_grape_asymptote(benchmark, capsys):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    text = format_table(
        ["p", "gate-based (ns)", "GRAPE (ns)", "speedup"],
        rows,
        title="Figure 2: QAOA MAXCUT on the 4-node clique — linear vs asymptote",
        precision=2,
    )
    chart = render_chart(
        {
            "gate-based": [(row[0], row[1]) for row in rows],
            "GRAPE": [(row[0], row[2]) for row in rows],
        },
        x_label="p",
        y_label="pulse length (ns)",
        title="Figure 2 (ASCII): linear vs asymptote",
    )
    common.report("fig2_clique_asymptote", text + "\n\n" + chart, capsys)

    gate = [row[1] for row in rows]
    grape = [row[2] for row in rows]
    speedups = [row[3] for row in rows]
    # Gate-based grows linearly with p.
    gate_increments = np.diff(gate)
    assert np.all(gate_increments > 0)
    # GRAPE grows sub-linearly: its total growth is a smaller fraction of
    # the gate-based growth, so the speedup factor increases with p.
    assert speedups[-1] > speedups[0]
    # Paper anchor: ~2x at p=1 (coarse settings allow a wide band).
    assert speedups[0] > 1.2
