"""Shared infrastructure for the benchmark harness.

Every table and figure bench pulls its workloads and compilers from here so
that expensive artifacts (transpiled circuits, precompiled partial
compilers, GRAPE pulse caches) are computed once per pytest session and
shared across benches.

Scope control
-------------
The default scope runs the laptop-sized subset (small molecules, N=6 QAOA,
reduced p grid) with the coarse CI GRAPE settings.  Set ``REPRO_BENCH_FULL=1``
to run every benchmark of the paper at finer settings — hours of compute,
as in the original study (DESIGN.md substitution 4).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import numpy as np

from repro.core import (
    FlexiblePartialCompiler,
    FullGrapeCompiler,
    GateBasedCompiler,
    PulseCache,
    StrictPartialCompiler,
)
from repro.pulse.device import GmonDevice
from repro.pulse.grape.engine import GrapeHyperparameters, GrapeSettings
from repro.qaoa import maxcut_problem, qaoa_circuit
from repro.transpile import transpile
from repro.transpile.topology import nearly_square_grid
from repro.vqe import get_molecule

FULL_MODE = os.environ.get("REPRO_BENCH_FULL", "0") == "1"

RESULTS_DIR = Path(__file__).parent / "results"

#: GRAPE numerics for the harness: coarse by default, paper-like in full mode.
SETTINGS = GrapeSettings(
    dt_ns=0.1 if FULL_MODE else 0.25,
    target_fidelity=0.999 if FULL_MODE else 0.99,
)
HYPER = GrapeHyperparameters(
    learning_rate=0.05,
    decay_rate=0.002,
    max_iterations=800 if FULL_MODE else 200,
)
MAX_BLOCK_WIDTH = 4 if FULL_MODE else 3

#: Benchmark scope.
VQE_MOLECULES = ("H2", "LiH", "BeH2", "NaH", "H2O") if FULL_MODE else ("H2", "LiH")
QAOA_KINDS = ("3regular", "erdosrenyi")
QAOA_SIZES = (6, 8) if FULL_MODE else (6,)
QAOA_P_VALUES = tuple(range(1, 9)) if FULL_MODE else (1, 5)

#: Paper-reported values for paper-vs-measured reporting.
PAPER_TABLE4_NS = {
    "H2": {"gate": 35.3, "strict": 15.0, "flexible": 5.0, "grape": 3.1},
    "LiH": {"gate": 871.1, "strict": 307.0, "flexible": 84.0, "grape": 19.3},
    "BeH2": {"gate": 5308.3, "strict": 2596.5, "flexible": 2503.8, "grape": 2461.7},
    "NaH": {"gate": 5490.4, "strict": 2842.7, "flexible": 2770.8, "grape": 2752.0},
    "H2O": {"gate": 33842.2, "strict": 24781.4, "flexible": 23546.7, "grape": 23546.7},
    "qaoa_3regular_n6_p1": {"gate": 113.2, "strict": 91.2, "flexible": 72.0, "grape": 72.0},
    "qaoa_3regular_n6_p5": {"gate": 433.6, "strict": 397.6, "flexible": 206.2, "grape": 179.0},
    "qaoa_erdosrenyi_n6_p1": {"gate": 83.7, "strict": 54.0, "flexible": 26.4, "grape": 26.6},
    "qaoa_erdosrenyi_n6_p5": {"gate": 367.8, "strict": 291.8, "flexible": 150.0, "grape": 141.2},
    "qaoa_3regular_n8_p1": {"gate": 162.5, "strict": 134.0, "flexible": 112.0, "grape": 112.0},
    "qaoa_3regular_n8_p5": {"gate": 860.0, "strict": 711.6, "flexible": 498.9, "grape": 498.9},
    "qaoa_erdosrenyi_n8_p1": {"gate": 157.1, "strict": 100.0, "flexible": 80.5, "grape": 81.6},
    "qaoa_erdosrenyi_n8_p5": {"gate": 749.5, "strict": 551.7, "flexible": 434.8, "grape": 513.7},
}

PAPER_TABLE3_NS = {
    ("3regular", 6): [113, 199, 277, 356, 434, 512, 590, 668],
    ("erdosrenyi", 6): [84, 151, 223, 296, 368, 440, 512, 584],
    ("3regular", 8): [163, 365, 530, 695, 860, 1025, 1191, 1356],
    ("erdosrenyi", 8): [157, 297, 443, 596, 750, 903, 1056, 1209],
}

_circuit_cache: dict = {}
_compiler_cache: dict = {}
_shared_pulse_cache = PulseCache()


def _routed(circuit):
    """Transpile + route to the nearest-neighbor grid (paper Appendix A),
    tagging the circuit with its topology so the pulse device matches."""
    topology = nearly_square_grid(circuit.num_qubits)
    routed = transpile(circuit, topology=topology)
    routed.bench_topology = topology
    return routed


def vqe_circuit(name: str):
    """Routed UCCSD benchmark circuit for molecule ``name`` (cached)."""
    key = ("vqe", name)
    if key not in _circuit_cache:
        spec = get_molecule(name)
        _circuit_cache[key] = _routed(spec.ansatz())
    return _circuit_cache[key]


def qaoa_bench_circuit(kind: str, num_nodes: int, p: int, seed: int = 0):
    """Routed QAOA benchmark circuit (cached)."""
    key = ("qaoa", kind, num_nodes, p, seed)
    if key not in _circuit_cache:
        problem = maxcut_problem(kind, num_nodes, seed=seed)
        _circuit_cache[key] = _routed(qaoa_circuit(problem, p))
    return _circuit_cache[key]


def device_for(circuit):
    topology = getattr(circuit, "bench_topology", None)
    if topology is None:
        topology = nearly_square_grid(circuit.num_qubits)
    return GmonDevice(topology)


def random_parameters(circuit, seed: int = 0):
    """One reproducible parametrization for ``circuit``."""
    rng = np.random.default_rng(seed)
    return list(rng.uniform(-np.pi / 2, np.pi / 2, size=len(circuit.parameters)))


def gate_compiler():
    return GateBasedCompiler()


def grape_compiler(circuit):
    return FullGrapeCompiler(
        device=device_for(circuit),
        settings=SETTINGS,
        hyperparameters=HYPER,
        max_block_width=MAX_BLOCK_WIDTH,
        cache=_shared_pulse_cache,
    )


def strict_compiler(tag: str, circuit):
    """Precompiled strict compiler for ``circuit`` (cached per tag)."""
    key = ("strict", tag)
    if key not in _compiler_cache:
        _compiler_cache[key] = StrictPartialCompiler.precompile(
            circuit,
            device=device_for(circuit),
            settings=SETTINGS,
            hyperparameters=HYPER,
            max_block_width=MAX_BLOCK_WIDTH,
            cache=_shared_pulse_cache,
        )
    return _compiler_cache[key]


def flexible_compiler(tag: str, circuit, tuning_samples: int = 1):
    """Precompiled flexible compiler for ``circuit`` (cached per tag)."""
    key = ("flexible", tag)
    if key not in _compiler_cache:
        grid_lr = (0.01, 0.03, 0.1) if FULL_MODE else (0.03, 0.1)
        grid_decay = (0.0, 0.002, 0.01) if FULL_MODE else (0.0, 0.01)
        _compiler_cache[key] = FlexiblePartialCompiler.precompile(
            circuit,
            device=device_for(circuit),
            settings=SETTINGS,
            hyperparameters=HYPER,
            max_block_width=MAX_BLOCK_WIDTH,
            cache=_shared_pulse_cache,
            tuning_samples=2 if FULL_MODE else tuning_samples,
            learning_rates=grid_lr,
            decay_rates=grid_decay,
        )
    return _compiler_cache[key]


_durations_cache: dict = {}


def durations_for(tag: str, circuit, methods=("gate", "strict", "flexible", "grape")):
    """Pulse durations (and latency info) per method for one benchmark.

    Cached per tag so Table 4, Figure 5, and Figure 7 share the heavy
    computation within a session.
    """
    if tag in _durations_cache:
        cached = _durations_cache[tag]
        if all(m in cached for m in methods):
            return cached
    theta = random_parameters(circuit)
    record = _durations_cache.setdefault(tag, {})
    if "gate" in methods and "gate" not in record:
        result = gate_compiler().compile_parametrized(circuit, theta)
        record["gate"] = result.pulse_duration_ns
        record["gate_latency_s"] = result.runtime_latency_s
    if "strict" in methods and "strict" not in record:
        compiler = strict_compiler(tag, circuit)
        result = compiler.compile(theta)
        record["strict"] = result.pulse_duration_ns
        record["strict_latency_s"] = result.runtime_latency_s
        record["strict_precompute_s"] = compiler.report.wall_time_s
    if "flexible" in methods and "flexible" not in record:
        compiler = flexible_compiler(tag, circuit)
        result = compiler.compile(theta)
        record["flexible"] = result.pulse_duration_ns
        record["flexible_latency_s"] = result.runtime_latency_s
        record["flexible_iterations"] = result.runtime_iterations
        record["flexible_precompute_s"] = compiler.report.wall_time_s
    if "grape" in methods and "grape" not in record:
        result = grape_compiler(circuit).compile_parametrized(circuit, theta)
        record["grape"] = result.pulse_duration_ns
        record["grape_latency_s"] = result.runtime_latency_s
        record["grape_iterations"] = result.runtime_iterations
    return record


def report(name: str, text: str, capsys=None) -> None:
    """Write a result table to benchmarks/results/ and the live terminal."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    if capsys is not None:
        with capsys.disabled():
            print(f"\n{text}\n[written to {path}]")
    else:
        print(f"\n{text}\n[written to {path}]", file=sys.stderr)
