"""Pipeline extension: parallel block compilation + persistent pulse cache.

The unified :class:`repro.pipeline.CompilationPipeline` dispatches the
independent per-block GRAPE searches through a pluggable executor and can
persist every pulse to disk.  This bench quantifies both claims on a
multi-block circuit:

* ``serial`` vs ``process`` executors over the same blocks — on a
  multi-core host the process pool wins roughly linearly in core count
  (per-block GRAPE is pure CPU); on a single-core CI runner the comparison
  still runs and documents the pool overhead honestly.
* a cold in-memory cache vs a warm :class:`PersistentPulseCache`
  directory — the warm pass must do *zero* GRAPE iterations, which is the
  cross-process reuse the paper's precompilation story rests on.
"""

import os
import shutil
import tempfile
import time

import numpy as np
import pytest

import common
from repro.analysis import format_table
from repro.circuits import QuantumCircuit
from repro.core import FullGrapeCompiler, PersistentPulseCache, PulseCache
from repro.pulse.device import GmonDevice
from repro.pulse.grape import GrapeHyperparameters, GrapeSettings
from repro.transpile import line_topology

SETTINGS = GrapeSettings(dt_ns=0.5, target_fidelity=0.95)
HYPER = GrapeHyperparameters(learning_rate=0.05, decay_rate=0.002, max_iterations=200)
NUM_QUBITS = 8 if common.FULL_MODE else 6


def _multi_block_circuit(num_qubits: int) -> QuantumCircuit:
    """Disjoint 2-qubit entangling tiles — one GRAPE block per tile.

    Distinct rotation angles per tile keep the block unitaries unique, so
    the cache cannot collapse the workload and every block costs a real
    GRAPE search.
    """
    circuit = QuantumCircuit(num_qubits, name="parallel_tiles")
    for q in range(0, num_qubits - 1, 2):
        circuit.h(q)
        circuit.cx(q, q + 1)
        circuit.rz(0.3 + 0.2 * q, q + 1)
        circuit.cx(q, q + 1)
    return circuit


def _compiler(executor, cache):
    return FullGrapeCompiler(
        device=GmonDevice(line_topology(NUM_QUBITS)),
        settings=SETTINGS,
        hyperparameters=HYPER,
        max_block_width=2,
        cache=cache,
        executor=executor,
    )


@pytest.mark.benchmark(group="pipeline-parallel")
def test_parallel_block_compilation(benchmark, capsys):
    circuit = _multi_block_circuit(NUM_QUBITS)

    def run():
        rows = []
        results = {}
        for executor in ("serial", "process"):
            start = time.perf_counter()
            # Fresh in-memory cache per run: every block pays full GRAPE.
            result = _compiler(executor, PulseCache()).compile(circuit)
            wall = time.perf_counter() - start
            results[executor] = result
            rows.append(
                (
                    executor,
                    result.blocks_compiled,
                    f"{wall:.2f}",
                    f"{result.pulse_duration_ns:.1f}",
                    result.metadata["executor"].get("max_workers", 1),
                )
            )
        return rows, results

    rows, results = benchmark.pedantic(run, iterations=1, rounds=1)
    # Executors must be interchangeable: same blocks, same pulse program.
    assert results["serial"].blocks_compiled == results["process"].blocks_compiled
    assert results["serial"].blocks_compiled >= NUM_QUBITS // 2
    assert np.isclose(
        results["serial"].pulse_duration_ns, results["process"].pulse_duration_ns
    )
    serial_wall = float(rows[0][2])
    process_wall = float(rows[1][2])
    if (os.cpu_count() or 1) >= 2:
        # With real cores available the pool must beat serial on this
        # embarrassingly parallel workload (generous margin for CI noise).
        assert process_wall < serial_wall * 0.9, (serial_wall, process_wall)
    text = format_table(
        ("executor", "blocks", "wall (s)", "pulse (ns)", "workers"),
        rows,
        title=f"Parallel block compilation, {NUM_QUBITS}-qubit tile circuit "
        f"({os.cpu_count()} cores)",
    )
    print(text)
    common.report("pipeline_parallel", text, capsys)


@pytest.mark.benchmark(group="pipeline-cache")
def test_persistent_cache_warm_restart(benchmark, capsys):
    circuit = _multi_block_circuit(NUM_QUBITS)
    cache_dir = tempfile.mkdtemp(prefix="repro-pulse-cache-")

    def run():
        rows = []
        # Cold pass: empty directory, every block is a miss that persists.
        start = time.perf_counter()
        cold = _compiler("serial", PersistentPulseCache(cache_dir)).compile(circuit)
        cold_wall = time.perf_counter() - start
        rows.append(("cold", f"{cold_wall:.2f}", cold.runtime_iterations, cold.cache_hits))
        # Warm pass: a *new* cache object on the same directory — exactly
        # what a second process sees — must be pure disk hits.
        start = time.perf_counter()
        warm = _compiler("serial", PersistentPulseCache(cache_dir)).compile(circuit)
        warm_wall = time.perf_counter() - start
        rows.append(("warm", f"{warm_wall:.2f}", warm.runtime_iterations, warm.cache_hits))
        return rows, cold, warm

    try:
        rows, cold, warm = benchmark.pedantic(run, iterations=1, rounds=1)
        assert cold.runtime_iterations > 0
        assert warm.runtime_iterations == 0, "warm restart must not re-run GRAPE"
        assert warm.cache_hits == warm.blocks_compiled
        assert np.isclose(cold.pulse_duration_ns, warm.pulse_duration_ns)
        text = format_table(
            ("pass", "wall (s)", "GRAPE iterations", "cache hits"),
            rows,
            title="Persistent pulse cache: cold vs warm restart",
        )
        print(text)
        common.report("pipeline_cache_warm_restart", text, capsys)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
