"""Ablation: greedy shortest-path routing vs SABRE-style lookahead.

The gate-based runtimes of Tables 2 and 3 depend on the router through the
inserted SWAPs (7.4 ns each — the most expensive gate in Table 1).  This
ablation measures how much the lookahead router shaves off the greedy
baseline, per benchmark family and per topology, in SWAP count and in
scheduled critical-path runtime.
"""

import pytest

import common
from repro.analysis import format_table
from repro.transpile import (
    heavy_hex_topology,
    nearly_square_grid,
    ring_topology,
    route_circuit,
    sabre_route,
)
from repro.transpile.passes import default_pass_manager
from repro.transpile.schedule import asap_schedule
from repro.transpile.basis import decompose_to_basis
from repro.qaoa import maxcut_problem, qaoa_circuit
from repro.vqe import get_molecule


def _logical_circuits():
    rows = []
    for molecule in common.VQE_MOLECULES:
        ansatz = get_molecule(molecule).ansatz()
        rows.append((f"VQE {molecule}", default_pass_manager().run(ansatz)))
    for kind in common.QAOA_KINDS:
        circuit = qaoa_circuit(maxcut_problem(kind, 6, seed=0), 3)
        rows.append((f"QAOA {kind} N=6 p=3", default_pass_manager().run(circuit)))
    return rows


def _topologies(num_qubits):
    yield "grid", nearly_square_grid(num_qubits)
    if num_qubits >= 3:
        yield "ring", ring_topology(num_qubits)


def _runtime(circuit) -> float:
    return asap_schedule(decompose_to_basis(circuit)).duration_ns


@pytest.mark.benchmark(group="ablation-routing")
def test_router_comparison(benchmark):
    """SWAP counts and runtimes: greedy vs SABRE on each workload."""
    workloads = _logical_circuits()

    def run():
        rows = []
        for name, circuit in workloads:
            for topo_name, topo in _topologies(circuit.num_qubits):
                greedy = route_circuit(circuit, topo)
                sabre = sabre_route(circuit, topo)
                rows.append(
                    (
                        f"{name} / {topo_name}",
                        greedy.swap_count,
                        sabre.swap_count,
                        _runtime(greedy.circuit),
                        _runtime(sabre.circuit),
                    )
                )
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    table = []
    wins = 0
    for name, g_swaps, s_swaps, g_ns, s_ns in rows:
        wins += int(s_swaps <= g_swaps)
        table.append(
            (name, str(g_swaps), str(s_swaps), f"{g_ns:.0f}", f"{s_ns:.0f}")
        )
    # Lookahead must be at least competitive on a majority of workloads.
    assert wins >= len(rows) / 2, f"sabre won only {wins}/{len(rows)}"
    text = format_table(
        ("workload / topology", "greedy swaps", "sabre swaps", "greedy ns", "sabre ns"),
        table,
        title="Ablation: greedy vs SABRE-lookahead routing",
    )
    print(text)
    common.report("ablation_routing", text)


@pytest.mark.benchmark(group="ablation-routing")
def test_heavy_hex_routing_overhead(benchmark):
    """Sparse heavy-hex connectivity costs more SWAPs than the grid."""
    circuit = default_pass_manager().run(
        qaoa_circuit(maxcut_problem("erdosrenyi", 6, seed=0), 2)
    )
    hex_topo = heavy_hex_topology(1, 2)
    grid_topo = nearly_square_grid(circuit.num_qubits)

    def run():
        return (
            sabre_route(circuit, grid_topo).swap_count,
            sabre_route(circuit, hex_topo).swap_count,
        )

    grid_swaps, hex_swaps = benchmark.pedantic(run, iterations=1, rounds=1)
    assert hex_swaps >= grid_swaps
