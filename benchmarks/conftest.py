"""Benchmark-suite configuration.

The suite mirrors the paper's evaluation: one bench module per table or
figure.  Heavy artifacts are shared through :mod:`benchmarks.common`; each
bench prints a paper-style text table to the terminal and writes it under
``benchmarks/results/``.
"""

import sys
from pathlib import Path

# Make `import common` work regardless of rootdir layout.
sys.path.insert(0, str(Path(__file__).parent))
