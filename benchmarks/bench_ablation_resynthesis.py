"""Ablation: KAK two-qubit resynthesis vs the default gate-based pipeline.

The paper attributes part of GRAPE's advantage to "maximal circuit
optimization" — gate-level template optimizers are finite, GRAPE subsumes
them all (section 5.1).  This ablation quantifies how much of that gap a
*stronger gate-level optimizer* can recover: the KAK resynthesis pass
collapses every two-qubit run to at most 3 CX gates (the section 5.4
bound), which is the provably best a gate-based compiler can do per qubit
pair.  The residual distance to the GRAPE pulse durations is then the part
of the speedup that genuinely requires pulse-level control (ISA alignment,
fractional gates, control-field asymmetry).
"""

import pytest

import common
from repro.analysis import format_table
from repro.transpile import resynthesize_two_qubit_runs, transpile
from repro.transpile.schedule import asap_schedule


def _gate_runtime(circuit) -> float:
    return asap_schedule(circuit).duration_ns


def _resynthesized_runtime(bound_circuit) -> float:
    return _gate_runtime(transpile(bound_circuit, resynthesize=True))


def _workloads():
    rows = []
    for molecule in common.VQE_MOLECULES:
        circuit = common.vqe_circuit(molecule)
        bound = circuit.bind_parameters(common.random_parameters(circuit))
        rows.append((f"VQE {molecule}", bound))
    for kind in common.QAOA_KINDS:
        circuit = common.qaoa_bench_circuit(kind, 6, 1)
        bound = circuit.bind_parameters(common.random_parameters(circuit))
        rows.append((f"QAOA {kind} N=6 p=1", bound))
    return rows


@pytest.mark.benchmark(group="ablation-resynthesis")
def test_resynthesis_runtime_reduction(benchmark):
    """Gate-based runtime with and without KAK resynthesis."""
    workloads = _workloads()

    def run():
        return [
            (name, _gate_runtime(circ), _resynthesized_runtime(circ))
            for name, circ in workloads
        ]

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    table = []
    for name, base, resynth in rows:
        # Resynthesis must never lose to the baseline (it falls back to the
        # original run whenever its candidate is not strictly shorter).
        assert resynth <= base + 1e-6, f"{name}: resynthesis regressed"
        ratio = base / resynth if resynth > 0 else float("inf")
        table.append((name, f"{base:.1f}", f"{resynth:.1f}", f"{ratio:.2f}x"))
    text = format_table(
        ("benchmark", "gate-based (ns)", "KAK-resynth (ns)", "reduction"),
        table,
        title="Ablation: two-qubit KAK resynthesis",
    )
    print(text)
    common.report("ablation_resynthesis", text)


@pytest.mark.benchmark(group="ablation-resynthesis")
def test_resynthesis_is_idempotent(benchmark):
    """Running the pass twice must give the first pass's runtime."""
    base = common.vqe_circuit("LiH")
    circuit = base.bind_parameters(common.random_parameters(base))

    def run():
        once = resynthesize_two_qubit_runs(circuit)
        twice = resynthesize_two_qubit_runs(once)
        return _gate_runtime(once), _gate_runtime(twice)

    once_ns, twice_ns = benchmark.pedantic(run, iterations=1, rounds=1)
    assert twice_ns <= once_ns + 1e-6
