"""Table 1 — basis-gate pulse durations.

The paper's Table 1 gives the gate-set pulse durations on the gmon system:
Rz 0.4, Rx 2.5, H 1.4, CX 3.8, SWAP 7.4 ns.  This bench re-derives each
duration with the minimum-time GRAPE search on the Appendix-A Hamiltonian
and reports paper-vs-measured.
"""

import numpy as np
import pytest

import common
from repro.analysis import format_table
from repro.circuits import QuantumCircuit
from repro.config import GATE_DURATIONS_NS
from repro.pulse.grape import GrapeHyperparameters, GrapeSettings, minimum_time_pulse
from repro.pulse.hamiltonian import build_control_set
from repro.pulse.device import GmonDevice
from repro.sim import circuit_unitary
from repro.transpile import line_topology

SETTINGS = GrapeSettings(dt_ns=0.05 if common.FULL_MODE else 0.1, target_fidelity=0.999)
HYPER = GrapeHyperparameters(learning_rate=0.05, decay_rate=0.002, max_iterations=500)


def _basis_gate_targets():
    rz = QuantumCircuit(1).rz(np.pi, 0)
    rx = QuantumCircuit(1).rx(np.pi, 0)
    h = QuantumCircuit(1).h(0)
    cx = QuantumCircuit(2).cx(0, 1)
    swap = QuantumCircuit(2).swap(0, 1)
    return [
        ("rz", circuit_unitary(rz), 1),
        ("rx", circuit_unitary(rx), 1),
        ("h", circuit_unitary(h), 1),
        ("cx", circuit_unitary(cx), 2),
        ("swap", circuit_unitary(swap), 2),
    ]


def _minimum_times():
    device = GmonDevice(line_topology(2))
    rows = []
    for name, target, width in _basis_gate_targets():
        control_set = build_control_set(device, list(range(width)))
        paper = GATE_DURATIONS_NS[name]
        result = minimum_time_pulse(
            control_set,
            target,
            upper_bound_ns=2.5 * paper,
            hyperparameters=HYPER,
            settings=SETTINGS,
            precision_ns=0.2,
        )
        rows.append([name, paper, result.duration_ns, result.duration_ns / paper,
                     result.fidelity, result.total_iterations])
    return rows


def test_table1_basis_gate_pulse_durations(benchmark, capsys):
    rows = benchmark.pedantic(_minimum_times, rounds=1, iterations=1)
    text = format_table(
        ["gate", "paper (ns)", "measured (ns)", "ratio", "fidelity", "iters"],
        rows,
        title="Table 1: basis-gate pulse durations (gmon model, GRAPE minimum time)",
        precision=2,
    )
    common.report("table1_gate_pulses", text, capsys)
    # Shape checks: each gate lands within 2x of the paper's calibration,
    # and the Z/X asymmetry ordering holds.
    measured = {row[0]: row[2] for row in rows}
    for name, paper in (("rz", 0.4), ("rx", 2.5), ("h", 1.4), ("cx", 3.8), ("swap", 7.4)):
        assert measured[name] <= 2.0 * paper + 0.3, name
    assert measured["rz"] < measured["h"] < measured["rx"]
    assert measured["cx"] < measured["swap"]
