"""Perf harness: run the perf benches and write ``BENCH_*.json`` artifacts.

Unlike the table/figure benches (which reproduce the paper and print text
tables), this runner exists so that *speedup claims about this repository
itself* are machine-checkable and accumulate over time:

* ``grape_kernel`` — per-iteration cost of one GRAPE ``cost_and_gradient``
  call on representative blocks, including the paper-scale 3-qubit qutrit
  block (dim 27).  The frozen pre-rewrite kernel
  (``benchmarks/grape_reference.py``) is the ``before`` reference; the
  live :class:`repro.pulse.grape.cost.GrapeCost` is the ``after``.  Both
  are checked to agree to ≤1e-10 before timing.
* ``grape_batch`` — the cross-block batched GRAPE kernel: N same-shape
  blocks optimized as one stacked tensor vs the same N blocks run through
  the per-block kernel serially, checked ≤1e-10 identical before timing,
  plus a scan-blocking sweep of the blocked prefix-product scan.  The CI
  gate: batched is never slower than per-block; the full run must show
  the ≥1.3× headline at 8 blocks.
* ``pipeline`` — wall time of multi-block compilation under the ``serial``
  executor vs the ``auto`` executor (the service default).  The CI gate is
  host-independent: ``auto`` must never be slower than ``serial`` beyond a
  noise margin, whatever mode it picked for this host.
* ``cache`` — the persistent pulse library: cold compile vs warm-restart
  compile against the same sharded directory (the warm run must do zero
  GRAPE iterations), legacy flat-directory migration (every entry
  preserved bit-identically), sharded lookup throughput at a synthetic
  entry population, and an LRU ``gc`` pass down to a byte budget.
* ``session`` — a long-lived :class:`repro.pipeline.VariationalSession`
  compiling one parametrized ansatz at a stream of random θ draws: the
  cold iteration 0 pays for every block, steady-state iteration k pays
  only for the θ-dependent block (cross-call dedup must make it faster).
* ``service_concurrency`` — the service front door under variational and
  concurrent load: a hot θ-loop on one ansatz must build its
  content-addressed plan once and skip the blocking pass on every later
  iteration, and N disjoint ``submit()`` requests running concurrently
  must never be slower than serial ``compile()`` (the 1-CPU-safe gate CI
  enforces), bit-identical results both ways.
* ``service_load`` — the load generator for the multi-process fleet:
  concurrent clients pushing disjoint requests through one service with
  the in-process dispatcher vs the ``queue`` dispatcher backed by 1 and 2
  worker processes, reporting per-request latency (p50/p99) and
  throughput, results checked identical across dispatchers.  The CI gate:
  the 2-worker fleet is never slower than single-process beyond a noise
  margin; the committed full run must show fleet throughput ≥ 1.0×
  single-process.
* ``warm_start`` — warm-started GRAPE: near-miss variants of a cached
  block compiled cold vs neighbor-seeded (approximate-match retrieval
  from the pulse cache) vs KAK-seeded (analytic fallback, empty cache).
  The CI gate: neighbor seeding never costs iterations and never
  lengthens the pulses; the committed full run must show the ≥30%
  iteration-reduction headline.
* ``time_search`` — the minimum-time binary search on a block whose
  initial feasibility bound (and its half) fail, so the doubling phase
  triggers: lazy sequential doublings vs ``probe_executor="auto"`` (which
  declines speculation on small hosts) vs forced ``"thread"`` speculation,
  wall time and total-iteration cost side by side.  The CI gate: ``auto``
  is never slower than sequential beyond a noise margin.

The compile-level benches (``pipeline``, ``cache``) run through
:class:`repro.service.CompilationService` — the supported front door — so
the numbers track what real callers see.

Every run also *appends* one line to ``results/BENCH_trend.jsonl`` —
commit, timestamp, and each bench's ``derived`` metrics — so perf
trajectories accumulate across commits instead of each run overwriting
the last snapshot.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py --quick
    PYTHONPATH=src python benchmarks/run_benchmarks.py --only grape_kernel

Each bench writes ``BENCH_<name>.json`` under ``--output-dir`` (default
``benchmarks/results/``) with ``entries`` (one dict per measured variant)
and ``derived`` (speedups and invariant checks), so CI can diff perf
trajectories across PRs.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

# The module doubles as a script (`python benchmarks/run_benchmarks.py`) and
# an importlib-loaded module (the smoke test); make the sibling frozen
# reference importable either way.
sys.path.insert(0, str(Path(__file__).resolve().parent))
from grape_reference import kernel_fixture, reference_cost_and_gradient  # noqa: E402

from repro.circuits.circuit import QuantumCircuit
from repro.core import PulseCache
from repro.perf import get_perf_registry
from repro.pulse.device import GmonDevice
from repro.pulse.grape.engine import GrapeHyperparameters, GrapeSettings
from repro.service import CompilationService, CompileRequest, ServiceConfig
from repro.transpile.topology import line_topology

DEFAULT_OUTPUT_DIR = Path(__file__).parent / "results"

BENCH_SCHEMA_VERSION = 1


def _time_per_call_ms(fn, repeats: int, inner: int) -> float:
    """Best over ``repeats`` of the mean wall time of ``inner`` calls.

    Best-of is the standard noise-robust statistic for microbenchmarks:
    scheduler interference only ever makes a sample slower.
    """
    fn()  # warm caches / contraction plans outside the timed region
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        samples.append((time.perf_counter() - start) / inner * 1e3)
    return min(samples)


def _time_wall(fn) -> float:
    """One wall-clock sample of ``fn`` in seconds (callers take a best-of)."""
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def bench_grape_kernel(quick: bool) -> dict:
    """Per-iteration kernel timing, pre-rewrite vs live, on fixed seeds."""
    n_steps = 48 if quick else 120
    repeats = 5 if quick else 7
    inner = 3 if quick else 5
    cases = [
        ("2q-qubit-dim4", 2, 2),
        ("2q-qutrit-dim9", 2, 3),
        ("3q-qutrit-dim27", 3, 3),
    ]
    entries = []
    derived: dict = {}
    for label, n_qubits, levels in cases:
        cost, controls = kernel_fixture(n_qubits, levels, n_steps)
        control_set = cost.control_set

        before_out = reference_cost_and_gradient(cost, controls)
        after_out = cost.cost_and_gradient(controls)
        deviation = max(
            abs(before_out[0] - after_out[0]),
            float(np.abs(before_out[1] - after_out[1]).max()),
            abs(before_out[2] - after_out[2]),
        )
        if deviation > 1e-10:
            raise AssertionError(
                f"kernel rewrite deviates from the pre-PR reference on "
                f"{label}: {deviation:.3e}"
            )

        before_ms = _time_per_call_ms(
            lambda: reference_cost_and_gradient(cost, controls), repeats, inner
        )
        after_ms = _time_per_call_ms(
            lambda: cost.cost_and_gradient(controls), repeats, inner
        )
        shared = {
            "case": label,
            "dim": control_set.dim,
            "n_controls": control_set.num_controls,
            "n_steps": n_steps,
            "max_abs_deviation": deviation,
        }
        entries.append(
            {"name": f"{label}-before", "per_iteration_ms": before_ms, **shared}
        )
        entries.append(
            {"name": f"{label}-after", "per_iteration_ms": after_ms, **shared}
        )
        derived[f"speedup_{label}"] = round(before_ms / after_ms, 3)
        print(
            f"  grape_kernel {label}: before {before_ms:.3f} ms, "
            f"after {after_ms:.3f} ms, speedup {before_ms / after_ms:.2f}x "
            f"(max deviation {deviation:.2e})"
        )
    derived["headline_speedup"] = derived["speedup_3q-qutrit-dim27"]
    return {"entries": entries, "derived": derived}


def _tile_circuit(num_qubits: int) -> QuantumCircuit:
    """Disjoint 2-qubit entangling tiles — one independent GRAPE block each."""
    circuit = QuantumCircuit(num_qubits, name="perf_tiles")
    for q in range(0, num_qubits - 1, 2):
        circuit.h(q)
        circuit.cx(q, q + 1)
        circuit.rz(0.3 + 0.2 * q, q + 1)
        circuit.cx(q, q + 1)
    return circuit


def bench_pipeline(quick: bool) -> dict:
    """Multi-block compile wall time: serial vs the ``auto`` executor.

    ``auto`` is the service default, so this bench gates what every caller
    gets out of the box.  The gate is host-independent by design: whatever
    mode ``auto`` picked for this machine (inline + batched GRAPE on small
    hosts, the persistent thread pool on large ones), it must never be
    slower than forcing ``serial`` beyond a noise margin.
    """
    num_qubits = 6 if quick else 8
    settings = GrapeSettings(dt_ns=0.5, target_fidelity=0.95)
    hyper = GrapeHyperparameters(
        learning_rate=0.05,
        decay_rate=0.002,
        max_iterations=120 if quick else 250,
    )
    circuit = _tile_circuit(num_qubits)
    entries = []
    results = {}
    for name in ("serial", "auto"):
        # One service per variant: a fresh in-memory cache and scheduler
        # state, so every block pays full GRAPE in both runs.
        service = CompilationService(
            config=ServiceConfig(executor=name),
            device=GmonDevice(line_topology(num_qubits)),
            settings=settings,
            hyperparameters=hyper,
        )
        start = time.perf_counter()
        result = service.compile(
            CompileRequest(
                circuit=circuit, strategy="full-grape", max_block_width=2
            )
        ).compiled
        wall = time.perf_counter() - start
        results[name] = result
        entry = {
            "name": name,
            "wall_s": round(wall, 4),
            "blocks": result.blocks_compiled,
            "pulse_duration_ns": round(result.pulse_duration_ns, 3),
            "batched_blocks": result.metadata["scheduler"].get(
                "batched_blocks", 0
            ),
            **result.metadata["executor"],
        }
        service.close()
        entries.append(entry)
        print(
            f"  pipeline {name}: {wall:.2f} s over {result.blocks_compiled} "
            f"blocks (mode {entry.get('mode', name)})"
        )
    serial_wall = entries[0]["wall_s"]
    auto = entries[1]
    derived = {
        "speedup_auto": round(serial_wall / auto["wall_s"], 3),
        "auto_mode": auto.get("mode"),
        "auto_batched_blocks": auto["batched_blocks"],
        "durations_match": bool(
            np.isclose(
                results["serial"].pulse_duration_ns,
                results["auto"].pulse_duration_ns,
            )
        ),
    }
    if not derived["durations_match"]:
        raise AssertionError("executors disagreed on the compiled program")
    # The CI "never slower" gate: auto must not lose to serial on any host
    # beyond scheduler noise — the whole point of auto-selection.
    if auto["wall_s"] > serial_wall * 1.15:
        raise AssertionError(
            f"auto executor was slower than serial beyond the noise margin: "
            f"{auto['wall_s']:.2f} s vs {serial_wall:.2f} s"
        )
    return {"entries": entries, "derived": derived}


def bench_cache(quick: bool) -> dict:
    """Persistent pulse-library behavior: warm restarts, migration, lookups."""
    import pickle
    import shutil
    import tempfile

    from repro.core.cache import CACHE_SCHEMA_VERSION
    from repro.library import PulseLibrary

    num_qubits = 6
    settings = GrapeSettings(dt_ns=0.5, target_fidelity=0.95)
    hyper = GrapeHyperparameters(
        learning_rate=0.05,
        decay_rate=0.002,
        max_iterations=100 if quick else 200,
    )
    circuit = _tile_circuit(num_qubits)
    entries = []
    derived: dict = {}
    root = Path(tempfile.mkdtemp(prefix="bench_cache_"))
    try:
        # -- cold vs warm restart against one sharded directory ------------
        cache_dir = root / "library"
        runs = {}
        for name in ("cold", "warm"):
            # A fresh service per run models a process restart: scheduler
            # state resets, so the warm run must be served by the library.
            service = CompilationService(
                config=ServiceConfig(cache_dir=str(cache_dir)),
                device=GmonDevice(line_topology(num_qubits)),
                settings=settings,
                hyperparameters=hyper,
            )
            start = time.perf_counter()
            result = service.compile(
                CompileRequest(
                    circuit=circuit, strategy="full-grape", max_block_width=2
                )
            ).compiled
            wall = time.perf_counter() - start
            stats = service.cache.stats()
            service.close()
            runs[name] = (wall, result, stats)
            entries.append(
                {
                    "name": f"{name}_compile",
                    "wall_s": round(wall, 4),
                    "grape_iterations": result.runtime_iterations,
                    "disk_hits": stats["disk_hits"],
                    "misses": stats["misses"],
                    "persisted_entries": stats["persisted_entries"],
                }
            )
            print(
                f"  cache {name}: {wall:.2f} s, "
                f"{result.runtime_iterations} GRAPE iterations, "
                f"{stats['disk_hits']} disk hits"
            )
        derived["warm_restart_speedup"] = round(runs["cold"][0] / runs["warm"][0], 3)
        derived["warm_grape_iterations"] = runs["warm"][1].runtime_iterations
        derived["warm_disk_hits"] = runs["warm"][2]["disk_hits"]
        if runs["warm"][1].runtime_iterations != 0:
            raise AssertionError(
                "warm restart must serve every block from the sharded library"
            )
        if runs["warm"][2]["disk_hits"] < 1:
            raise AssertionError("warm restart recorded no disk hits")

        # -- legacy flat layout: migration + round-trip --------------------
        n_synthetic = 64 if quick else 512
        payloads = {}
        rng = np.random.default_rng(7)
        for i in range(n_synthetic):
            name = f"{rng.bytes(20).hex()}-{i:016x}.pulse"
            payloads[name] = pickle.dumps(
                {"schema_version": CACHE_SCHEMA_VERSION, "blob": rng.bytes(2048)}
            )
        flat_dir = root / "flat"
        flat_dir.mkdir()
        for name, blob in payloads.items():
            (flat_dir / name).write_bytes(blob)
        start = time.perf_counter()
        library = PulseLibrary(flat_dir, shards=256)
        migration_wall = time.perf_counter() - start
        preserved = all(library.get(name) == blob for name, blob in payloads.items())
        entries.append(
            {
                "name": "flat_migration",
                "wall_s": round(migration_wall, 4),
                "entries": n_synthetic,
                "migrated": library.migrated_entries,
                "preserved_bit_identically": preserved,
            }
        )
        derived["migration_preserved"] = preserved
        if not preserved or library.migrated_entries != n_synthetic:
            raise AssertionError("flat-directory migration lost or altered entries")
        print(
            f"  cache migration: {n_synthetic} flat entries -> sharded in "
            f"{migration_wall:.3f} s (bit-identical: {preserved})"
        )

        # -- lookup throughput on the sharded layout -----------------------
        names = list(payloads)
        lookups = names * (3 if quick else 10)
        start = time.perf_counter()
        for name in lookups:
            if library.get(name) is None:
                raise AssertionError(f"sharded lookup lost entry {name}")
        lookup_wall = time.perf_counter() - start
        entries.append(
            {
                "name": "sharded_lookup",
                "wall_s": round(lookup_wall, 4),
                "lookups": len(lookups),
                "per_lookup_us": round(lookup_wall / len(lookups) * 1e6, 2),
                "nonempty_shards": library.stats()["nonempty_shards"],
            }
        )

        # -- LRU gc down to half the population ----------------------------
        total = library.total_bytes()
        budget_mb = total / 2 / (1024 * 1024)
        start = time.perf_counter()
        report = library.gc(budget_mb)
        gc_wall = time.perf_counter() - start
        entries.append(
            {
                "name": "gc",
                "wall_s": round(gc_wall, 4),
                "evicted": report.evicted,
                "bytes_freed": report.bytes_freed,
                "entries_after": report.entries_after,
            }
        )
        derived["gc_evicted"] = report.evicted
        if report.evicted == 0 or report.bytes_after > budget_mb * 1024 * 1024:
            raise AssertionError("gc failed to enforce the size budget")
        print(
            f"  cache gc: evicted {report.evicted} entries "
            f"({report.bytes_freed / 1024:.0f} KiB) in {gc_wall:.3f} s"
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return {"entries": entries, "derived": derived}


def bench_session(quick: bool) -> dict:
    """Long-lived session: cold iteration 0 vs steady-state iteration k."""
    from repro.circuits.parameters import Parameter
    from repro.pipeline.session import VariationalSession

    settings = GrapeSettings(dt_ns=0.5, target_fidelity=0.95)
    hyper = GrapeHyperparameters(
        learning_rate=0.05,
        decay_rate=0.002,
        max_iterations=100 if quick else 200,
    )
    # Two distinct θ-independent entangler tiles plus one θ-dependent tile:
    # the variational shape — iteration k ≥ 1 recompiles only the θ tile.
    circuit = QuantumCircuit(6, name="session_ansatz")
    for q, angle in ((0, 0.3), (2, 1.1)):
        circuit.h(q)
        circuit.cx(q, q + 1)
        circuit.rz(angle, q + 1)
        circuit.cx(q, q + 1)
    circuit.rz(Parameter("theta"), 4)
    circuit.cx(4, 5)

    iterations = 4 if quick else 8
    rng = np.random.default_rng(3)
    entries = []
    walls = []
    session = VariationalSession(
        device=GmonDevice(line_topology(6)),
        settings=settings,
        hyperparameters=hyper,
        max_block_width=2,
        cache=PulseCache(),
    )
    try:
        for k in range(iterations):
            values = [float(rng.uniform(-np.pi / 2, np.pi / 2))]
            start = time.perf_counter()
            result = session.compile_parametrized(circuit, values)
            wall = time.perf_counter() - start
            walls.append(wall)
            scheduler = result.metadata["scheduler"]
            entries.append(
                {
                    "name": f"iteration_{k}",
                    "wall_s": round(wall, 4),
                    "dispatched_tasks": scheduler["dispatched_tasks"],
                    "reused_blocks": scheduler["reused_blocks"],
                    "grape_iterations": result.runtime_iterations,
                }
            )
            print(
                f"  session iteration {k}: {wall:.3f} s, "
                f"dispatched {scheduler['dispatched_tasks']}, "
                f"reused {scheduler['reused_blocks']}"
            )
    finally:
        session.close()
    cold = walls[0]
    steady = min(walls[1:])
    stats = session.stats()
    derived = {
        "cold_wall_s": round(cold, 4),
        "steady_wall_s": round(steady, 4),
        "steady_state_speedup": round(cold / steady, 3),
        "dispatched_blocks_total": stats["dispatched_blocks"],
        "reused_blocks_total": stats["reused_blocks"],
        "known_blocks": stats["known_blocks"],
    }
    if stats["reused_blocks"] == 0:
        raise AssertionError("the session recorded no cross-call block reuse")
    if steady >= cold:
        raise AssertionError(
            "steady-state session iteration must beat the cold iteration "
            f"(cold {cold:.3f} s, steady {steady:.3f} s)"
        )
    return {"entries": entries, "derived": derived}


def bench_service_concurrency(quick: bool) -> dict:
    """Plan cache + unlocked strategy execution through the service.

    Two measurements:

    * ``hot loop`` — one ansatz compiled at a stream of θ draws through one
      :class:`~repro.service.CompilationService`: iteration 0 pays for the
      blocking pass and every GRAPE block; iterations ≥ 1 must replay the
      content-addressed plan (``blocking_passes_skipped`` increments) and
      serve θ-independent blocks from scheduler state.
    * ``throughput`` — N *disjoint* requests (no shared blocks, so no
      single-flight coordination) submitted concurrently vs compiled
      serially.  The in-bench assertion is the CI satellite: concurrent
      must never be slower than serial beyond a noise margin — safe on a
      1-CPU runner, where overlap degenerates to interleaving.
    """
    from repro.circuits.parameters import Parameter

    num_qubits = 6
    settings = GrapeSettings(dt_ns=0.5, target_fidelity=0.95)
    hyper = GrapeHyperparameters(
        learning_rate=0.05,
        decay_rate=0.002,
        max_iterations=100 if quick else 200,
    )
    entries = []
    derived: dict = {}

    # -- hot variational loop: plan replay + cross-call dedup --------------
    ansatz = QuantumCircuit(num_qubits, name="service_ansatz")
    for q, angle in ((0, 0.3), (2, 1.1)):
        ansatz.h(q)
        ansatz.cx(q, q + 1)
        ansatz.rz(angle, q + 1)
        ansatz.cx(q, q + 1)
    ansatz.rz(Parameter("theta"), 4)
    ansatz.cx(4, 5)

    iterations = 3 if quick else 6
    rng = np.random.default_rng(11)
    walls = []
    service = CompilationService(
        device=GmonDevice(line_topology(num_qubits)),
        settings=settings,
        hyperparameters=hyper,
    )
    try:
        for k in range(iterations):
            values = [float(rng.uniform(-np.pi / 2, np.pi / 2))]
            start = time.perf_counter()
            result = service.compile(
                CompileRequest(
                    circuit=ansatz,
                    values=values,
                    strategy="full-grape",
                    max_block_width=2,
                )
            ).compiled
            wall = time.perf_counter() - start
            walls.append(wall)
            entries.append(
                {
                    "name": f"hot_iteration_{k}",
                    "wall_s": round(wall, 4),
                    "plan_cache": result.metadata["plan_cache"],
                    "blocking_stage_s": round(
                        result.metadata["stage_timings"].get("block", 0.0), 6
                    ),
                }
            )
            print(
                f"  service_concurrency hot iteration {k}: {wall:.3f} s "
                f"(plan {result.metadata['plan_cache']})"
            )
        plan_stats = service.stats()["plan_cache"]
    finally:
        service.close()
    derived.update(
        {
            "hot_cold_wall_s": round(walls[0], 4),
            "hot_steady_wall_s": round(min(walls[1:]), 4),
            "hot_loop_speedup": round(walls[0] / min(walls[1:]), 3),
            "plan_hits": plan_stats["plan_hits"],
            "plan_misses": plan_stats["plan_misses"],
            "blocking_passes_skipped": plan_stats["blocking_passes_skipped"],
        }
    )
    if plan_stats["plan_misses"] != 1:
        raise AssertionError(
            f"one ansatz must build exactly one plan, got "
            f"{plan_stats['plan_misses']} misses"
        )
    if plan_stats["blocking_passes_skipped"] != iterations - 1:
        raise AssertionError(
            "every hot iteration after the first must skip the blocking "
            f"pass: skipped {plan_stats['blocking_passes_skipped']} of "
            f"{iterations - 1}"
        )

    # -- concurrent submit() throughput vs serial compile() ----------------
    def _disjoint_circuit(offset: float) -> QuantumCircuit:
        circuit = QuantumCircuit(num_qubits, name=f"disjoint_{offset}")
        for q in range(0, num_qubits - 1, 2):
            circuit.h(q)
            circuit.cx(q, q + 1)
            circuit.rz(0.3 + 0.2 * q + offset, q + 1)
            circuit.cx(q, q + 1)
        return circuit

    n_requests = 4
    circuits = [_disjoint_circuit(0.05 * (i + 1)) for i in range(n_requests)]

    def _requests():
        return [
            CompileRequest(
                circuit=circuit, strategy="full-grape", max_block_width=2
            )
            for circuit in circuits
        ]

    def _service():
        return CompilationService(
            device=GmonDevice(line_topology(num_qubits)),
            settings=settings,
            hyperparameters=hyper,
        )

    with _service() as serial_service:
        start = time.perf_counter()
        serial_results = [
            serial_service.compile(request) for request in _requests()
        ]
        serial_wall = time.perf_counter() - start

    with _service() as concurrent_service:
        start = time.perf_counter()
        futures = [
            concurrent_service.submit(request) for request in _requests()
        ]
        concurrent_results = [future.result(timeout=600) for future in futures]
        concurrent_wall = time.perf_counter() - start
        submit_workers = concurrent_service.config.submit_workers

    durations_match = all(
        np.isclose(s.program.duration_ns, c.program.duration_ns)
        for s, c in zip(serial_results, concurrent_results)
    )
    entries.append(
        {
            "name": "serial_compile",
            "wall_s": round(serial_wall, 4),
            "requests": n_requests,
        }
    )
    entries.append(
        {
            "name": "concurrent_submit",
            "wall_s": round(concurrent_wall, 4),
            "requests": n_requests,
            "submit_workers": submit_workers,
        }
    )
    derived.update(
        {
            "serial_wall_s": round(serial_wall, 4),
            "concurrent_wall_s": round(concurrent_wall, 4),
            "throughput_speedup": round(serial_wall / concurrent_wall, 3),
            "submit_workers": submit_workers,
            "durations_match": bool(durations_match),
        }
    )
    print(
        f"  service_concurrency throughput: serial {serial_wall:.2f} s, "
        f"concurrent {concurrent_wall:.2f} s "
        f"({serial_wall / concurrent_wall:.2f}x, "
        f"{submit_workers} submit workers)"
    )
    if not durations_match:
        raise AssertionError(
            "concurrent submit() disagreed with serial compile()"
        )
    # The CI "never slower" gate: on a 1-CPU runner overlap degenerates to
    # interleaving, so concurrent must stay within a noise margin of
    # serial; on multi-core it should win outright.
    if concurrent_wall > serial_wall * 1.25:
        raise AssertionError(
            f"concurrent submit() was slower than serial compile() beyond "
            f"the noise margin: {concurrent_wall:.2f} s vs "
            f"{serial_wall:.2f} s"
        )
    return {"entries": entries, "derived": derived}


def bench_service_load(quick: bool) -> dict:
    """Concurrent clients vs dispatcher choice: in-process vs worker fleet.

    The load generator drives one :class:`~repro.service.CompilationService`
    with C concurrent clients submitting disjoint requests (no shared
    blocks), once per dispatcher config:

    * ``inline`` — the default in-process dispatcher (single process).
    * ``fleet_1w`` / ``fleet_2w`` — ``dispatcher="queue"`` with 1 and 2
      worker processes pulling :class:`~repro.pipeline.jobs.BlockJob`\\ s
      from the file-backed queue (full mode only runs ``fleet_1w``).

    Every config gets one untimed warmup round (absorbing worker spawn and
    numpy import) and then timed rounds over *fresh* circuits (distinct
    rotation angles, so neither the pulse cache nor block dedup can hide
    compile work).  Reported: per-request latency p50/p99 and round
    throughput, best-of across rounds.  Results must be identical across
    dispatchers (warm start pinned off — neighbor seeding depends on cache
    arrival order, which concurrency would make nondeterministic).

    The CI gate is host-independent: the 2-worker fleet must never be
    slower than single-process beyond a noise margin (on a 1-CPU runner
    process parallelism degenerates to time slicing).  The committed full
    run must additionally show fleet throughput ≥ 1.0× single-process.
    """
    import tempfile

    # Full mode drives enough concurrent clients that the inline
    # dispatcher's submit threads genuinely contend on the GIL (the
    # effect worker *processes* dodge), and takes best-of over several
    # rounds so one scheduler hiccup cannot decide the ratio.
    clients = 4 if quick else 6
    per_client = 1 if quick else 2
    timed_rounds = 2 if quick else 3
    n_requests = clients * per_client
    # A tight fidelity target keeps each block's GRAPE search substantial,
    # so the fixed per-job queue cost (pickle + poll + lease) is measured
    # against realistic compile times, not against trivial blocks.
    settings = GrapeSettings(dt_ns=0.5, target_fidelity=0.99)
    hyper = GrapeHyperparameters(
        learning_rate=0.05,
        decay_rate=0.002,
        # Same iteration budget in both modes: quick shrinks the client
        # count and rounds, not the per-block compile the overhead is
        # measured against (trivial blocks would gate on queue constants).
        max_iterations=300,
    )
    root = Path(tempfile.mkdtemp(prefix="bench_service_load_"))

    def _load_circuit(tag: str, offset: float) -> QuantumCircuit:
        # One 2-qubit block per request — the block IS the fleet's
        # dispatch unit, so a single-block workload measures dispatch
        # against compute.  (Multi-block requests would let the inline
        # path fold same-shape blocks into the cross-block batched GRAPE
        # kernel — a real but orthogonal advantage, measured on its own
        # in BENCH_grape_batch.)  The offset makes every circuit's
        # rotation (hence block unitary) unique across rounds/requests.
        circuit = QuantumCircuit(2, name=f"load_{tag}")
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.rz(offset + 0.1, 1)
        circuit.cx(0, 1)
        return circuit

    def _round_circuits(round_index: int) -> list:
        return [
            _load_circuit(
                f"r{round_index}_{i}", 0.07 * (round_index * n_requests + i + 1)
            )
            for i in range(n_requests)
        ]

    def _run_round(service, circuits):
        """Submit one batch concurrently; per-request latency via callbacks."""
        latencies: list = []
        futures = []
        start = time.perf_counter()
        for circuit in circuits:
            request = CompileRequest(
                circuit=circuit, strategy="full-grape", max_block_width=2
            )
            submitted = time.perf_counter()
            future = service.submit(request)
            future.add_done_callback(
                lambda _f, t=submitted: latencies.append(
                    time.perf_counter() - t
                )
            )
            futures.append(future)
        results = [future.result(timeout=600) for future in futures]
        wall = time.perf_counter() - start
        return wall, latencies, [r.program.duration_ns for r in results]

    configs = [
        ("inline", ServiceConfig(submit_workers=clients, warm_start=False,
                                 queue_depth=n_requests)),
    ]
    fleet_counts = (2,) if quick else (1, 2)
    for count in fleet_counts:
        configs.append(
            (
                f"fleet_{count}w",
                ServiceConfig(
                    submit_workers=clients,
                    warm_start=False,
                    queue_depth=n_requests,
                    dispatcher="queue",
                    fleet_dir=str(root / f"fleet_{count}w"),
                    fleet_workers=count,
                ),
            )
        )

    entries = []
    derived: dict = {}
    durations_by_round: dict = {}
    for config_name, config in configs:
        walls, all_latencies = [], []
        service = CompilationService(
            config=config,
            device=GmonDevice(line_topology(4)),
            settings=settings,
            hyperparameters=hyper,
        )
        try:
            # Warmup (untimed): pays worker spawn + numpy import for the
            # fleet configs and warms module caches for all of them.
            _run_round(service, _round_circuits(100))
            for round_index in range(timed_rounds):
                wall, latencies, durations = _run_round(
                    service, _round_circuits(round_index)
                )
                walls.append(wall)
                all_latencies.extend(latencies)
                durations_by_round.setdefault(round_index, {})[config_name] = (
                    durations
                )
                entries.append(
                    {
                        "name": f"{config_name}_round_{round_index}",
                        "wall_s": round(wall, 4),
                        "requests": n_requests,
                        "clients": clients,
                        "throughput_rps": round(n_requests / wall, 3),
                    }
                )
            executor_info = service.executor.describe()
            backpressure = service.stats()["requests"]["backpressure_waits"]
        finally:
            service.close()
        best_wall = min(walls)
        latencies_ms = np.asarray(all_latencies) * 1e3
        derived[f"{config_name}_throughput_rps"] = round(
            n_requests / best_wall, 3
        )
        derived[f"{config_name}_p50_ms"] = round(
            float(np.percentile(latencies_ms, 50)), 1
        )
        derived[f"{config_name}_p99_ms"] = round(
            float(np.percentile(latencies_ms, 99)), 1
        )
        derived[f"{config_name}_backpressure_waits"] = backpressure
        if config_name.startswith("fleet"):
            derived[f"{config_name}_completions_by_worker"] = executor_info[
                "completions_by_worker"
            ]
        print(
            f"  service_load {config_name}: best {best_wall:.2f} s "
            f"({n_requests / best_wall:.2f} req/s, "
            f"p50 {derived[f'{config_name}_p50_ms']:.0f} ms, "
            f"p99 {derived[f'{config_name}_p99_ms']:.0f} ms)"
        )

    for round_index, by_config in durations_by_round.items():
        expected = by_config["inline"]
        for config_name, durations in by_config.items():
            if durations != expected:
                raise AssertionError(
                    f"dispatcher {config_name} disagreed with inline on "
                    f"round {round_index}: {durations} vs {expected}"
                )
    derived["durations_match"] = True

    ratio = round(
        derived["fleet_2w_throughput_rps"] / derived["inline_throughput_rps"],
        3,
    )
    derived["fleet_2w_vs_inline"] = ratio
    # CI "never slower" gate (quick mode runs on a 1-CPU runner where the
    # fleet cannot beat time slicing, only match it).
    if ratio < 1.0 / 1.35:
        raise AssertionError(
            f"2-worker fleet was slower than single-process beyond the "
            f"noise margin: {ratio:.2f}x"
        )
    if not quick and ratio < 1.0:
        raise AssertionError(
            f"full run must show fleet throughput >= 1.0x single-process, "
            f"got {ratio:.2f}x"
        )
    return {"entries": entries, "derived": derived}


def bench_http(quick: bool) -> dict:
    """HTTP frontend overhead: ``POST /v1/compile`` vs in-process compile.

    One serial service serves the *same* cached request through both
    venues, so the compile itself is a cache hit in both and the measured
    difference is pure transport: wire encode, one localhost HTTP/1.1
    round-trip (keep-alive would help a tight loop; urllib reconnects, so
    this is the conservative number), wire decode.  Every remote result
    must be bit-identical to the inline one — the wire format's
    repr-float schedules make that an exact assertion, not a tolerance.
    """
    from repro.server import CompilationServer, ServerClient

    iterations = 30 if quick else 200
    settings = GrapeSettings(dt_ns=0.5, target_fidelity=0.95)
    hyper = GrapeHyperparameters(
        learning_rate=0.05, decay_rate=0.002, max_iterations=120
    )
    circuit = QuantumCircuit(2, name="http_overhead")
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.rz(0.375, 1)
    request = CompileRequest(circuit, strategy="gate")

    def _controls(result):
        return [s.controls.tobytes() for s in result.compiled.program.schedules]

    service = CompilationService(
        config=ServiceConfig(executor="serial", warm_start=False),
        device=GmonDevice(line_topology(2)),
        settings=settings,
        hyperparameters=hyper,
    )
    inline_ms, http_ms = [], []
    try:
        with CompilationServer(service, port=0).start() as server:
            client = ServerClient(server.url, timeout_s=120.0)
            # Untimed warmup pays the one real GRAPE compile; everything
            # timed afterwards is a cache hit through both venues.
            expected = _controls(service.compile(request))
            for _ in range(iterations):
                start = time.perf_counter()
                inline_result = service.compile(request)
                inline_ms.append((time.perf_counter() - start) * 1e3)
                start = time.perf_counter()
                remote_result = client.compile(request)
                http_ms.append((time.perf_counter() - start) * 1e3)
                if _controls(remote_result) != expected:
                    raise AssertionError(
                        "HTTP compile returned different pulses than the "
                        "in-process compile of the same request"
                    )
            server_stats = server.stats()
    finally:
        service.close()

    derived = {
        "iterations": iterations,
        "inline_p50_ms": round(float(np.percentile(inline_ms, 50)), 3),
        "inline_p99_ms": round(float(np.percentile(inline_ms, 99)), 3),
        "http_p50_ms": round(float(np.percentile(http_ms, 50)), 3),
        "http_p99_ms": round(float(np.percentile(http_ms, 99)), 3),
        "results_identical": True,
        "http_requests_total": server_stats["requests_total"],
    }
    derived["overhead_p50_ms"] = round(
        derived["http_p50_ms"] - derived["inline_p50_ms"], 3
    )
    # Pathology gate only (localhost HTTP should cost single-digit ms;
    # the margin absorbs loaded CI runners, not real regressions).
    if derived["overhead_p50_ms"] > 250:
        raise AssertionError(
            f"HTTP overhead p50 of {derived['overhead_p50_ms']:.0f} ms "
            "is far beyond a localhost round-trip"
        )
    print(
        f"  http: inline p50 {derived['inline_p50_ms']:.1f} ms, "
        f"http p50 {derived['http_p50_ms']:.1f} ms "
        f"(overhead {derived['overhead_p50_ms']:.1f} ms, "
        f"p99 {derived['http_p99_ms']:.1f} ms)"
    )
    entries = [
        {
            "name": "http_sync_compile",
            "p50_ms": derived["http_p50_ms"],
            "p99_ms": derived["http_p99_ms"],
            "iterations": iterations,
        },
        {
            "name": "inline_compile",
            "p50_ms": derived["inline_p50_ms"],
            "p99_ms": derived["inline_p99_ms"],
            "iterations": iterations,
        },
    ]
    return {"entries": entries, "derived": derived}


def bench_grape_batch(quick: bool) -> dict:
    """Cross-block batched GRAPE kernel vs the per-block kernel, serially.

    N Haar-random 2-qubit targets (dim 9, one shared control shape) run
    once through :func:`repro.pulse.grape.batched.optimize_pulse_batch`
    and once as N serial :func:`~repro.pulse.grape.engine.optimize_pulse`
    calls.  Outputs are checked ≤1e-10 identical before any timing, so
    the speedup is pure dispatch-overhead amortization: every hot
    contraction fuses ``blocks × steps`` small GEMMs into one BLAS call.

    Gates: batched must never be slower than per-block (CI, any host);
    the full run must additionally hold the ≥1.3× headline at 8 blocks.
    A scan-blocking sweep of the stacked prefix-product scan rides along
    (informational — it is where the batched calls' width comes from).
    """
    from repro.linalg.random import haar_random_unitary
    from repro.linalg.scan import forward_partial_products, scan_block_size
    from repro.pulse.grape.batched import optimize_pulse_batch
    from repro.pulse.grape.engine import optimize_pulse
    from repro.pulse.hamiltonian import build_control_set

    control_set = build_control_set(GmonDevice(line_topology(2)), (0, 1))
    num_steps = 16 if quick else 32
    repeats = 2 if quick else 3
    settings = GrapeSettings(dt_ns=0.5, target_fidelity=0.999)
    hyper = GrapeHyperparameters(
        learning_rate=0.05,
        decay_rate=0.002,
        max_iterations=40 if quick else 120,
    )
    entries = []
    derived: dict = {}
    for batch in (4, 8, 16):
        targets = [
            haar_random_unitary(control_set.dim, seed=100 + i)
            for i in range(batch)
        ]

        def per_block():
            return [
                optimize_pulse(
                    control_set, target, num_steps, hyper, settings
                )
                for target in targets
            ]

        def batched():
            return optimize_pulse_batch(
                [control_set] * batch, targets, num_steps, hyper, settings
            )

        # Equivalence first: timing a wrong kernel is worthless.
        serial_results = per_block()
        batched_results = batched()
        deviation = max(
            max(
                abs(b.fidelity - s.fidelity),
                float(
                    np.abs(b.schedule.controls - s.schedule.controls).max()
                ),
            )
            for b, s in zip(batched_results, serial_results)
        )
        if deviation > 1e-10:
            raise AssertionError(
                f"batched kernel deviates from per-block at {batch} blocks: "
                f"{deviation:.3e}"
            )
        if any(
            b.iterations != s.iterations
            for b, s in zip(batched_results, serial_results)
        ):
            raise AssertionError(
                "batched kernel ran different iteration counts than the "
                "per-block path"
            )

        per_block_s = min(
            _time_wall(per_block) for _ in range(repeats)
        )
        batched_s = min(_time_wall(batched) for _ in range(repeats))
        speedup = per_block_s / batched_s
        shared = {
            "blocks": batch,
            "dim": control_set.dim,
            "n_steps": num_steps,
            "iterations": sum(r.iterations for r in serial_results),
            "max_abs_deviation": deviation,
        }
        entries.append(
            {"name": f"per-block-{batch}", "wall_s": round(per_block_s, 4), **shared}
        )
        entries.append(
            {"name": f"batched-{batch}", "wall_s": round(batched_s, 4), **shared}
        )
        derived[f"speedup_batch_{batch}"] = round(speedup, 3)
        print(
            f"  grape_batch {batch} blocks: per-block {per_block_s:.3f} s, "
            f"batched {batched_s:.3f} s, speedup {speedup:.2f}x "
            f"(max deviation {deviation:.2e})"
        )
        # The CI "never slower" gate, margin-padded against scheduler noise.
        if batched_s > per_block_s * 1.10:
            raise AssertionError(
                f"batched kernel was slower than per-block at {batch} "
                f"blocks: {batched_s:.3f} s vs {per_block_s:.3f} s"
            )
    derived["headline_speedup"] = derived["speedup_batch_8"]
    if not quick and derived["headline_speedup"] < 1.3:
        raise AssertionError(
            f"the 8-block batched speedup fell below the 1.3x acceptance "
            f"floor: {derived['headline_speedup']:.2f}x"
        )

    # Scan-blocking sweep on a single propagator stack — the per-block
    # case the blocked scan was built for (a cross-block leading axis
    # widens every GEMM further on top of this).
    sweep_steps = 48
    rng_props = np.stack(
        [
            haar_random_unitary(control_set.dim, seed=1000 + k)
            for k in range(sweep_steps)
        ]
    )
    default_size = scan_block_size(sweep_steps)
    sweep_sizes = sorted({1, 2, 4, default_size, 12, sweep_steps})
    for size in sweep_sizes:
        per_call_ms = _time_per_call_ms(
            lambda: forward_partial_products(rng_props, block_size=size),
            repeats=3,
            inner=3 if quick else 5,
        )
        entries.append(
            {
                "name": f"scan-block-{size}",
                "per_call_ms": per_call_ms,
                "block_size": size,
                "is_default": size == default_size,
                "n_steps": sweep_steps,
            }
        )
    sequential_ms = next(
        e["per_call_ms"] for e in entries if e.get("block_size") == 1
    )
    default_ms = next(
        e["per_call_ms"]
        for e in entries
        if e.get("block_size") == default_size
    )
    derived["scan_default_block_size"] = default_size
    derived["scan_blocked_speedup"] = round(sequential_ms / default_ms, 3)
    print(
        f"  grape_batch scan sweep: sequential {sequential_ms:.3f} ms, "
        f"blocked({default_size}) {default_ms:.3f} ms "
        f"({sequential_ms / default_ms:.2f}x)"
    )
    return {"entries": entries, "derived": derived}


def bench_time_search(quick: bool) -> dict:
    """Minimum-time search: sequential vs auto vs forced speculation.

    The upper bound is chosen so the initial feasibility probes (the bound
    and its half) fail, forcing the doubling phase — the part
    ``probe_executor`` parallelizes.  Forced ``"thread"`` speculation
    trades extra GRAPE iterations (every doubling candidate runs) for
    wall-clock latency, so it is recorded but never gated (few-core
    machines invert the trade).  ``"auto"`` is gated: it declines
    speculation exactly when cores are scarce, so it must never be slower
    than the lazy sequential path beyond a noise margin on any host.
    """
    from repro.linalg.random import haar_random_unitary
    from repro.pulse.grape.time_search import minimum_time_pulse
    from repro.pulse.hamiltonian import build_control_set

    device = GmonDevice(line_topology(2))
    control_set = build_control_set(device, (0, 1))
    target = haar_random_unitary(4, seed=7)
    settings = GrapeSettings(dt_ns=0.5, target_fidelity=0.95)
    hyper = GrapeHyperparameters(
        learning_rate=0.05,
        decay_rate=0.002,
        max_iterations=120 if quick else 300,
    )
    # A Haar-random SU(4) needs ~4 ns at these settings; bounding the first
    # probe at 2 ns makes it (and the 1 ns half-probe) fail, so the search
    # must double its way to feasibility.
    upper_bound_ns = 2.0
    repeats = 3 if quick else 5
    entries = []
    outcomes = {}
    modes = (
        ("sequential", None),
        ("auto", "auto"),
        ("speculative-thread", "thread"),
    )
    for name, probe_executor in modes:
        walls = []
        result = None
        for _ in range(repeats):
            start = time.perf_counter()
            result = minimum_time_pulse(
                control_set,
                target,
                upper_bound_ns=upper_bound_ns,
                hyperparameters=hyper,
                settings=settings,
                probe_executor=probe_executor,
            )
            walls.append(time.perf_counter() - start)
        outcomes[name] = (min(walls), result)
        entries.append(
            {
                "name": name,
                "wall_s": round(min(walls), 4),
                "duration_ns": round(result.duration_ns, 3),
                "converged": result.converged,
                "total_iterations": result.total_iterations,
                "grape_calls": result.grape_calls,
            }
        )
        print(
            f"  time_search {name}: {min(walls):.3f} s, "
            f"{result.total_iterations} iterations over {result.grape_calls} "
            f"probes, minimum time {result.duration_ns:.1f} ns"
        )
    seq_wall, seq = outcomes["sequential"]
    auto_wall, auto = outcomes["auto"]
    spec_wall, spec = outcomes["speculative-thread"]
    derived = {
        "speedup_auto": round(seq_wall / auto_wall, 3),
        "speedup_speculative": round(seq_wall / spec_wall, 3),
        "sequential_duration_ns": round(seq.duration_ns, 3),
        "auto_duration_ns": round(auto.duration_ns, 3),
        "speculative_duration_ns": round(spec.duration_ns, 3),
        "auto_extra_iterations": auto.total_iterations - seq.total_iterations,
        "extra_probe_iterations": spec.total_iterations - seq.total_iterations,
        # Both initial feasibility probes (bound + half-bound) must fail
        # for the doubling phase — the part probe_executor parallelizes —
        # to run at all.
        "doubling_phase_triggered": (
            len(seq.probes) >= 2
            and not seq.probes[0][2]
            and not seq.probes[1][2]
        ),
    }
    if not (seq.converged and auto.converged and spec.converged):
        raise AssertionError("every time-search mode must converge on this block")
    if not derived["doubling_phase_triggered"]:
        raise AssertionError(
            "the bench workload must force the feasibility-doubling phase "
            "(the part probe_executor parallelizes)"
        )
    # The CI "never slower" gate: auto declines speculation when cores are
    # scarce and enables it when they are free, so it must track the
    # better choice within scheduler noise on any host.
    if auto_wall > seq_wall * 1.15:
        raise AssertionError(
            f"auto probe executor was slower than sequential beyond the "
            f"noise margin: {auto_wall:.3f} s vs {seq_wall:.3f} s"
        )
    return {"entries": entries, "derived": derived}


def bench_warm_start(quick: bool) -> dict:
    """Warm-started GRAPE: cold vs neighbor-seeded vs KAK-seeded compiles.

    One base two-qubit block is compiled and cached, then a set of
    near-miss variants (small Rz perturbations, within the default
    neighbor distance threshold) is compiled three ways:

    * ``cold`` — warm start disabled; every variant pays the full search.
    * ``neighbor`` — warm start enabled against the pre-populated cache;
      every variant must seed from the base block's pulse.
    * ``kak`` — warm start enabled against an *empty* cache, so every
      variant falls back to the analytic KAK seed.

    Iterations (ADAM steps summed over every probe) are the
    hardware-independent latency measure.  The CI gate in both modes:
    neighbor-seeded compiles are never slower than cold.  The full run
    additionally enforces the headline ≥30% iteration reduction.  KAK
    numbers are recorded but ungated — the analytic seed's payoff varies
    with how far the random targets sit from the native interactions.
    """
    from repro.core.compiler import BlockPulseCompiler
    from repro.pulse.grape.seeding import warm_start_telemetry

    settings = GrapeSettings(dt_ns=0.5, target_fidelity=0.95)
    hyper = GrapeHyperparameters(
        learning_rate=0.05,
        decay_rate=0.002,
        max_iterations=100 if quick else 200,
    )
    base_angle = 0.3
    deltas = [0.02, -0.03] if quick else [0.02, -0.03, 0.05, -0.05, 0.03, -0.04]
    variants = [base_angle + d for d in deltas]

    def block(angle: float) -> QuantumCircuit:
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        circuit.rz(angle, 1)
        return circuit

    def compile_variants(warm_start: bool, prepopulate: bool) -> dict:
        compiler = BlockPulseCompiler(
            GmonDevice(line_topology(2)),
            settings,
            hyper,
            PulseCache(),
            warm_start=warm_start,
        )
        if prepopulate:
            compiler.compile_block(block(base_angle), (0, 1))
        iterations = 0
        duration_ns = 0.0
        start = time.perf_counter()
        for angle in variants:
            outcome = compiler.compile_block(block(angle), (0, 1))
            if outcome.fidelity < settings.target_fidelity:
                raise AssertionError(
                    f"variant rz({angle}) missed the fidelity target: "
                    f"{outcome.fidelity:.4f}"
                )
            iterations += outcome.iterations
            duration_ns += outcome.duration_ns
        return {
            "iterations": iterations,
            "duration_ns": round(duration_ns, 3),
            "wall_s": round(time.perf_counter() - start, 4),
        }

    perf = get_perf_registry()
    modes = {}
    entries = []
    for name, warm, prepopulate in (
        ("cold", False, True),
        ("neighbor", True, True),
        ("kak", True, False),
    ):
        seeds_before = perf.counter("grape.warm_start.neighbor_seeds")
        modes[name] = compile_variants(warm, prepopulate)
        # Per-mode count: the kak run legitimately neighbor-seeds its own
        # later variants from its earlier ones, so a global delta would
        # conflate the modes.
        modes[name]["neighbor_seeds"] = (
            perf.counter("grape.warm_start.neighbor_seeds") - seeds_before
        )
        entries.append({"name": name, "variants": len(variants), **modes[name]})
        print(
            f"  warm_start {name}: {modes[name]['iterations']} iterations, "
            f"total pulse {modes[name]['duration_ns']} ns, "
            f"{modes[name]['wall_s']:.3f} s"
        )
    neighbor_seeds_used = modes["neighbor"]["neighbor_seeds"]

    cold_iters = modes["cold"]["iterations"]
    derived = {
        "iteration_reduction_neighbor": round(
            1.0 - modes["neighbor"]["iterations"] / cold_iters, 4
        ),
        "iteration_reduction_kak": round(
            1.0 - modes["kak"]["iterations"] / cold_iters, 4
        ),
        "cold_iterations": cold_iters,
        "neighbor_iterations": modes["neighbor"]["iterations"],
        "kak_iterations": modes["kak"]["iterations"],
        "neighbor_seeds_used": neighbor_seeds_used,
        "duration_ratio_neighbor": round(
            modes["neighbor"]["duration_ns"] / modes["cold"]["duration_ns"], 4
        ),
        "telemetry": warm_start_telemetry(),
    }
    if neighbor_seeds_used < len(variants):
        raise AssertionError(
            f"only {neighbor_seeds_used} of {len(variants)} variants "
            "neighbor-seeded — the bench cache pre-population is broken"
        )
    # CI gate (both modes): seeding must never cost iterations.
    if modes["neighbor"]["iterations"] > cold_iters:
        raise AssertionError(
            f"neighbor-seeded compiles used more iterations than cold: "
            f"{modes['neighbor']['iterations']} vs {cold_iters}"
        )
    # Seeded pulses must never be longer than cold ones in aggregate —
    # fewer iterations would be a hollow win if pulse quality regressed.
    if modes["neighbor"]["duration_ns"] > modes["cold"]["duration_ns"] + 1e-9:
        raise AssertionError(
            f"neighbor-seeded pulses are longer than cold: "
            f"{modes['neighbor']['duration_ns']} ns vs "
            f"{modes['cold']['duration_ns']} ns"
        )
    # The headline claim, enforced in the committed full run only (quick
    # mode's tiny workload is too noisy to hold a ratio to).
    if not quick and derived["iteration_reduction_neighbor"] < 0.30:
        raise AssertionError(
            "neighbor-seeded iteration reduction fell below the 30% "
            f"headline: {derived['iteration_reduction_neighbor']:.1%}"
        )
    return {"entries": entries, "derived": derived}


BENCHES = {
    "cache": bench_cache,
    "grape_batch": bench_grape_batch,
    "grape_kernel": bench_grape_kernel,
    "http": bench_http,
    "pipeline": bench_pipeline,
    "service_concurrency": bench_service_concurrency,
    "service_load": bench_service_load,
    "session": bench_session,
    "time_search": bench_time_search,
    "warm_start": bench_warm_start,
}


def _host_info() -> dict:
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
    }


def _git_commit() -> str | None:
    """The current commit hash, or ``None`` outside a usable git checkout."""
    import subprocess

    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return proc.stdout.strip() or None


def run(names, quick: bool, output_dir: Path) -> list:
    output_dir.mkdir(parents=True, exist_ok=True)
    written = []
    derived_by_bench = {}
    for name in names:
        print(f"running {name} benchmark ({'quick' if quick else 'full'} mode)")
        payload = {
            "benchmark": name,
            "schema_version": BENCH_SCHEMA_VERSION,
            "quick": quick,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "host": _host_info(),
            **BENCHES[name](quick),
        }
        payload["perf_counters"] = get_perf_registry().snapshot()["counters"]
        path = output_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        written.append(path)
        derived_by_bench[name] = payload["derived"]
        print(f"  wrote {path}")
    # The per-bench snapshots overwrite each run; the trend file *appends*,
    # so metric trajectories accumulate across commits (CI uploads it too).
    trend_path = output_dir / "BENCH_trend.jsonl"
    row = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "commit": _git_commit(),
        "quick": quick,
        "benches": derived_by_bench,
    }
    with open(trend_path, "a") as fh:
        fh.write(json.dumps(row, sort_keys=True) + "\n")
    written.append(trend_path)
    print(f"  appended trend row to {trend_path}")
    return written


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the perf benches and write BENCH_*.json artifacts."
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized workloads (seconds instead of minutes)",
    )
    parser.add_argument(
        "--only",
        action="append",
        choices=sorted(BENCHES),
        help="run just this bench (repeatable; default: all)",
    )
    parser.add_argument(
        "--output-dir",
        type=Path,
        default=DEFAULT_OUTPUT_DIR,
        help=f"where BENCH_*.json land (default: {DEFAULT_OUTPUT_DIR})",
    )
    args = parser.parse_args(argv)
    names = args.only or sorted(BENCHES)
    run(names, args.quick, args.output_dir)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
