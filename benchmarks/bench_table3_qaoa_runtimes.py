"""Table 3 — gate-based runtimes for the 32 QAOA MAXCUT benchmarks.

N ∈ {6, 8} × {3-regular, Erdős–Rényi} × p ∈ 1..8.  The defining property:
runtime is linear in p for every family, and 8-node graphs cost more than
6-node graphs.  All 32 circuits are built even in default mode (no GRAPE
involved — this is the cheap baseline table).
"""

import numpy as np
import pytest

import common
from repro.analysis import format_table
from repro.circuits.dag import critical_path_ns


def _build_table():
    table = {}
    for kind in common.QAOA_KINDS:
        for n in (6, 8):
            runtimes = []
            for p in range(1, 9):
                circuit = common.qaoa_bench_circuit(kind, n, p)
                runtimes.append(critical_path_ns(circuit))
            table[(kind, n)] = runtimes
    return table


def test_table3_qaoa_gate_runtimes(benchmark, capsys):
    table = benchmark.pedantic(_build_table, rounds=1, iterations=1)
    rows = []
    for p in range(1, 9):
        row = [f"p={p}"]
        for kind in ("3regular", "erdosrenyi"):
            for n in (6, 8):
                row.append(table[(kind, n)][p - 1])
                row.append(common.PAPER_TABLE3_NS[(kind, n)][p - 1])
        rows.append(row)
    text = format_table(
        ["", "3reg N6", "paper", "3reg N8", "paper",
         "ER N6", "paper", "ER N8", "paper"],
        rows,
        title="Table 3: QAOA gate-based runtimes (ns), measured vs paper",
        precision=0,
    )
    common.report("table3_qaoa_runtimes", text, capsys)

    for (kind, n), runtimes in table.items():
        # Linearity in p: increments should be near-constant.
        increments = np.diff(runtimes)
        assert np.all(increments > 0), (kind, n)
        assert np.std(increments) / np.mean(increments) < 0.25, (kind, n)
        # Same order of magnitude as the paper.
        paper = common.PAPER_TABLE3_NS[(kind, n)]
        for measured, expected in zip(runtimes, paper):
            assert 0.2 * expected <= measured <= 5 * expected, (kind, n)
    # 8-node graphs are slower than 6-node graphs at every p.
    for kind in common.QAOA_KINDS:
        for p_idx in range(8):
            assert table[(kind, 8)][p_idx] > table[(kind, 6)][p_idx]
